//! Data-parallel training across in-process workers with real collectives —
//! the engine behind the convergence experiments (Figs. 6–7).

use std::sync::Arc;

use acp_collectives::{Communicator, ThreadGroup};
use acp_core::{DistributedOptimizer, GradViewMut};
use acp_telemetry::{keys, InMemoryRecorder, MetricsSnapshot, Recorder, Span, StepReport};
use acp_tensor::rng::seeded_rng;
use rand::seq::SliceRandom;

use crate::dataset::Dataset;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::model::Sequential;
use crate::optim::{LrSchedule, SgdMomentum};
use crate::tensor4::Tensor;

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over each worker's shard.
    pub epochs: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Momentum coefficient (paper: 0.9).
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Seed for shuffling (model init seeds live in the model builder).
    pub seed: u64,
    /// Overlap gradient communication with backward compute (wait-free
    /// backpropagation) when the aggregator supports it. The aggregated
    /// result is bit-identical either way; disable to measure the
    /// unoverlapped baseline.
    pub overlap: bool,
    /// Run the closed-loop autotuner before epoch 1: profile the live
    /// cluster's collectives, fit α–β from the telemetry, tune the fusion
    /// buffer size on the calibrated simulator and apply it to the
    /// aggregator (see [`crate::autotune`]). Groups that cannot calibrate
    /// (e.g. a single rank) keep the aggregator's configured buffer.
    pub auto_tune: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            schedule: LrSchedule::new(0.1, 0, Vec::new()),
            momentum: 0.9,
            weight_decay: 0.0,
            seed: 42,
            overlap: true,
            auto_tune: false,
        }
    }
}

/// Per-epoch metrics (rank 0's view; all ranks agree).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f32,
    /// Accuracy on the full test split.
    pub test_accuracy: f32,
    /// Learning rate used this epoch.
    pub lr: f32,
}

/// Telemetry gathered for one worker rank during an instrumented run.
#[derive(Clone, Debug)]
pub struct RankTelemetry {
    /// Worker rank the data belongs to.
    pub rank: usize,
    /// One report per optimizer step, in step order.
    pub steps: Vec<StepReport>,
    /// Final state of the rank's recorder (counters, series, spans) —
    /// feed the spans to `acp_telemetry::ChromeTraceBuilder` for a trace.
    pub snapshot: MetricsSnapshot,
}

/// Result of [`train_distributed_instrumented`]: the usual per-epoch
/// history plus per-rank step telemetry.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Rank 0's per-epoch metrics (all ranks agree).
    pub history: Vec<EpochStats>,
    /// Per-rank telemetry, indexed by rank.
    pub ranks: Vec<RankTelemetry>,
}

/// Tracks recorder counters/series between steps so each [`StepReport`]
/// carries per-step deltas rather than running totals.
struct StepDeltas {
    wire_bytes: u64,
    payload_bytes: u64,
    dense_bytes: u64,
    compress_us: f64,
    comm_us: f64,
    residuals_seen: usize,
}

impl StepDeltas {
    fn new() -> Self {
        StepDeltas {
            wire_bytes: 0,
            payload_bytes: 0,
            dense_bytes: 0,
            compress_us: 0.0,
            comm_us: 0.0,
            residuals_seen: 0,
        }
    }

    fn comm_us_total(rec: &InMemoryRecorder) -> f64 {
        rec.value_sum(keys::COMM_ALL_REDUCE_US)
            + rec.value_sum(keys::COMM_ALL_GATHER_US)
            + rec.value_sum(keys::COMM_BROADCAST_US)
            + rec.value_sum(keys::COMM_GLOBAL_TOPK_US)
    }

    /// Reads the recorder and emits the delta since the previous call.
    fn take(&mut self, rec: &InMemoryRecorder, epoch: usize, step: usize) -> StepReport {
        let wire = rec.counter(keys::COMM_BYTES_SENT);
        let payload = rec.counter(keys::COMPRESS_PAYLOAD_BYTES);
        let dense = rec.counter(keys::COMPRESS_DENSE_BYTES);
        let compress = rec.value_sum(keys::COMPRESS_TIME_US);
        let comm = Self::comm_us_total(rec);
        let residuals = rec.values(keys::EF_RESIDUAL_NORM);
        let residual_norm = if residuals.len() > self.residuals_seen {
            residuals.last().copied()
        } else {
            None
        };
        let report = StepReport {
            epoch,
            step,
            wire_bytes: wire - self.wire_bytes,
            payload_bytes: payload - self.payload_bytes,
            dense_bytes: dense - self.dense_bytes,
            compress_us: compress - self.compress_us,
            comm_us: comm - self.comm_us,
            residual_norm,
            loss: None,
        };
        self.wire_bytes = wire;
        self.payload_bytes = payload;
        self.dense_bytes = dense;
        self.compress_us = compress;
        self.comm_us = comm;
        self.residuals_seen = residuals.len();
        report
    }
}

/// Builds the `[batch, …sample_dims]` input tensor and label vector for a
/// set of sample indices.
pub(crate) fn make_batch(data: &Dataset, indices: &[usize], train: bool) -> (Tensor, Vec<usize>) {
    let feature_len = data.feature_len();
    let mut x = Vec::with_capacity(indices.len() * feature_len);
    let mut y = Vec::with_capacity(indices.len());
    for &i in indices {
        let (f, label) = if train {
            data.train_sample(i)
        } else {
            data.test_sample(i)
        };
        x.extend_from_slice(f);
        y.push(label);
    }
    let mut dims = vec![indices.len()];
    dims.extend_from_slice(data.sample_dims());
    (Tensor::from_vec(&dims, x), y)
}

/// Evaluates test accuracy over the full test split.
fn evaluate(model: &mut Sequential, data: &Dataset, batch_size: usize) -> f32 {
    let n = data.test_len();
    if n == 0 {
        return 0.0;
    }
    let mut correct_weighted = 0.0f32;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let indices: Vec<usize> = (start..end).collect();
        let (x, y) = make_batch(data, &indices, false);
        let logits = model.forward(&x);
        correct_weighted += accuracy(&logits, &y) * indices.len() as f32;
        start = end;
    }
    correct_weighted / n as f32
}

/// Trains `world` data-parallel workers, each aggregating gradients through
/// its own instance of the supplied [`DistributedOptimizer`], and returns
/// rank 0's per-epoch history.
///
/// Every worker builds the model from `model_builder` (which must be
/// deterministic so initial weights agree), trains on a disjoint shard of
/// `data`, and evaluates on the shared test split.
///
/// # Panics
///
/// Panics if a worker thread fails (collective error or panic) — the
/// trainer is for controlled experiments, not fault tolerance.
pub fn train_distributed<MB, AB, A>(
    world: usize,
    data: &Dataset,
    model_builder: MB,
    aggregator_builder: AB,
    cfg: &TrainConfig,
) -> Vec<EpochStats>
where
    MB: Fn() -> Sequential + Sync,
    AB: Fn() -> A + Sync,
    A: DistributedOptimizer,
{
    let results = ThreadGroup::run(world, |comm| {
        train_rank(comm, data, &model_builder, &aggregator_builder, cfg, false).0
    });
    results.into_iter().next().expect("at least one worker")
}

/// Like [`train_distributed`], but attaches an
/// [`InMemoryRecorder`] to every rank's communicator *and* aggregator and
/// returns per-step [`StepReport`]s plus the raw per-rank
/// [`MetricsSnapshot`]s alongside the epoch history.
///
/// # Panics
///
/// Panics if a worker thread fails (collective error or panic).
pub fn train_distributed_instrumented<MB, AB, A>(
    world: usize,
    data: &Dataset,
    model_builder: MB,
    aggregator_builder: AB,
    cfg: &TrainConfig,
) -> TrainReport
where
    MB: Fn() -> Sequential + Sync,
    AB: Fn() -> A + Sync,
    A: DistributedOptimizer,
{
    let results = ThreadGroup::run(world, |comm| {
        train_rank(comm, data, &model_builder, &aggregator_builder, cfg, true)
    });
    let mut history = Vec::new();
    let mut ranks = Vec::with_capacity(results.len());
    for (rank, (h, telemetry)) in results.into_iter().enumerate() {
        if rank == 0 {
            history = h;
        }
        ranks.push(telemetry.expect("instrumented run records every rank"));
    }
    TrainReport { history, ranks }
}

/// One rank's training loop over any [`Communicator`] backend;
/// `instrument` controls whether a recorder is attached and step reports
/// are assembled.
///
/// [`train_distributed`] runs this on in-process thread workers; a
/// multi-process launcher (e.g. `acp-net`'s TCP backend) calls it directly
/// from each worker process with its own communicator. Every rank must use
/// the same deterministic `model_builder`, dataset and config, or the
/// collectives will disagree.
pub fn train_rank<C, MB, AB, A>(
    comm: C,
    data: &Dataset,
    model_builder: &MB,
    aggregator_builder: &AB,
    cfg: &TrainConfig,
    instrument: bool,
) -> (Vec<EpochStats>, Option<RankTelemetry>)
where
    C: Communicator,
    MB: Fn() -> Sequential + Sync,
    AB: Fn() -> A + Sync,
    A: DistributedOptimizer,
{
    let (_, history, telemetry) = train_rank_with_model(
        comm,
        data,
        model_builder,
        aggregator_builder,
        cfg,
        instrument,
    );
    (history, telemetry)
}

/// [`train_rank`], additionally returning the trained model — the hook
/// for bit-exactness checks across communicator backends (`acp-serve`'s
/// `served_equivalence` test compares the returned weights byte-for-byte
/// between a [`ThreadGroup`] run and a run aggregated through the
/// service).
pub fn train_rank_with_model<C, MB, AB, A>(
    mut comm: C,
    data: &Dataset,
    model_builder: &MB,
    aggregator_builder: &AB,
    cfg: &TrainConfig,
    instrument: bool,
) -> (Sequential, Vec<EpochStats>, Option<RankTelemetry>)
where
    C: Communicator,
    MB: Fn() -> Sequential + Sync,
    AB: Fn() -> A + Sync,
    A: DistributedOptimizer,
{
    let mut model = model_builder();
    let mut aggregator = aggregator_builder();
    let recorder = if instrument {
        let rec = Arc::new(InMemoryRecorder::new());
        comm.set_recorder(rec.clone());
        aggregator.set_recorder(rec.clone());
        Some(rec)
    } else {
        None
    };
    let rank = comm.rank();
    if cfg.auto_tune {
        // The autotuner's profiling run attaches its own recorder; restore
        // the training one (or none) afterwards so training telemetry is
        // not polluted by profiling collectives.
        let tuned =
            crate::autotune::auto_tune_rank(&mut comm, &mut aggregator, &mut model, data, cfg);
        if let Some(rec) = &recorder {
            comm.set_recorder(rec.clone());
        }
        if let Err(e) = tuned {
            if rank == 0 {
                eprintln!("auto-tune skipped, keeping the configured buffer: {e}");
            }
        }
    }
    let overlap = cfg.overlap && aggregator.supports_overlap();
    // Global forward-order index of each layer's first parameter tensor —
    // the index space `push_ready` expects.
    let layer_offsets: Vec<usize> = {
        let mut acc = 0usize;
        model
            .params_per_layer()
            .into_iter()
            .map(|count| {
                let start = acc;
                acc += count;
                start
            })
            .collect()
    };
    let mut deltas = StepDeltas::new();
    let mut steps: Vec<StepReport> = Vec::new();
    let mut sgd = SgdMomentum::new(cfg.schedule.lr_at(0), cfg.momentum, cfg.weight_decay);
    let shard = data.shard_indices(rank, comm.world_size());
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let lr = cfg.schedule.lr_at(epoch);
        sgd.set_lr(lr);
        // Per-rank, per-epoch shuffle of the local shard.
        let mut order = shard.clone();
        let mut rng = seeded_rng(cfg.seed ^ (epoch as u64) << 20 ^ rank as u64);
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let (x, y) = make_batch(data, chunk, true);
            let logits = model.forward(&x);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &y);
            let backward_start = recorder.as_ref().map(|rec| rec.now_us());
            if overlap {
                // Wait-free backpropagation: hand each layer's gradients to
                // the aggregation pipeline the moment its backward finishes,
                // so full buckets communicate while earlier layers compute.
                model.backward_with(&dlogits, |layer, params| {
                    let base = layer_offsets[layer];
                    for (slot, p) in params.iter_mut().enumerate() {
                        aggregator
                            .push_ready(base + slot, p.dims, p.grad, &mut comm)
                            .expect("gradient dispatch failed");
                    }
                });
            } else {
                model.backward(&dlogits);
            }
            if let (Some(rec), Some(start_us)) = (&recorder, backward_start) {
                rec.span(Span {
                    name: keys::SPAN_BACKWARD,
                    cat: keys::CAT_COMPUTE,
                    track: rank as u64,
                    start_us,
                    end_us: rec.now_us(),
                });
            }
            let mut params = model.params();
            let mut views: Vec<GradViewMut<'_>> = params
                .iter_mut()
                .map(|p| GradViewMut {
                    dims: p.dims,
                    grad: &mut *p.grad,
                })
                .collect();
            if overlap {
                aggregator
                    .finish_overlap(&mut views, &mut comm)
                    .expect("gradient aggregation failed");
            } else {
                aggregator
                    .aggregate(&mut views, &mut comm)
                    .expect("gradient aggregation failed");
            }
            sgd.step(&mut params);
            if let Some(rec) = &recorder {
                let mut report = deltas.take(rec, epoch, batches);
                report.loss = Some(loss as f64);
                steps.push(report);
            }
            loss_sum += loss as f64;
            batches += 1;
        }
        let test_accuracy = evaluate(&mut model, data, cfg.batch_size.max(1));
        history.push(EpochStats {
            epoch,
            train_loss: (loss_sum / batches.max(1) as f64) as f32,
            test_accuracy,
            lr,
        });
    }
    let telemetry = recorder.map(|rec| RankTelemetry {
        rank,
        steps,
        snapshot: rec.snapshot(),
    });
    (model, history, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::mlp;
    use acp_core::{AcpSgdAggregator, AcpSgdConfig, SSgdAggregator};

    fn quick_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 16,
            schedule: LrSchedule::new(0.1, 0, Vec::new()),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn ssgd_learns_gaussian_clusters() {
        let data = Dataset::gaussian_clusters(4, 8, 60, 0.3, 11);
        let history = train_distributed(
            2,
            &data,
            || mlp(&[8, 16, 4], 5),
            SSgdAggregator::new,
            &quick_cfg(8),
        );
        let last = history.last().unwrap();
        assert!(last.test_accuracy > 0.9, "accuracy {}", last.test_accuracy);
        assert!(last.train_loss < history[0].train_loss);
    }

    #[test]
    fn acp_matches_ssgd_on_easy_task() {
        let data = Dataset::gaussian_clusters(4, 8, 60, 0.3, 13);
        let cfg = quick_cfg(8);
        let ssgd = train_distributed(2, &data, || mlp(&[8, 16, 4], 5), SSgdAggregator::new, &cfg);
        let acp = train_distributed(
            2,
            &data,
            || mlp(&[8, 16, 4], 5),
            || {
                AcpSgdAggregator::new(AcpSgdConfig {
                    rank: 4,
                    ..Default::default()
                })
            },
            &cfg,
        );
        let s = ssgd.last().unwrap().test_accuracy;
        let a = acp.last().unwrap().test_accuracy;
        assert!(a > s - 0.07, "ACP accuracy {a} far below S-SGD {s}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = Dataset::gaussian_clusters(3, 6, 30, 0.2, 17);
        let cfg = quick_cfg(3);
        let run = || train_distributed(2, &data, || mlp(&[6, 12, 3], 9), SSgdAggregator::new, &cfg);
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn history_length_matches_epochs() {
        let data = Dataset::gaussian_clusters(2, 4, 20, 0.2, 19);
        let history = train_distributed(
            1,
            &data,
            || mlp(&[4, 2], 1),
            SSgdAggregator::new,
            &quick_cfg(4),
        );
        assert_eq!(history.len(), 4);
        assert_eq!(history[3].epoch, 3);
    }

    #[test]
    fn instrumented_run_reports_per_step_telemetry() {
        let data = Dataset::gaussian_clusters(2, 4, 20, 0.2, 29);
        let cfg = quick_cfg(2);
        let report =
            train_distributed_instrumented(2, &data, || mlp(&[4, 2], 1), SSgdAggregator::new, &cfg);
        assert_eq!(report.ranks.len(), 2);
        for rank in &report.ranks {
            assert!(!rank.steps.is_empty());
            for s in &rank.steps {
                assert!(s.wire_bytes > 0, "ring all-reduce sends bytes");
                // S-SGD is uncompressed: payload == dense, ratio 1.
                assert_eq!(s.payload_bytes, s.dense_bytes);
                assert!(s.loss.is_some());
            }
            assert!(rank.snapshot.counters.contains_key("comm.bytes_sent"));
        }
        // Telemetry must not perturb training: history matches a plain run.
        let plain = train_distributed(2, &data, || mlp(&[4, 2], 1), SSgdAggregator::new, &cfg);
        assert_eq!(report.history, plain);
    }

    #[test]
    fn overlapped_training_matches_blocking_bitwise() {
        // WFBP is a scheduling change, not a numerical one: with small
        // fusion buckets (so pushes interleave with compute) the per-epoch
        // history must match the blocking path bit for bit.
        let data = Dataset::gaussian_clusters(3, 6, 30, 0.2, 17);
        let overlapped = quick_cfg(3);
        let blocking = TrainConfig {
            overlap: false,
            ..overlapped.clone()
        };
        let model = || mlp(&[6, 12, 3], 9);
        let agg = || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 2,
                warm_start_steps: 2,
                buffer_bytes: 256, // several buckets per step
                ..Default::default()
            })
        };
        let a = train_distributed(2, &data, model, agg, &overlapped);
        let b = train_distributed(2, &data, model, agg, &blocking);
        assert_eq!(a, b);
        let s = train_distributed(2, &data, model, SSgdAggregator::new, &overlapped);
        let t = train_distributed(2, &data, model, SSgdAggregator::new, &blocking);
        assert_eq!(s, t);
    }

    #[test]
    fn backward_spans_are_recorded_when_instrumented() {
        use acp_telemetry::keys;
        let data = Dataset::gaussian_clusters(2, 4, 20, 0.2, 29);
        let cfg = quick_cfg(2);
        let report =
            train_distributed_instrumented(2, &data, || mlp(&[4, 2], 1), SSgdAggregator::new, &cfg);
        for rank in &report.ranks {
            let backward = rank
                .snapshot
                .spans
                .iter()
                .filter(|s| s.name == keys::SPAN_BACKWARD && s.cat == keys::CAT_COMPUTE)
                .count();
            assert_eq!(backward, rank.steps.len(), "one backward span per step");
        }
    }

    #[test]
    fn lr_schedule_is_applied() {
        let data = Dataset::gaussian_clusters(2, 4, 20, 0.2, 23);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 8,
            schedule: LrSchedule::new(0.2, 2, vec![(3, 0.1)]),
            ..TrainConfig::default()
        };
        let history = train_distributed(1, &data, || mlp(&[4, 2], 1), SSgdAggregator::new, &cfg);
        assert!((history[0].lr - 0.1).abs() < 1e-6); // warmup 1/2
        assert!((history[1].lr - 0.2).abs() < 1e-6);
        assert!((history[3].lr - 0.02).abs() < 1e-6); // decayed
    }
}
