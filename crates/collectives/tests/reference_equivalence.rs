//! The serial reference reductions (`all_reduce_reference` and friends —
//! the aggregation core a gradient server runs when it holds every
//! member's contribution in memory) must be **bit-exact** with the live
//! ring algorithms executed over a real transport. Equality is asserted on
//! `f32::to_bits`, not approximate closeness: the serve path's whole
//! correctness claim is that a job cannot tell whether its collectives ran
//! peer-to-peer or through the aggregation service.

use acp_collectives::{
    all_gather_f32_reference, all_gather_u32_reference, all_reduce_reference, CommError,
    Communicator, ReduceOp, ThreadGroup,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn contributions(world: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..world)
        .map(|_| (0..len).map(|_| rng.gen_range(-4.0f32..4.0)).collect())
        .collect()
}

fn ring_all_reduce(inputs: &[Vec<f32>], op: ReduceOp) -> Vec<Vec<f32>> {
    let inputs = inputs.to_vec();
    ThreadGroup::run(inputs.len(), move |mut comm| {
        let mut buf = inputs[comm.rank_id().as_usize()].clone();
        comm.all_reduce(&mut buf, op).expect("all_reduce");
        buf
    })
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "bit divergence at element {i}: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reference_all_reduce_matches_ring_bitwise(
        world in 2usize..=8,
        len in 1usize..200,
        seed in 0u64..100_000,
    ) {
        let inputs = contributions(world, len, seed);
        let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        for op in [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max] {
            let reference = all_reduce_reference(&views, op).expect("reference");
            for ring in ring_all_reduce(&inputs, op) {
                assert_bits_eq(&reference, &ring);
            }
        }
    }

    #[test]
    fn reference_all_gather_matches_ring_bitwise(
        world in 2usize..=6,
        len in 1usize..64,
        seed in 0u64..100_000,
    ) {
        let inputs = contributions(world, len, seed);
        let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        let reference = all_gather_f32_reference(&views).expect("reference");
        let moved = inputs.clone();
        let gathered = ThreadGroup::run(world, move |mut comm| {
            comm.all_gather_f32(&moved[comm.rank_id().as_usize()])
                .expect("all_gather")
        });
        for g in gathered {
            assert_bits_eq(&reference, &g);
        }
    }
}

/// `all_reduce` returns early for a single-rank group *without* dividing a
/// `Mean` reduction — the reference must preserve that quirk exactly, or a
/// one-client serve job diverges from a world-1 peer group.
#[test]
fn single_rank_mean_skips_the_division_like_the_ring() {
    let buf = vec![3.0f32, -7.5, 0.25];
    let reference = all_reduce_reference(&[&buf], ReduceOp::Mean).expect("reference");
    assert_bits_eq(&reference, &buf);
    let ring = ring_all_reduce(std::slice::from_ref(&buf), ReduceOp::Mean);
    assert_bits_eq(&reference, &ring[0]);
}

/// Special values (signed zero, infinities, NaN) survive the reference
/// fold with the same bit patterns the live ring produces.
#[test]
fn special_values_fold_identically() {
    let inputs = vec![
        vec![0.0f32, -0.0, f32::INFINITY, 1.0, f32::MAX],
        vec![-0.0f32, 0.0, 1.0, f32::NEG_INFINITY, f32::MAX],
        vec![1.5f32, -2.5, -1.0, 2.0, -f32::MAX],
    ];
    let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
    for op in [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max] {
        let reference = all_reduce_reference(&views, op).expect("reference");
        for ring in ring_all_reduce(&inputs, op) {
            assert_bits_eq(&reference, &ring);
        }
    }
}

#[test]
fn reference_u32_gather_concatenates_in_rank_order() {
    let a = vec![1u32, 2];
    let b = vec![7u32, 8];
    let out = all_gather_u32_reference(&[&a, &b]).expect("gather");
    assert_eq!(out, vec![1, 2, 7, 8]);
}

#[test]
fn mismatched_lengths_are_structured_errors() {
    let a = vec![1.0f32, 2.0];
    let b = vec![1.0f32];
    match all_reduce_reference(&[&a, &b], ReduceOp::Sum) {
        Err(CommError::LengthMismatch { expected, actual }) => {
            assert_eq!((expected, actual), (2, 1));
        }
        other => panic!("expected LengthMismatch, got {other:?}"),
    }
    assert!(matches!(
        all_reduce_reference(&[], ReduceOp::Sum),
        Err(CommError::ProtocolMismatch)
    ));
    let g: Result<_, _> = all_gather_f32_reference(&[&a[..], &b[..]]);
    assert!(matches!(g, Err(CommError::LengthMismatch { .. })));
}

/// Empty buffers are legal collectives (zero-length tensors exist in
/// padded models); the reference agrees with the ring on them too.
#[test]
fn empty_buffers_reduce_to_empty() {
    let inputs = [Vec::<f32>::new(), Vec::new(), Vec::new()];
    let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
    let reference = all_reduce_reference(&views, ReduceOp::Sum).expect("reference");
    assert!(reference.is_empty());
}
