//! Collective-schedule tracing and cross-rank verification.
//!
//! Mismatched collective schedules are the classic silent failure of
//! SPMD communication stacks: when one rank fuses its buckets differently,
//! skips a collective, or lets ACP-SGD's P/Q alternation desynchronize, an
//! MPI/NCCL program either deadlocks or — worse — reduces unrelated
//! payloads that happen to have the same shape. This module pins the
//! schedule down mechanically:
//!
//! * **Always on**: every collective executed by a worker-backed
//!   communicator advances a per-rank [`ScheduleTracer`] — a sequence
//!   number, a rolling FNV-1a digest of `(op kind, element count,
//!   parameter)` fingerprints, and a bounded window of recent
//!   [`ScheduleEntry`]s. Cost: one hash step and one ring-buffer push per
//!   *collective* (not per message), invisible next to the collective
//!   itself. Snapshots are exposed through
//!   [`Communicator::schedule`](crate::Communicator::schedule).
//! * **[`VerifyMode::CrossCheck`]**: every wire message additionally
//!   carries a [`ScheduleTag`] naming the sender's current position in its
//!   schedule. The receiver compares the tag against its own position at
//!   delivery time and raises
//!   [`CommError::ScheduleMismatch`](crate::CommError::ScheduleMismatch)
//!   naming the **first divergent collective** — within the op's own
//!   deadline, long before a peer timeout, and instead of a misleading
//!   `ProtocolMismatch` or a silent wrong result. Tag bytes are excluded
//!   from the Table II volume accounting (like barrier tokens), so byte
//!   reconciliation tests hold in both modes.
//!
//! The offline half lives in `acp-verify`: recorded [`ScheduleEntry`] logs
//! can be exported and replayed by `acp-verify check-trace`, which
//! statically pinpoints divergences across ranks without re-running the
//! job.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How many recent [`ScheduleEntry`]s the always-on window retains.
pub const SCHEDULE_WINDOW: usize = 64;

/// Environment variable selecting the [`VerifyMode`] for communicators
/// that consult the environment (the TCP backend's `TcpConfig::local`,
/// multi-process launches). `1`/`cross`/`full` enable
/// [`VerifyMode::CrossCheck`]; unset/`0`/`digest` keep the default.
pub const ENV_VERIFY_SCHEDULE: &str = "ACP_VERIFY_SCHEDULE";

/// How much schedule verification a communicator performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Record the rolling digest and window only (always-on baseline; no
    /// wire-format change, no cross-rank checking).
    #[default]
    Digest,
    /// Additionally tag every wire message with the sender's schedule
    /// position and verify tags at delivery, raising `ScheduleMismatch`
    /// at the first divergent collective. Also retains the *full*
    /// schedule log for export to `acp-verify check-trace`.
    CrossCheck,
}

impl VerifyMode {
    /// Reads [`ENV_VERIFY_SCHEDULE`]. Unset, `0`, `off` and `digest` map
    /// to [`VerifyMode::Digest`]; `1`, `cross`, `crosscheck` and `full`
    /// map to [`VerifyMode::CrossCheck`]; anything else falls back to
    /// `Digest` (verification is a diagnostic — a typo must not change
    /// collective semantics mid-fleet).
    pub fn from_env() -> VerifyMode {
        match std::env::var(ENV_VERIFY_SCHEDULE) {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "1" | "cross" | "crosscheck" | "full" => VerifyMode::CrossCheck,
                _ => VerifyMode::Digest,
            },
            Err(_) => VerifyMode::Digest,
        }
    }
}

/// The kind of a collective operation, as fingerprinted by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Ring all-reduce.
    AllReduce,
    /// Recursive-doubling all-reduce.
    AllReduceRd,
    /// `f32` all-gather.
    AllGatherF32,
    /// `u32` all-gather.
    AllGatherU32,
    /// Broadcast (parameter = root).
    Broadcast,
    /// Sparse gTop-k all-reduce (parameter = k; element counts are
    /// legitimately rank-dependent and excluded from the fingerprint).
    GlobalTopk,
    /// Pairwise exchange.
    SendRecv,
    /// Barrier.
    Barrier,
    /// Topology declaration (parameter = [`Topology::fingerprint`]): a
    /// two-level group records its arrangement as schedule op 0, so a flat
    /// and a hierarchical schedule over the same collectives can never
    /// digest-collide. Flat groups record nothing (the flat ring is the
    /// implicit default), keeping existing flat traces stable.
    ///
    /// [`Topology::fingerprint`]: crate::Topology::fingerprint
    Topology,
    /// Membership reform (words = survivor count, parameter =
    /// [`membership_param`]): recorded by `reform()` so the re-derived
    /// schedule digest provably agrees across survivors — and stays
    /// replayable by `acp-verify check-trace`, which recomputes the chain
    /// from op fingerprints.
    Reform,
}

impl OpKind {
    /// Stable wire encoding of the kind.
    pub fn code(self) -> u8 {
        match self {
            OpKind::AllReduce => 1,
            OpKind::AllReduceRd => 2,
            OpKind::AllGatherF32 => 3,
            OpKind::AllGatherU32 => 4,
            OpKind::Broadcast => 5,
            OpKind::GlobalTopk => 6,
            OpKind::SendRecv => 7,
            OpKind::Barrier => 8,
            OpKind::Topology => 9,
            OpKind::Reform => 10,
        }
    }

    /// Decodes [`OpKind::code`]; `None` for unknown codes (a corrupt or
    /// future-version tag).
    pub fn from_code(code: u8) -> Option<OpKind> {
        Some(match code {
            1 => OpKind::AllReduce,
            2 => OpKind::AllReduceRd,
            3 => OpKind::AllGatherF32,
            4 => OpKind::AllGatherU32,
            5 => OpKind::Broadcast,
            6 => OpKind::GlobalTopk,
            7 => OpKind::SendRecv,
            8 => OpKind::Barrier,
            9 => OpKind::Topology,
            10 => OpKind::Reform,
            _ => return None,
        })
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpKind::AllReduce => "all_reduce",
            OpKind::AllReduceRd => "all_reduce_rd",
            OpKind::AllGatherF32 => "all_gather_f32",
            OpKind::AllGatherU32 => "all_gather_u32",
            OpKind::Broadcast => "broadcast",
            OpKind::GlobalTopk => "global_topk",
            OpKind::SendRecv => "send_recv",
            OpKind::Barrier => "barrier",
            OpKind::Topology => "topology",
            OpKind::Reform => "reform",
        };
        f.write_str(name)
    }
}

/// One rank's position in its collective schedule: the fingerprint of a
/// single collective plus where it sits in the sequence.
///
/// `words` is the payload element count every rank must agree on (buffer
/// length for all-reduce/broadcast, per-rank contribution for all-gather,
/// 0 where counts are legitimately rank-dependent); `param` carries the
/// op's shape-relevant argument (reduce operator, broadcast root, top-k).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePoint {
    /// 0-based index of the collective in this rank's schedule.
    pub seq: u64,
    /// Collective kind.
    pub kind: OpKind,
    /// Fingerprinted element count.
    pub words: u64,
    /// Fingerprinted operation parameter.
    pub param: u64,
}

impl fmt::Display for SchedulePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}(words={}, param={})",
            self.seq, self.kind, self.words, self.param
        )
    }
}

/// One recorded collective, as kept in the tracer's window/log and
/// replayed by `acp-verify check-trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Where the collective sits in the schedule and what it was.
    pub point: SchedulePoint,
    /// Rolling digest *after* folding this collective in.
    pub digest: u64,
}

/// The tag a [`VerifyMode::CrossCheck`] sender attaches to every wire
/// message: its current schedule position plus the digest of everything
/// *before* the current collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleTag {
    /// The sender's current collective.
    pub point: SchedulePoint,
    /// The sender's rolling digest before this collective.
    pub pre_digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one collective fingerprint into a rolling digest.
pub fn digest_step(prev: u64, kind: OpKind, words: u64, param: u64) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &prev.to_le_bytes());
    h = fnv1a(h, &[kind.code()]);
    h = fnv1a(h, &words.to_le_bytes());
    fnv1a(h, &param.to_le_bytes())
}

/// A point-in-time copy of one rank's schedule state, read through
/// [`Communicator::schedule`](crate::Communicator::schedule).
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct ScheduleSnapshot {
    /// Number of collectives recorded so far.
    pub seq: u64,
    /// Rolling digest over all recorded collectives.
    pub digest: u64,
    /// Recent entries: the last [`SCHEDULE_WINDOW`] in [`VerifyMode::Digest`],
    /// the complete log in [`VerifyMode::CrossCheck`].
    pub entries: Vec<ScheduleEntry>,
}

/// Shared schedule state: written by the transport (possibly from the comm
/// worker thread), readable from the owning communicator handle.
#[derive(Debug, Default)]
pub struct ScheduleCell {
    seq: AtomicU64,
    digest: AtomicU64,
    window: Mutex<VecDeque<ScheduleEntry>>,
    /// Complete log, populated only in [`VerifyMode::CrossCheck`].
    log: Mutex<Vec<ScheduleEntry>>,
}

/// Domain separator of [`membership_param`] fingerprints.
const FOLD_MEMBERSHIP: u8 = 0xA2;

/// Fingerprint parameter of an [`OpKind::Reform`] schedule op: folds the
/// new epoch and the sorted surviving physical ranks. Two survivors fold
/// the same parameter exactly when they agree on *who* survived and how
/// many times the group has re-formed — so the post-reform digests agree
/// iff the memberships do.
pub fn membership_param(epoch: u64, survivors: &[usize]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &[FOLD_MEMBERSHIP]);
    h = fnv1a(h, &epoch.to_le_bytes());
    for &r in survivors {
        h = fnv1a(h, &(r as u64).to_le_bytes());
    }
    h
}

impl ScheduleCell {
    /// The current rolling digest.
    pub fn digest(&self) -> u64 {
        self.digest.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the recorded schedule. `full` selects the
    /// complete log (cross-check mode) over the bounded window.
    pub fn snapshot(&self, full: bool) -> ScheduleSnapshot {
        let entries = if full {
            // A poisoned lock only means a worker panicked mid-record; the
            // entries already pushed are still sound for diagnosis.
            self.log.lock().unwrap_or_else(|e| e.into_inner()).clone()
        } else {
            self.window
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .copied()
                .collect()
        };
        ScheduleSnapshot {
            seq: self.seq.load(Ordering::SeqCst),
            digest: self.digest.load(Ordering::SeqCst),
            entries,
        }
    }
}

/// Per-rank schedule recorder owned by a transport.
///
/// [`begin_op`](ScheduleTracer::begin_op) is called once per collective by
/// the shared execution path; [`tag`](ScheduleTracer::tag) and
/// [`check`](ScheduleTracer::check) implement the cross-check protocol on
/// the transport's send/receive paths.
#[derive(Debug)]
pub struct ScheduleTracer {
    mode: VerifyMode,
    cell: Arc<ScheduleCell>,
    /// Digest before the current collective (what outgoing tags carry).
    pre_digest: u64,
    /// The collective currently executing, if any.
    current: Option<SchedulePoint>,
}

impl ScheduleTracer {
    /// Creates a tracer recording into `cell`.
    pub fn new(mode: VerifyMode, cell: Arc<ScheduleCell>) -> Self {
        ScheduleTracer {
            mode,
            cell,
            pre_digest: 0,
            current: None,
        }
    }

    /// A tracer with private state, for tests and standalone transports.
    pub fn detached(mode: VerifyMode) -> Self {
        ScheduleTracer::new(mode, Arc::new(ScheduleCell::default()))
    }

    /// The configured verification mode.
    pub fn mode(&self) -> VerifyMode {
        self.mode
    }

    /// The rolling digest after the most recently recorded op.
    pub fn digest(&self) -> u64 {
        self.cell.digest()
    }

    /// Records the start of one collective: assigns it the next sequence
    /// number, folds its fingerprint into the rolling digest, and appends
    /// it to the window (and, in cross-check mode, the full log).
    pub fn begin_op(&mut self, kind: OpKind, words: u64, param: u64) {
        let seq = self.cell.seq.fetch_add(1, Ordering::SeqCst);
        self.pre_digest = self.cell.digest.load(Ordering::SeqCst);
        let digest = digest_step(self.pre_digest, kind, words, param);
        self.cell.digest.store(digest, Ordering::SeqCst);
        let point = SchedulePoint {
            seq,
            kind,
            words,
            param,
        };
        self.current = Some(point);
        let entry = ScheduleEntry { point, digest };
        {
            let mut window = self.cell.window.lock().unwrap_or_else(|e| e.into_inner());
            if window.len() == SCHEDULE_WINDOW {
                window.pop_front();
            }
            window.push_back(entry);
        }
        if self.mode == VerifyMode::CrossCheck {
            self.cell
                .log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(entry);
        }
    }

    /// The tag outgoing messages should carry, or `None` when tagging is
    /// off (digest-only mode, or no collective running — e.g. a transport
    /// driven point-to-point by diagnostics).
    pub fn tag(&self) -> Option<ScheduleTag> {
        if self.mode != VerifyMode::CrossCheck {
            return None;
        }
        self.current.map(|point| ScheduleTag {
            point,
            pre_digest: self.pre_digest,
        })
    }

    /// Verifies a received tag against this rank's current collective.
    ///
    /// Delivery-time checking is what makes this sound with pipelined comm
    /// workers: per-peer message order is FIFO, and a rank consumes
    /// exactly the messages of its current collective, so an aligned
    /// schedule always delivers matching tags — any mismatch is a real
    /// divergence, reported as the first divergent collective.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CommError::ScheduleMismatch`] when the tag
    /// disagrees with the local schedule position.
    pub fn check(&self, tag: &ScheduleTag) -> Result<(), crate::CommError> {
        if self.mode != VerifyMode::CrossCheck {
            return Ok(());
        }
        let Some(local) = self.current else {
            // No collective running locally: a tagged message can only
            // mean the peer is mid-collective while we are not.
            return Err(crate::CommError::ScheduleMismatch {
                seq: tag.point.seq,
                local: None,
                peer: tag.point,
            });
        };
        let aligned = local == tag.point && self.pre_digest == tag.pre_digest;
        if aligned {
            return Ok(());
        }
        Err(crate::CommError::ScheduleMismatch {
            seq: local.seq.min(tag.point.seq),
            local: Some(local),
            peer: tag.point,
        })
    }
}

/// Strips (and in cross-check mode verifies) a schedule tag at delivery
/// time — the moment a message is handed to the collective algorithm, which
/// is when the receiver's own schedule position is the one the sender's
/// must match. Checking earlier (at inbox receipt) would false-positive: a
/// FIFO comm worker legitimately buffers a peer's *next* collective's
/// messages while still finishing the current one; per-(sender, receiver)
/// FIFO ordering is what makes the delivery-time check sound.
///
/// Untagged messages pass through unchecked, so a cross-check rank
/// degrades gracefully against digest-only peers (all ranks of a group
/// should still run the same [`VerifyMode`]).
///
/// # Errors
///
/// Propagates [`crate::CommError::ScheduleMismatch`] from
/// [`ScheduleTracer::check`].
pub fn deliver_checked(
    tracer: &ScheduleTracer,
    msg: crate::WireMsg,
) -> Result<crate::WireMsg, crate::CommError> {
    match msg {
        crate::WireMsg::Tagged(tag, inner) => {
            tracer.check(&tag)?;
            Ok(*inner)
        }
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let a = digest_step(
            digest_step(0, OpKind::AllReduce, 8, 0),
            OpKind::Barrier,
            0,
            0,
        );
        let b = digest_step(
            digest_step(0, OpKind::Barrier, 0, 0),
            OpKind::AllReduce,
            8,
            0,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn digest_distinguishes_words_and_param() {
        let base = digest_step(0, OpKind::AllReduce, 8, 0);
        assert_ne!(base, digest_step(0, OpKind::AllReduce, 9, 0));
        assert_ne!(base, digest_step(0, OpKind::AllReduce, 8, 1));
        assert_ne!(base, digest_step(0, OpKind::AllGatherF32, 8, 0));
    }

    #[test]
    fn tracer_records_window_and_sequence() {
        let mut t = ScheduleTracer::detached(VerifyMode::Digest);
        for i in 0..(SCHEDULE_WINDOW + 5) {
            t.begin_op(OpKind::AllReduce, i as u64, 0);
        }
        let snap = t.cell.snapshot(false);
        assert_eq!(snap.seq, (SCHEDULE_WINDOW + 5) as u64);
        assert_eq!(snap.entries.len(), SCHEDULE_WINDOW);
        assert_eq!(snap.entries[0].point.seq, 5);
        // Digest-only mode does not grow the full log.
        assert!(t.cell.snapshot(true).entries.is_empty());
    }

    #[test]
    fn cross_check_mode_keeps_the_full_log() {
        let mut t = ScheduleTracer::detached(VerifyMode::CrossCheck);
        for _ in 0..3 {
            t.begin_op(OpKind::Barrier, 0, 0);
        }
        assert_eq!(t.cell.snapshot(true).entries.len(), 3);
    }

    #[test]
    fn matching_tags_pass_and_divergent_tags_fail() {
        let mut a = ScheduleTracer::detached(VerifyMode::CrossCheck);
        let mut b = ScheduleTracer::detached(VerifyMode::CrossCheck);
        a.begin_op(OpKind::AllReduce, 16, 0);
        b.begin_op(OpKind::AllReduce, 16, 0);
        let tag = a.tag().expect("cross-check mode tags");
        b.check(&tag).expect("aligned schedules");
        // b runs an extra collective; a's next tag now trails b's seq.
        b.begin_op(OpKind::Barrier, 0, 0);
        a.begin_op(OpKind::Barrier, 0, 0);
        a.begin_op(OpKind::Barrier, 0, 0);
        let err = b.check(&a.tag().expect("tag")).unwrap_err();
        match err {
            crate::CommError::ScheduleMismatch { seq, .. } => assert_eq!(seq, 1),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn digest_mode_never_tags() {
        let mut t = ScheduleTracer::detached(VerifyMode::Digest);
        t.begin_op(OpKind::AllReduce, 4, 0);
        assert!(t.tag().is_none());
    }
}
