//! Backend-agnostic collective algorithms over a point-to-point transport.
//!
//! The ring and butterfly algorithms (chunked ring all-reduce, ring
//! all-gather, pipelined broadcast, token barrier, recursive doubling,
//! gTop-k merge) are written once here, generically over [`Transport`] —
//! the minimal point-to-point interface a backend must provide. Both
//! [`crate::ThreadCommunicator`] (in-process channels) and `acp-net`'s
//! `TcpCommunicator` (real sockets) implement [`Transport`] and run *these
//! same functions*, which is what makes the two backends bit-exact with
//! each other: the floating-point reduction order is identical by
//! construction, not by testing alone.

use crate::communicator::{CommError, ReduceOp};

/// A typed message exchanged between ranks by the collective algorithms.
///
/// Backends serialize this however they like (in-process channels move it
/// directly; the TCP backend length-prefix-frames it). `payload_bytes`
/// defines the wire-volume accounting used by the Table II reconciliation
/// tests: payload only, no framing overhead, and barrier tokens are free.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Dense `f32` payload (all-reduce chunks, broadcast, all-gather).
    F32(Vec<f32>),
    /// Dense `u32` payload (bit-packed signs, sparse indices).
    U32(Vec<u32>),
    /// Sparse (indices, values) pair for the gTop-k collective.
    Sparse(Vec<u32>, Vec<f32>),
    /// Zero-byte synchronization token (barrier).
    Token,
    /// A message wrapped with the sender's schedule position
    /// ([`VerifyMode::CrossCheck`](crate::schedule::VerifyMode::CrossCheck)
    /// only). Transports add the tag on send and strip it at delivery after
    /// verifying it against the receiver's own schedule — the collective
    /// algorithms never see this variant.
    Tagged(crate::schedule::ScheduleTag, Box<WireMsg>),
}

impl WireMsg {
    /// Payload bytes this message contributes to the Table II volume
    /// accounting (4 bytes per element; tokens and schedule tags free, like
    /// all framing overhead).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            WireMsg::F32(v) => 4 * v.len() as u64,
            WireMsg::U32(v) => 4 * v.len() as u64,
            WireMsg::Sparse(i, v) => 4 * (i.len() + v.len()) as u64,
            WireMsg::Token => 0,
            WireMsg::Tagged(_, inner) => inner.payload_bytes(),
        }
    }
}

/// Point-to-point message transport between the ranks of a group.
///
/// This is the narrow waist between collective *algorithms* (this module)
/// and collective *backends* (threads, TCP). Implementations must deliver
/// messages between any pair of ranks reliably and in order per
/// (sender, receiver) pair; they are free to fail with structured
/// [`CommError`]s (timeout, I/O, peer loss), which the algorithms
/// propagate unchanged.
pub trait Transport {
    /// This endpoint's rank in `[0, world_size)`.
    fn rank(&self) -> usize;

    /// Number of ranks in the group.
    fn world_size(&self) -> usize;

    /// Sends `msg` to `dest`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dest` is out of range, unreachable on this
    /// topology, or the link fails.
    fn send_to(&mut self, dest: usize, msg: WireMsg) -> Result<(), CommError>;

    /// Receives the next message from `src` (blocking, subject to the
    /// backend's deadline).
    ///
    /// # Errors
    ///
    /// Returns an error on timeout, disconnect, or an out-of-range `src`.
    fn recv_from(&mut self, src: usize) -> Result<WireMsg, CommError>;

    /// Sends a borrowed `f32` payload to `dest`.
    ///
    /// The default copies into an owned [`WireMsg`] and forwards to
    /// [`Transport::send_to`] — necessary for backends that hand the
    /// message itself to the peer (in-process channels). Backends that
    /// serialize onto a wire override this to write straight from the
    /// slice with no intermediate copy (the TCP backend's vectored send).
    ///
    /// # Errors
    ///
    /// As [`Transport::send_to`].
    fn send_f32s(&mut self, dest: usize, payload: &[f32]) -> Result<(), CommError> {
        // allow_verify(reason = "ownership fallback for channel backends; wire backends override")
        self.send_to(dest, WireMsg::F32(payload.to_vec()))
    }

    /// Sends a borrowed `u32` payload to `dest` (see [`Transport::send_f32s`]).
    ///
    /// # Errors
    ///
    /// As [`Transport::send_to`].
    fn send_u32s(&mut self, dest: usize, payload: &[u32]) -> Result<(), CommError> {
        // allow_verify(reason = "ownership fallback for channel backends; wire backends override")
        self.send_to(dest, WireMsg::U32(payload.to_vec()))
    }

    /// Sends a borrowed sparse (indices, values) payload to `dest` (see
    /// [`Transport::send_f32s`]).
    ///
    /// # Errors
    ///
    /// As [`Transport::send_to`].
    fn send_sparse(
        &mut self,
        dest: usize,
        indices: &[u32],
        values: &[f32],
    ) -> Result<(), CommError> {
        // allow_verify(reason = "ownership fallback for channel backends; wire backends override")
        self.send_to(dest, WireMsg::Sparse(indices.to_vec(), values.to_vec()))
    }
}

fn next_rank<T: Transport + ?Sized>(t: &T) -> usize {
    (t.rank() + 1) % t.world_size()
}

fn prev_rank<T: Transport + ?Sized>(t: &T) -> usize {
    (t.rank() + t.world_size() - 1) % t.world_size()
}

/// Unwraps an `F32` message of length `expected`.
pub(crate) fn expect_f32(msg: WireMsg, expected: usize) -> Result<Vec<f32>, CommError> {
    match msg {
        WireMsg::F32(v) if v.len() == expected => Ok(v),
        WireMsg::F32(v) => Err(CommError::LengthMismatch {
            expected,
            actual: v.len(),
        }),
        _ => Err(CommError::ProtocolMismatch),
    }
}

fn expect_u32(msg: WireMsg, expected: usize) -> Result<Vec<u32>, CommError> {
    match msg {
        WireMsg::U32(v) if v.len() == expected => Ok(v),
        WireMsg::U32(v) => Err(CommError::LengthMismatch {
            expected,
            actual: v.len(),
        }),
        _ => Err(CommError::ProtocolMismatch),
    }
}

pub(crate) fn recv_f32<T: Transport + ?Sized>(
    t: &mut T,
    src: usize,
    expected: usize,
) -> Result<Vec<f32>, CommError> {
    let msg = t.recv_from(src)?;
    expect_f32(msg, expected)
}

fn recv_u32<T: Transport + ?Sized>(
    t: &mut T,
    src: usize,
    expected: usize,
) -> Result<Vec<u32>, CommError> {
    let msg = t.recv_from(src)?;
    expect_u32(msg, expected)
}

/// Chunk boundaries for splitting `len` elements into `world_size` nearly
/// equal contiguous ranges.
pub(crate) fn chunk_range(len: usize, chunk: usize, world_size: usize) -> std::ops::Range<usize> {
    let start = chunk * len / world_size;
    let end = (chunk + 1) * len / world_size;
    start..end
}

pub(crate) fn reduce_into(dst: &mut [f32], src: &[f32], op: ReduceOp) {
    match op {
        ReduceOp::Sum | ReduceOp::Mean => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        ReduceOp::Max => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = d.max(*s);
            }
        }
    }
}

/// Bandwidth-optimal ring all-reduce: chunked reduce-scatter followed by
/// ring all-gather; per-rank transmitted volume `2(p−1)/p · N` (Table II).
///
/// # Errors
///
/// Returns an error on disconnect, timeout, or inconsistent buffer lengths.
pub fn all_reduce<T: Transport + ?Sized>(
    t: &mut T,
    buf: &mut [f32],
    op: ReduceOp,
) -> Result<(), CommError> {
    let p = t.world_size();
    if p == 1 {
        return Ok(());
    }
    let r = t.rank();
    let (next, prev) = (next_rank(t), prev_rank(t));
    let len = buf.len();
    // Phase 1: ring reduce-scatter. After p-1 steps rank r owns the fully
    // reduced chunk (r+1) mod p.
    for s in 0..p - 1 {
        let send_idx = (r + p - s) % p;
        let recv_idx = (r + p - s - 1) % p;
        let send_range = chunk_range(len, send_idx, p);
        t.send_f32s(next, &buf[send_range])?;
        let recv_range = chunk_range(len, recv_idx, p);
        let incoming = recv_f32(t, prev, recv_range.len())?;
        reduce_into(&mut buf[recv_range], &incoming, op);
    }
    // Phase 2: ring all-gather of the reduced chunks.
    for s in 0..p - 1 {
        let send_idx = (r + 1 + p - s) % p;
        let recv_idx = (r + p - s) % p;
        let send_range = chunk_range(len, send_idx, p);
        t.send_f32s(next, &buf[send_range])?;
        let recv_range = chunk_range(len, recv_idx, p);
        let incoming = recv_f32(t, prev, recv_range.len())?;
        buf[recv_range].copy_from_slice(&incoming);
    }
    if op == ReduceOp::Mean {
        let inv = 1.0 / p as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }
    Ok(())
}

/// Ring all-gather of `f32` payloads; returns the concatenation in rank
/// order.
///
/// # Errors
///
/// Returns an error on disconnect, timeout, or inconsistent lengths.
pub fn all_gather_f32<T: Transport + ?Sized>(
    t: &mut T,
    send: &[f32],
) -> Result<Vec<f32>, CommError> {
    let p = t.world_size();
    let k = send.len();
    let r = t.rank();
    let (next, prev) = (next_rank(t), prev_rank(t));
    let mut out = vec![0.0f32; p * k];
    out[r * k..(r + 1) * k].copy_from_slice(send);
    for s in 0..p - 1 {
        let send_slot = (r + p - s) % p;
        let recv_slot = (r + p - s - 1) % p;
        t.send_f32s(next, &out[send_slot * k..(send_slot + 1) * k])?;
        let incoming = recv_f32(t, prev, k)?;
        out[recv_slot * k..(recv_slot + 1) * k].copy_from_slice(&incoming);
    }
    Ok(out)
}

/// Ring all-gather of `u32` payloads; returns the concatenation in rank
/// order.
///
/// # Errors
///
/// Returns an error on disconnect, timeout, or inconsistent lengths.
pub fn all_gather_u32<T: Transport + ?Sized>(
    t: &mut T,
    send: &[u32],
) -> Result<Vec<u32>, CommError> {
    let p = t.world_size();
    let k = send.len();
    let r = t.rank();
    let (next, prev) = (next_rank(t), prev_rank(t));
    let mut out = vec![0u32; p * k];
    out[r * k..(r + 1) * k].copy_from_slice(send);
    for s in 0..p - 1 {
        let send_slot = (r + p - s) % p;
        let recv_slot = (r + p - s - 1) % p;
        t.send_u32s(next, &out[send_slot * k..(send_slot + 1) * k])?;
        let incoming = recv_u32(t, prev, k)?;
        out[recv_slot * k..(recv_slot + 1) * k].copy_from_slice(&incoming);
    }
    Ok(out)
}

/// Pipelined ring broadcast: the root sends, each rank forwards unless its
/// successor is the root.
///
/// # Errors
///
/// Returns an error for an out-of-range root, mismatched lengths, or a
/// dead peer.
pub fn broadcast<T: Transport + ?Sized>(
    t: &mut T,
    buf: &mut [f32],
    root: usize,
) -> Result<(), CommError> {
    let p = t.world_size();
    if root >= p {
        return Err(CommError::InvalidRoot {
            root,
            world_size: p,
        });
    }
    if p == 1 {
        return Ok(());
    }
    let (next, prev) = (next_rank(t), prev_rank(t));
    let next_is_root = next == root;
    if t.rank() == root {
        t.send_f32s(next, buf)?;
    } else {
        let incoming = recv_f32(t, prev, buf.len())?;
        buf.copy_from_slice(&incoming);
        if !next_is_root {
            t.send_to(next, WireMsg::F32(incoming))?;
        }
    }
    Ok(())
}

/// Ring barrier: two token trips around the ring — after the first every
/// rank has entered, the second releases them.
///
/// # Errors
///
/// Returns an error if a peer disconnects or times out.
pub fn barrier<T: Transport + ?Sized>(t: &mut T) -> Result<(), CommError> {
    let p = t.world_size();
    if p == 1 {
        return Ok(());
    }
    let (next, prev) = (next_rank(t), prev_rank(t));
    for _round in 0..2 {
        if t.rank() == 0 {
            t.send_to(next, WireMsg::Token)?;
            match t.recv_from(prev)? {
                WireMsg::Token => {}
                _ => return Err(CommError::ProtocolMismatch),
            }
        } else {
            match t.recv_from(prev)? {
                WireMsg::Token => {}
                _ => return Err(CommError::ProtocolMismatch),
            }
            t.send_to(next, WireMsg::Token)?;
        }
    }
    Ok(())
}

/// Simultaneously sends `send` to `peer` and receives their buffer of the
/// same length — the pairwise exchange of butterfly algorithms.
///
/// Both sides must call this with each other's rank. Requires a topology
/// where `peer` is directly reachable (full mesh, or neighbours on a ring).
///
/// # Errors
///
/// Returns an error on disconnect or mismatched lengths.
pub fn send_recv_f32<T: Transport + ?Sized>(
    t: &mut T,
    peer: usize,
    send: &[f32],
) -> Result<Vec<f32>, CommError> {
    t.send_f32s(peer, send)?;
    let msg = t.recv_from(peer)?;
    expect_f32(msg, send.len())
}

/// Largest power of two `<= p`.
fn pow2_floor(p: usize) -> usize {
    let x = 1usize << (usize::BITS - 1 - p.leading_zeros());
    if x > p {
        x >> 1
    } else {
        x
    }
}

/// Latency-optimal all-reduce by recursive doubling: `⌈log₂ p⌉` rounds of
/// full-buffer pairwise exchanges (`T = log₂(p)(α + Nβ)`), versus the
/// ring's `2(p−1)` messages of `N/p`. Preferable for small tensors — the
/// start-up-cost regime tensor fusion addresses.
///
/// Non-power-of-two groups fold the extra ranks onto partners before and
/// after the butterfly. Requires a full-mesh-capable transport.
///
/// # Errors
///
/// Returns an error on disconnect or inconsistent buffer lengths.
pub fn all_reduce_recursive_doubling<T: Transport + ?Sized>(
    t: &mut T,
    buf: &mut [f32],
    op: ReduceOp,
) -> Result<(), CommError> {
    let p = t.world_size();
    if p == 1 {
        return Ok(());
    }
    let pow2 = pow2_floor(p);
    let rem = p - pow2;
    let r = t.rank();
    // Pre-fold: ranks >= pow2 send to (rank - pow2); partners reduce.
    if r >= pow2 {
        t.send_f32s(r - pow2, buf)?;
    } else if r < rem {
        let msg = t.recv_from(r + pow2)?;
        let incoming = expect_f32(msg, buf.len())?;
        reduce_into(buf, &incoming, op);
    }
    // Butterfly over the pow2 group.
    if r < pow2 {
        let mut dist = 1usize;
        while dist < pow2 {
            let peer = r ^ dist;
            let incoming = send_recv_f32(t, peer, buf)?;
            reduce_into(buf, &incoming, op);
            dist <<= 1;
        }
    }
    // Post-fold: send results back to the folded ranks.
    if r < rem {
        t.send_f32s(r + pow2, buf)?;
    } else if r >= pow2 {
        let msg = t.recv_from(r - pow2)?;
        let incoming = expect_f32(msg, buf.len())?;
        buf.copy_from_slice(&incoming);
    }
    if op == ReduceOp::Mean {
        let inv = 1.0 / p as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }
    Ok(())
}

/// Keeps the `k` largest-magnitude entries of a coordinate map, returned
/// in ascending coordinate order.
///
/// Selection uses `total_cmp` on the magnitudes: NaN sums (which can
/// arise from Inf−Inf cancellation during the merge) order *above*
/// infinity on every rank, instead of the formerly NaN-unsafe
/// `partial_cmp(..).unwrap_or(Equal)` comparator whose non-total order
/// could leave different ranks keeping different coordinate sets.
pub fn truncate_topk(map: std::collections::BTreeMap<u32, f32>, k: usize) -> (Vec<u32>, Vec<f32>) {
    let mut entries: Vec<(u32, f32)> = map.into_iter().collect();
    if entries.len() > k {
        entries.select_nth_unstable_by(k - 1, |a, b| b.1.abs().total_cmp(&a.1.abs()));
        entries.truncate(k);
        entries.sort_unstable_by_key(|e| e.0);
    }
    entries.into_iter().unzip()
}

/// The `O(k log p)` gTop-k sparse all-reduce (Shi et al., ICDCS 2019):
/// butterfly exchange of sparse sets with per-round truncation to `k`.
/// Approximate — coordinates that are individually small everywhere can be
/// dropped even if their sum is large. Requires a full-mesh-capable
/// transport.
///
/// # Errors
///
/// Returns an error on disconnect or inconsistent calls.
pub fn global_topk_butterfly<T: Transport + ?Sized>(
    t: &mut T,
    indices: &[u32],
    values: &[f32],
    k: usize,
) -> Result<(Vec<u32>, Vec<f32>), CommError> {
    if indices.len() != values.len() {
        return Err(CommError::LengthMismatch {
            expected: indices.len(),
            actual: values.len(),
        });
    }
    let p = t.world_size();
    let mut map: std::collections::BTreeMap<u32, f32> = std::collections::BTreeMap::new();
    for (&i, &v) in indices.iter().zip(values) {
        *map.entry(i).or_insert(0.0) += v;
    }
    if p == 1 {
        return Ok(truncate_topk(map, k));
    }
    let pow2 = pow2_floor(p);
    let rem = p - pow2;
    let r = t.rank();
    let merge = |map: &mut std::collections::BTreeMap<u32, f32>, idx: Vec<u32>, val: Vec<f32>| {
        for (i, v) in idx.into_iter().zip(val) {
            *map.entry(i).or_insert(0.0) += v;
        }
    };
    let recv_sparse = |msg: WireMsg| -> Result<(Vec<u32>, Vec<f32>), CommError> {
        match msg {
            WireMsg::Sparse(i, v) => Ok((i, v)),
            _ => Err(CommError::ProtocolMismatch),
        }
    };
    if r >= pow2 {
        let (idx, val): (Vec<u32>, Vec<f32>) = map.into_iter().unzip();
        t.send_to(r - pow2, WireMsg::Sparse(idx, val))?;
        // Wait for the final result.
        let msg = t.recv_from(r - pow2)?;
        let (idx, val) = recv_sparse(msg)?;
        return Ok((idx, val));
    }
    if r < rem {
        let msg = t.recv_from(r + pow2)?;
        let (idx, val) = recv_sparse(msg)?;
        merge(&mut map, idx, val);
    }
    let mut dist = 1usize;
    while dist < pow2 {
        let peer = r ^ dist;
        let (send_idx, send_val): (Vec<u32>, Vec<f32>) = map.iter().map(|(&i, &v)| (i, v)).unzip();
        t.send_to(peer, WireMsg::Sparse(send_idx, send_val))?;
        let msg = t.recv_from(peer)?;
        let (idx, val) = recv_sparse(msg)?;
        merge(&mut map, idx, val);
        // Per-round truncation is what keeps gTop-k's traffic at
        // O(k log p) — and what makes it approximate.
        let (ti, tv) = truncate_topk(std::mem::take(&mut map), k);
        map = ti.into_iter().zip(tv).collect();
        dist <<= 1;
    }
    let (idx, val) = truncate_topk(map, k);
    if r < rem {
        t.send_sparse(r + pow2, &idx, &val)?;
    }
    Ok((idx, val))
}

/// Serial reference reduction replicating the chunked ring all-reduce of
/// [`all_reduce`] **bit-exactly**, without a transport.
///
/// This is the aggregation core of `acp-serve`: a server that holds every
/// member's contribution in memory must still produce the same IEEE-754
/// result the peer-to-peer ring would, or a job migrated between the two
/// paths silently diverges. The ring reduces chunk `c` by accumulating
/// contributions in ascending rank order starting at rank `c` (wrapping
/// mod `p`), with the freshly received partial always on the *right* of
/// each `x + acc` addition — this function performs the identical fold,
/// chunk by chunk, including the final mean division and the `p == 1`
/// early return (which skips the mean division, exactly like
/// [`all_reduce`]).
///
/// `contribs` is one slice per rank, in rank order.
///
/// # Errors
///
/// Returns [`CommError::LengthMismatch`] if the contributions disagree on
/// length, [`CommError::ProtocolMismatch`] if `contribs` is empty.
pub fn all_reduce_reference(contribs: &[&[f32]], op: ReduceOp) -> Result<Vec<f32>, CommError> {
    let p = contribs.len();
    let Some(first) = contribs.first() else {
        return Err(CommError::ProtocolMismatch);
    };
    let len = first.len();
    for c in contribs {
        if c.len() != len {
            return Err(CommError::LengthMismatch {
                expected: len,
                actual: c.len(),
            });
        }
    }
    if p == 1 {
        // allow_verify(reason = "serial reference path returns an owned result; no wire involved")
        return Ok(first.to_vec());
    }
    let mut out = vec![0.0f32; len];
    for c in 0..p {
        let range = chunk_range(len, c, p);
        out[range.clone()].copy_from_slice(&contribs[c][range.clone()]);
        for j in 1..p {
            let src = &contribs[(c + j) % p][range.clone()];
            // Mirror `reduce_into`'s operand order with the accumulated
            // partial in the *incoming* position: the ring receiver holds
            // its own fresh contribution and folds the arriving partial
            // into it (`local op incoming`), so the reference must compute
            // `x op acc`, not `acc op x` — f32 max is not NaN-symmetric.
            match op {
                ReduceOp::Sum | ReduceOp::Mean => {
                    #[allow(clippy::assign_op_pattern)]
                    for (o, x) in out[range.clone()].iter_mut().zip(src) {
                        *o = *x + *o;
                    }
                }
                ReduceOp::Max => {
                    for (o, x) in out[range.clone()].iter_mut().zip(src) {
                        *o = x.max(*o);
                    }
                }
            }
        }
    }
    if op == ReduceOp::Mean {
        let inv = 1.0 / p as f32;
        for v in out.iter_mut() {
            *v *= inv;
        }
    }
    Ok(out)
}

/// Serial reference of [`all_gather_f32`]: rank-order concatenation.
/// Bit-exact trivially — the ring moves bytes without arithmetic.
///
/// # Errors
///
/// Returns [`CommError::LengthMismatch`] if the contributions disagree on
/// length, [`CommError::ProtocolMismatch`] if `contribs` is empty.
pub fn all_gather_f32_reference(contribs: &[&[f32]]) -> Result<Vec<f32>, CommError> {
    let Some(first) = contribs.first() else {
        return Err(CommError::ProtocolMismatch);
    };
    let len = first.len();
    let mut out = Vec::with_capacity(len * contribs.len());
    for c in contribs {
        if c.len() != len {
            return Err(CommError::LengthMismatch {
                expected: len,
                actual: c.len(),
            });
        }
        out.extend_from_slice(c);
    }
    Ok(out)
}

/// Serial reference of [`all_gather_u32`]: rank-order concatenation.
///
/// # Errors
///
/// Returns [`CommError::LengthMismatch`] if the contributions disagree on
/// length, [`CommError::ProtocolMismatch`] if `contribs` is empty.
pub fn all_gather_u32_reference(contribs: &[&[u32]]) -> Result<Vec<u32>, CommError> {
    let Some(first) = contribs.first() else {
        return Err(CommError::ProtocolMismatch);
    };
    let len = first.len();
    let mut out = Vec::with_capacity(len * contribs.len());
    for c in contribs {
        if c.len() != len {
            return Err(CommError::LengthMismatch {
                expected: len,
                actual: c.len(),
            });
        }
        out.extend_from_slice(c);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn truncate_topk_orders_nan_above_infinity() {
        // Inf − Inf cancellation during a gTop-k merge can leave NaN sums;
        // the total order must rank them above everything so every rank
        // keeps the same coordinate set.
        let map: BTreeMap<u32, f32> = [
            (0, 1.0),
            (1, f32::NAN),
            (2, -f32::INFINITY),
            (3, 0.5),
            (4, -2.0),
        ]
        .into_iter()
        .collect();
        let (idx, val) = truncate_topk(map, 3);
        assert_eq!(idx, vec![1, 2, 4]);
        assert!(val[0].is_nan());
        assert_eq!(val[1], -f32::INFINITY);
        assert_eq!(val[2], -2.0);
    }

    #[test]
    fn truncate_topk_below_k_is_identity() {
        let map: BTreeMap<u32, f32> = [(5, 0.1), (9, -0.2)].into_iter().collect();
        let (idx, val) = truncate_topk(map, 4);
        assert_eq!(idx, vec![5, 9]);
        assert_eq!(val, vec![0.1, -0.2]);
    }
}
