//! Real in-process collectives over a ring of channels.
//!
//! Each worker is a thread holding a [`ThreadCommunicator`] with a channel to
//! its successor on the ring and a receiver from its predecessor — the same
//! topology NCCL's ring algorithms use. All-reduce is implemented as chunked
//! reduce-scatter followed by ring all-gather, so the per-rank transmitted
//! volume is the bandwidth-optimal `2 (p−1)/p · N` of Table II, which the
//! tests verify byte-for-byte through [`Communicator::bytes_sent`].
//!
//! The collective *algorithms* live in [`crate::ring`], generic over the
//! [`Transport`] point-to-point interface; this module provides the
//! in-process channel backend. `acp-net` provides the TCP backend over the
//! same algorithms.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use acp_telemetry::{keys, noop, RecorderHandle};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::nonblocking::{
    execute_collective, execute_via_blocking, CollectiveOp, CollectiveResult, CommWorker,
    PendingOp, WorkerTransport,
};
use crate::ring::{self, Transport, WireMsg};
use crate::schedule::{
    membership_param, OpKind, ScheduleCell, ScheduleSnapshot, ScheduleTracer, VerifyMode,
};
use crate::topology::{Membership, RankId, Topology};

/// Reduction operator applied element-wise by [`Communicator::all_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceOp {
    /// Element-wise sum (gradient aggregation).
    #[default]
    Sum,
    /// Element-wise sum divided by the world size (gradient averaging).
    Mean,
    /// Element-wise maximum.
    Max,
}

/// Error raised by collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer sent a payload whose length differs from ours — the ranks
    /// called the collective with inconsistent buffer sizes.
    LengthMismatch {
        /// Length this rank expected.
        expected: usize,
        /// Length actually received.
        actual: usize,
    },
    /// A peer disconnected (its thread panicked or dropped the communicator
    /// mid-collective).
    PeerDisconnected,
    /// A peer sent a payload of an unexpected type for the running
    /// collective (ranks invoked different collectives concurrently).
    ProtocolMismatch,
    /// The requested root rank does not exist in this group.
    InvalidRoot {
        /// Root requested by the caller.
        root: usize,
        /// Size of the group.
        world_size: usize,
    },
    /// A point-to-point operation addressed a rank outside the group.
    InvalidRank {
        /// The out-of-range rank.
        rank: usize,
        /// Size of the group.
        world_size: usize,
    },
    /// A worker thread of a [`ThreadGroup`] panicked before producing a
    /// result.
    WorkerPanicked,
    /// A member of the group departed mid-collective (its process exited
    /// or its worker thread died). The collective's result is lost; every
    /// survivor should call [`Communicator::reform`] to rebuild the group
    /// from the remaining ranks and continue.
    MembershipChanged {
        /// The membership epoch the failed collective was running at.
        epoch: u64,
        /// The physical ranks observed dead, sorted ascending.
        departed: Vec<usize>,
    },
    /// A collective exceeded its deadline without the peer being observed
    /// dead — a hung or straggling rank, surfaced instead of blocking.
    Timeout {
        /// The operation that timed out (e.g. `"recv"`, `"connect"`).
        op: &'static str,
        /// How long the operation waited before giving up, milliseconds.
        waited_ms: u64,
    },
    /// A transport-level I/O failure (TCP backend: reset, refused,
    /// unreachable, malformed frame).
    Io(String),
    /// An aggregation service applied backpressure: an in-flight byte
    /// budget (per job or global) is exhausted. Structured and retryable —
    /// the submission was *not* accepted, nothing is corrupted, and the
    /// caller may resubmit once the current step drains.
    Busy {
        /// Bytes in flight against the exhausted budget when the
        /// submission was refused.
        in_flight_bytes: u64,
        /// The exhausted budget, bytes.
        budget_bytes: u64,
    },
    /// An aggregation service refused the request outright (unknown job,
    /// unsupported collective, poisoned session). Not retryable.
    Rejected {
        /// Service-provided reason.
        reason: String,
    },
    /// The ranks' collective schedules diverged: a peer was executing a
    /// different collective (or the same collective with different
    /// history) when this rank received one of its messages. Raised by
    /// [`VerifyMode::CrossCheck`] at the first divergent operation — instead of a hang, a misleading
    /// `ProtocolMismatch`, or a silently wrong reduction.
    ScheduleMismatch {
        /// Schedule position where the divergence was detected (the
        /// earlier of the two ranks' sequence numbers).
        seq: u64,
        /// The collective this rank was executing (`None` if it was not
        /// inside a collective at all).
        local: Option<crate::schedule::SchedulePoint>,
        /// The collective the peer's message was tagged with.
        peer: crate::schedule::SchedulePoint,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "peer payload length {actual} does not match local length {expected}"
                )
            }
            CommError::PeerDisconnected => write!(f, "a peer disconnected mid-collective"),
            CommError::ProtocolMismatch => {
                write!(f, "peer payload type does not match the running collective")
            }
            CommError::InvalidRoot { root, world_size } => {
                write!(
                    f,
                    "root rank {root} out of range for world size {world_size}"
                )
            }
            CommError::InvalidRank { rank, world_size } => {
                write!(f, "rank {rank} out of range for world size {world_size}")
            }
            CommError::WorkerPanicked => write!(f, "a worker thread panicked"),
            CommError::MembershipChanged { epoch, departed } => {
                write!(
                    f,
                    "membership changed at epoch {epoch}: ranks {departed:?} departed (reform() to continue)"
                )
            }
            CommError::Timeout { op, waited_ms } => {
                write!(f, "{op} timed out after {waited_ms} ms")
            }
            CommError::Io(msg) => write!(f, "transport I/O error: {msg}"),
            CommError::Busy {
                in_flight_bytes,
                budget_bytes,
            } => {
                write!(
                    f,
                    "aggregation service busy: {in_flight_bytes} bytes in flight against a \
                     {budget_bytes}-byte budget (retry after the current step drains)"
                )
            }
            CommError::Rejected { reason } => {
                write!(f, "aggregation service rejected the request: {reason}")
            }
            CommError::ScheduleMismatch { seq, local, peer } => {
                write!(f, "collective schedules diverged at op {seq}: ")?;
                match local {
                    Some(local) => write!(f, "this rank ran {local}")?,
                    None => write!(f, "this rank ran no collective")?,
                }
                write!(f, " while a peer ran {peer}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Former name of [`CommError`].
#[deprecated(since = "0.2.0", note = "renamed to `CommError`")]
pub type CollectiveError = CommError; // allow_verify(reason = "the shim definition itself")

/// Collective communication interface shared by the trainer and optimizers.
///
/// Mirrors the subset of NCCL the paper's algorithms need: sum/mean/max
/// all-reduce for additive payloads (S-SGD, Power-SGD, ACP-SGD), `f32`/`u32`
/// all-gather for non-additive compressed payloads (Top-k values/indices,
/// Sign-SGD bit-packed words), broadcast and barrier.
pub trait Communicator: Send {
    /// This worker's rank in `[0, world_size)`.
    fn rank(&self) -> usize;

    /// Number of workers in the group.
    fn world_size(&self) -> usize;

    /// This worker's rank as a typed [`RankId`] — the preferred accessor.
    /// After a reform this is the *virtual* (ring) rank among the
    /// survivors; [`Communicator::membership`] maps it back to the
    /// physical rank.
    fn rank_id(&self) -> RankId {
        RankId(self.rank())
    }

    /// The rank arrangement collectives are scheduled over (see
    /// [`Topology`]). The default is one flat ring; topology-aware
    /// backends report their two-level arrangement and run the
    /// ring-of-rings schedule for all-reduce.
    fn topology(&self) -> Topology {
        Topology::flat(self.world_size())
    }

    /// The current elastic membership: the reform epoch plus the physical
    /// ranks still present. The default reports the static launch
    /// membership (epoch 0, every rank).
    fn membership(&self) -> Membership {
        Membership::initial(self.world_size())
    }

    /// Rebuilds the group from the surviving ranks after a peer departure
    /// (surfaced as [`CommError::MembershipChanged`]): re-derives
    /// ring/virtual ranks, bumps the membership epoch, records the reform
    /// in the collective schedule and cross-checks digest agreement among
    /// survivors. Collective — every survivor must call it at the same
    /// schedule position.
    ///
    /// # Errors
    ///
    /// Backends without elastic membership report [`CommError::Io`];
    /// elastic backends propagate handshake or transport failures.
    fn reform(&mut self) -> Result<Membership, CommError> {
        Err(CommError::Io(
            "this communicator does not support membership reform".to_string(),
        ))
    }

    /// Reduces `buf` element-wise across all ranks; every rank ends with the
    /// reduced result in `buf`.
    ///
    /// # Errors
    ///
    /// Returns an error if ranks disagree on buffer length or a peer
    /// disconnects.
    fn all_reduce(&mut self, buf: &mut [f32], op: ReduceOp) -> Result<(), CommError>;

    /// Gathers each rank's `send` buffer; returns the concatenation in rank
    /// order (`world_size * send.len()` elements).
    ///
    /// # Errors
    ///
    /// Returns an error if ranks disagree on buffer length or a peer
    /// disconnects.
    fn all_gather_f32(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError>;

    /// [`Communicator::all_gather_f32`] for `u32` payloads (bit-packed signs,
    /// sparse indices).
    ///
    /// # Errors
    ///
    /// Returns an error if ranks disagree on buffer length or a peer
    /// disconnects.
    fn all_gather_u32(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError>;

    /// Copies `buf` on `root` into `buf` on every other rank.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range root, mismatched lengths, or a
    /// disconnected peer.
    fn broadcast(&mut self, buf: &mut [f32], root: usize) -> Result<(), CommError>;

    /// Blocks until every rank has entered the barrier.
    ///
    /// # Errors
    ///
    /// Returns an error if a peer disconnects.
    fn barrier(&mut self) -> Result<(), CommError>;

    /// Total payload bytes this rank has transmitted so far (excluding
    /// barrier tokens) — used to verify the Table II volume formulas.
    fn bytes_sent(&self) -> u64;

    /// Attaches a telemetry recorder. An instrumented communicator reports
    /// wire bytes ([`keys::COMM_BYTES_SENT`] / [`keys::COMM_BYTES_RECV`]) and
    /// per-collective latencies to it; the default implementation ignores
    /// the handle, so transports without instrumentation keep compiling.
    fn set_recorder(&mut self, recorder: RecorderHandle) {
        let _ = recorder;
    }

    /// Sparse all-reduce with top-k truncation (the SparCML / gTop-k
    /// collective): sums the ranks' sparse `(indices, values)` vectors and
    /// returns (approximately) the `k` largest-magnitude coordinates of the
    /// sum, identical on every rank.
    ///
    /// The default implementation gathers all contributions and truncates;
    /// [`ThreadCommunicator`] overrides it with the `O(k log p)` recursive
    /// doubling merge of gTop-k (Shi et al., ICDCS 2019), whose per-round
    /// truncation makes it approximate (coordinates that are individually
    /// small everywhere can be dropped even if their sum is large).
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or inconsistent calls.
    fn global_topk(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<(Vec<u32>, Vec<f32>), CommError> {
        let gathered_idx = self.all_gather_u32(indices)?;
        let gathered_val = self.all_gather_f32(values)?;
        let mut map = std::collections::BTreeMap::new();
        for (&i, &v) in gathered_idx.iter().zip(&gathered_val) {
            *map.entry(i).or_insert(0.0f32) += v;
        }
        Ok(ring::truncate_topk(map, k))
    }

    /// Dispatches a collective for asynchronous completion; redeem the
    /// returned handle with [`PendingOp::wait`].
    ///
    /// The default implementation executes synchronously through the
    /// blocking methods and returns an already-resolved handle, so every
    /// backend supports the non-blocking API. Worker-backed communicators
    /// ([`ThreadCommunicator`], `acp-net`'s `TcpCommunicator`) override it
    /// to run the collective on a per-rank comm worker thread, overlapping
    /// it with the caller's compute. Operations complete in submission
    /// order on every backend, so interleaving dispatched and blocking
    /// calls preserves the SPMD contract.
    fn dispatch(&mut self, op: CollectiveOp) -> PendingOp {
        PendingOp::ready(execute_via_blocking(self, op))
    }

    /// Non-blocking all-reduce: consumes this rank's contribution and
    /// returns a handle whose [`PendingOp::wait`] yields the reduced
    /// buffer ([`CollectiveResult::F32`]).
    fn all_reduce_start(&mut self, buf: Vec<f32>, op: ReduceOp) -> PendingOp {
        self.dispatch(CollectiveOp::AllReduce { buf, op })
    }

    /// A point-in-time copy of this rank's collective-schedule trace (see
    /// [`crate::schedule`]), or `None` for backends without a tracer. The
    /// snapshot stays readable after errors and after the comm worker has
    /// taken the transport — it is the input to cross-rank divergence
    /// checks and `acp-verify check-trace` export.
    fn schedule(&self) -> Option<ScheduleSnapshot> {
        None
    }
}

/// How long a rank waits on a peer before concluding it died.
const RECV_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Poll interval of the receive loop; bounds how long a rank can block
/// after a peer panics before it observes the group's panic flag.
const PANIC_POLL: std::time::Duration = std::time::Duration::from_millis(20);

/// Trivial [`Communicator`] for a single-process group of size 1.
///
/// Collectives are identities; useful as a default so single-worker training
/// shares the distributed code path.
///
/// # Examples
///
/// ```
/// use acp_collectives::{Communicator, LocalCommunicator, ReduceOp};
///
/// let mut comm = LocalCommunicator::new();
/// let mut buf = vec![1.0, 2.0];
/// comm.all_reduce(&mut buf, ReduceOp::Sum)?;
/// assert_eq!(buf, vec![1.0, 2.0]);
/// # Ok::<(), acp_collectives::CommError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalCommunicator {
    _private: (),
}

impl LocalCommunicator {
    /// Creates a size-1 communicator.
    pub fn new() -> Self {
        LocalCommunicator { _private: () }
    }
}

impl Communicator for LocalCommunicator {
    fn rank(&self) -> usize {
        0
    }

    fn world_size(&self) -> usize {
        1
    }

    fn all_reduce(&mut self, _buf: &mut [f32], _op: ReduceOp) -> Result<(), CommError> {
        Ok(())
    }

    fn all_gather_f32(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError> {
        Ok(send.to_vec())
    }

    fn all_gather_u32(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError> {
        Ok(send.to_vec())
    }

    fn broadcast(&mut self, _buf: &mut [f32], root: usize) -> Result<(), CommError> {
        if root != 0 {
            return Err(CommError::InvalidRoot {
                root,
                world_size: 1,
            });
        }
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        Ok(())
    }

    fn bytes_sent(&self) -> u64 {
        0
    }
}

/// A worker-thread endpoint of a communicator group.
///
/// Created in bulk by [`ThreadGroup::new`] (one per rank) and moved into the
/// worker threads. Transport is a mailbox: every rank can send to every
/// other rank, which supports ring algorithms (bandwidth-optimal
/// all-reduce), recursive doubling (latency-optimal), and sparse
/// collectives. All collectives are SPMD: every rank of the group must
/// call the same sequence of operations.
pub struct ThreadCommunicator {
    /// Virtual (ring) rank — equals the physical rank until a reform.
    rank: usize,
    world_size: usize,
    /// Physical rank this endpoint was launched with (stable across
    /// reforms; it is what [`GroupState::departed`] records).
    physical: usize,
    /// Current membership epoch (mirrors the transport's; updated by
    /// [`ThreadCommunicator::reform`]).
    epoch: u64,
    /// The arrangement collectives are scheduled over; collapses to a
    /// flat ring over the survivors after a reform.
    topology: Topology,
    /// Physical ranks currently in the group, sorted (virtual → physical).
    members: Vec<usize>,
    /// The mailbox transport; `Some` until the comm worker takes it.
    inner: Option<ThreadTransport>,
    /// Per-rank comm worker, spawned lazily by the first dispatched
    /// operation; once running, *every* collective (blocking included)
    /// routes through it so submission order stays FIFO-total.
    worker: Option<CommWorker>,
    /// Departure/abort state shared by the whole group; receive loops
    /// poll it so peers observe a death within [`PANIC_POLL`] instead of
    /// blocking out the full [`RECV_TIMEOUT`].
    group: Arc<GroupState>,
    /// Shared with the transport so `bytes_sent` stays readable after the
    /// transport moves into the worker thread.
    bytes_sent: Arc<AtomicU64>,
    /// Schedule-trace state, shared with the transport's tracer so
    /// [`Communicator::schedule`] stays readable after the transport moves
    /// into the worker thread.
    schedule: Arc<ScheduleCell>,
    /// Schedule-verification mode this group was built with.
    verify: VerifyMode,
    /// Telemetry sink; [`acp_telemetry::NoopRecorder`] unless attached via
    /// [`Communicator::set_recorder`].
    recorder: RecorderHandle,
}

/// Departure and abort state shared by every member of a [`ThreadGroup`].
struct GroupState {
    /// Fast path for [`GroupState::departed`]: set once any rank departs,
    /// so healthy receive loops skip the lock entirely.
    any_departed: AtomicBool,
    /// Physical ranks that have departed (worker thread panicked or
    /// communicator dropped mid-unwind).
    departed: Mutex<BTreeSet<usize>>,
    /// Epoch fence: collectives running at an epoch *below* this value
    /// must abort. A rank departing at epoch `e` (or a schedule mismatch
    /// detected at epoch `e`) raises it to `e + 1`; a successful reform
    /// advances the survivors' epoch up to the fence, so post-reform
    /// collectives run unimpeded.
    abort_epoch: AtomicU64,
}

impl GroupState {
    fn new() -> Arc<GroupState> {
        Arc::new(GroupState {
            any_departed: AtomicBool::new(false),
            departed: Mutex::new(BTreeSet::new()),
            abort_epoch: AtomicU64::new(0),
        })
    }

    /// Records `physical` as departed at `epoch` and raises the fence.
    fn mark_departed(&self, physical: usize, epoch: u64) {
        self.departed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(physical);
        self.any_departed.store(true, Ordering::SeqCst);
        self.abort_epoch.fetch_max(epoch + 1, Ordering::SeqCst);
    }

    /// Raises the fence without a departure — a schedule mismatch leaves
    /// the group inconsistent but nobody dead, and peers then observe
    /// [`CommError::WorkerPanicked`] rather than `MembershipChanged`.
    fn abort(&self, epoch: u64) {
        self.abort_epoch.fetch_max(epoch + 1, Ordering::SeqCst);
    }

    /// The departed ranks among `members`, sorted ascending.
    fn departed_among(&self, members: &[usize]) -> Vec<usize> {
        if !self.any_departed.load(Ordering::SeqCst) {
            return Vec::new();
        }
        self.departed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .filter(|r| members.contains(r))
            .collect()
    }

    /// The error a collective running at `epoch` over `members` must
    /// abort with, if any: a departed member beats the fence (it names
    /// who to reform around), the fence alone means an aborted-but-intact
    /// group.
    fn abort_error(&self, epoch: u64, members: &[usize]) -> Option<CommError> {
        let departed = self.departed_among(members);
        if !departed.is_empty() {
            return Some(CommError::MembershipChanged { epoch, departed });
        }
        if self.abort_epoch.load(Ordering::SeqCst) > epoch {
            return Some(CommError::WorkerPanicked);
        }
        None
    }
}

/// The mailbox transport state of one rank. Lives inside the
/// [`ThreadCommunicator`] until a comm worker is spawned, then moves into
/// the worker thread (collectives keep running the same [`ring`]
/// algorithms on it either way).
struct ThreadTransport {
    /// Virtual (ring) rank — equals `physical` until a reform.
    rank: usize,
    world_size: usize,
    /// Physical rank (stable across reforms; the inbox index peers use).
    physical: usize,
    /// Membership epoch; every outgoing message is stamped with it so
    /// pre-reform stragglers can be told apart from post-reform traffic.
    epoch: u64,
    /// Physical ranks currently in the group, sorted (virtual → physical).
    members: Vec<usize>,
    /// The arrangement collectives are scheduled over.
    topology: Topology,
    /// Sender to each rank's inbox (index = destination *physical* rank).
    peers: Vec<Sender<(usize, u64, WireMsg)>>,
    /// This rank's inbox: `(physical source, epoch, message)`.
    inbox: Receiver<(usize, u64, WireMsg)>,
    /// Out-of-order messages buffered per *physical* source rank, with
    /// the epoch they were sent at.
    pending: Vec<VecDeque<(u64, WireMsg)>>,
    /// The group's shared departure/abort state.
    group: Arc<GroupState>,
    bytes_sent: Arc<AtomicU64>,
    recorder: RecorderHandle,
    /// Collective-schedule recorder (see [`crate::schedule`]); in
    /// cross-check mode it also tags outgoing messages and verifies
    /// incoming ones at delivery.
    tracer: ScheduleTracer,
}

impl fmt::Debug for ThreadCommunicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadCommunicator")
            .field("rank", &self.rank)
            .field("world_size", &self.world_size)
            .field("bytes_sent", &self.bytes_sent.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl Drop for ThreadCommunicator {
    fn drop(&mut self) {
        // A communicator dropped during unwind means its worker died
        // mid-collective; record the departure so peers blocked in
        // `recv_from` fail fast with `MembershipChanged` instead of
        // waiting out the 30-second peer timeout.
        if std::thread::panicking() {
            self.group.mark_departed(self.physical, self.epoch);
        }
    }
}

impl Drop for ThreadTransport {
    fn drop(&mut self) {
        // Same recording from the comm worker's side: if the worker thread
        // unwinds mid-collective, its transport drop tells the group.
        if std::thread::panicking() {
            self.group.mark_departed(self.physical, self.epoch);
        }
    }
}

impl Transport for ThreadTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn send_to(&mut self, dest: usize, msg: WireMsg) -> Result<(), CommError> {
        let Some(&phys) = self.members.get(dest) else {
            return Err(CommError::InvalidRank {
                rank: dest,
                world_size: self.world_size,
            });
        };
        let bytes = msg.payload_bytes();
        self.bytes_sent.fetch_add(bytes, Ordering::SeqCst);
        if self.recorder.enabled() {
            self.recorder.add(keys::COMM_BYTES_SENT, bytes);
        }
        // Cross-check mode: stamp the message with this rank's schedule
        // position (tag bytes are framing, not payload — accounted above).
        let msg = match self.tracer.tag() {
            Some(tag) => WireMsg::Tagged(tag, Box::new(msg)),
            None => msg,
        };
        self.peers[phys]
            .send((self.physical, self.epoch, msg))
            // A dropped inbox is a dead rank; name it if its departure is
            // already recorded.
            .map_err(|_| self.departure_error())
    }

    fn recv_from(&mut self, src: usize) -> Result<WireMsg, CommError> {
        let Some(&phys) = self.members.get(src) else {
            return Err(CommError::InvalidRank {
                rank: src,
                world_size: self.world_size,
            });
        };
        // Discard buffered stragglers from before the last reform, then
        // deliver a current-epoch message if one is queued. A *future*
        // epoch message stays buffered: it belongs to a membership this
        // rank has not reformed into yet (the abort check below is what
        // gets us there).
        while self.pending[phys]
            .front()
            .is_some_and(|&(epoch, _)| epoch < self.epoch)
        {
            self.pending[phys].pop_front();
        }
        if self.pending[phys]
            .front()
            .is_some_and(|&(epoch, _)| epoch == self.epoch)
        {
            if let Some((_, msg)) = self.pending[phys].pop_front() {
                return self.deliver(msg);
            }
        }
        let deadline = std::time::Instant::now() + RECV_TIMEOUT;
        loop {
            if let Some(err) = self.group.abort_error(self.epoch, &self.members) {
                return Err(err);
            }
            match self.inbox.recv_timeout(PANIC_POLL) {
                Ok((from, epoch, msg)) => {
                    if epoch < self.epoch {
                        // A straggler from before the last reform; its
                        // collective already failed everywhere.
                        continue;
                    }
                    // Count at inbox receipt so buffered out-of-order
                    // messages are still counted exactly once.
                    if self.recorder.enabled() {
                        self.recorder
                            .add(keys::COMM_BYTES_RECV, msg.payload_bytes());
                    }
                    if from == phys && epoch == self.epoch {
                        return self.deliver(msg);
                    }
                    self.pending[from].push_back((epoch, msg));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(CommError::PeerDisconnected);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::PeerDisconnected),
            }
        }
    }
}

impl ThreadTransport {
    /// Delivery-time schedule check (see [`crate::schedule::deliver_checked`]).
    /// A mismatch also raises the group's abort fence so peers blocked
    /// mid-collective unblock within [`PANIC_POLL`] instead of waiting out
    /// the peer timeout.
    fn deliver(&self, msg: WireMsg) -> Result<WireMsg, CommError> {
        let out = crate::schedule::deliver_checked(&self.tracer, msg);
        if matches!(out, Err(CommError::ScheduleMismatch { .. })) {
            self.group.abort(self.epoch);
        }
        out
    }

    /// The structured error for a failed point-to-point operation: a
    /// recorded departure beats the generic disconnect.
    fn departure_error(&self) -> CommError {
        self.group
            .abort_error(self.epoch, &self.members)
            .unwrap_or(CommError::PeerDisconnected)
    }
}

impl WorkerTransport for ThreadTransport {
    fn recorder(&self) -> &RecorderHandle {
        &self.recorder
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn membership(&self) -> Membership {
        Membership::from_parts(self.epoch, self.members.clone())
    }

    fn reform(&mut self) -> Result<Membership, CommError> {
        let departed = self.group.departed_among(&self.members);
        if departed.is_empty() {
            // Nobody left; reform is idempotent.
            return Ok(self.membership());
        }
        if departed.contains(&self.physical) {
            return Err(CommError::Io(format!(
                "rank {} is itself marked departed and cannot reform",
                self.physical
            )));
        }
        self.members.retain(|r| !departed.contains(r));
        self.epoch += 1;
        self.world_size = self.members.len();
        self.rank = match self.members.binary_search(&self.physical) {
            Ok(position) => position,
            Err(_) => {
                return Err(CommError::Io(format!(
                    "rank {} lost its membership slot during reform",
                    self.physical
                )))
            }
        };
        // The old arrangement no longer matches the survivors; collapse
        // to one flat ring (a later reform could re-derive groups).
        self.topology = Topology::flat(self.world_size);
        // Drop buffered traffic from the failed epoch.
        for queue in &mut self.pending {
            while queue.front().is_some_and(|&(epoch, _)| epoch < self.epoch) {
                queue.pop_front();
            }
        }
        // Record the reform as a schedule op (replayable by `acp-verify
        // check-trace`), re-deriving the rolling digest from the new
        // membership, then handshake: all-gather the digest halves so
        // survivors that disagree on who survived fail loudly *here*, not
        // on some later collective. In cross-check mode the handshake
        // messages are tagged with the reform op, so a divergent reform
        // also surfaces as a `ScheduleMismatch` naming it.
        self.tracer.begin_op(
            OpKind::Reform,
            self.members.len() as u64,
            membership_param(self.epoch, &self.members),
        );
        let digest = self.tracer.digest();
        let halves = [(digest >> 32) as u32, digest as u32];
        let gathered = ring::all_gather_u32(self, &halves)?;
        for (virt, pair) in gathered.chunks(2).enumerate() {
            if pair != halves {
                return Err(CommError::Io(format!(
                    "post-reform schedule digest mismatch: rank {} disagrees on the surviving membership",
                    self.members.get(virt).copied().unwrap_or(virt)
                )));
            }
        }
        Ok(self.membership())
    }

    fn tracer(&mut self) -> Option<&mut ScheduleTracer> {
        Some(&mut self.tracer)
    }
}

impl ThreadCommunicator {
    /// This worker's rank in `[0, world_size)`.
    #[deprecated(
        since = "0.2.0",
        note = "use `rank_id()` (typed, reform-aware) or the `Communicator` trait's `rank()`"
    )]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the group.
    #[deprecated(
        since = "0.2.0",
        note = "use `topology().world_size()` or `membership().world_size()`"
    )]
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// This worker's virtual (ring) rank, as a typed [`RankId`].
    ///
    /// Inherent so callers need neither [`Communicator`] nor
    /// [`Transport`] in scope (and so having both in scope stays
    /// unambiguous).
    pub fn rank_id(&self) -> RankId {
        RankId(self.rank)
    }

    /// The rank arrangement collectives are scheduled over.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The current membership (epoch + surviving physical ranks).
    pub fn membership(&self) -> Membership {
        Membership::from_parts(self.epoch, self.members.clone())
    }

    /// Rebuilds the group from the surviving ranks after a peer departure
    /// (see [`Communicator::reform`]). Routes through the comm worker when
    /// one is running, so the reform stays FIFO with dispatched
    /// collectives.
    ///
    /// # Errors
    ///
    /// Propagates the transport's reform error; a dead worker surfaces as
    /// [`CommError::WorkerPanicked`].
    pub fn reform(&mut self) -> Result<Membership, CommError> {
        let membership = match (&self.worker, self.inner.as_mut()) {
            (Some(worker), _) => worker.reform(),
            (None, Some(transport)) => transport.reform(),
            (None, None) => Err(CommError::WorkerPanicked),
        }?;
        self.epoch = membership.epoch();
        self.world_size = membership.world_size();
        self.members = membership.ranks().to_vec();
        self.topology = Topology::flat(membership.world_size());
        if let Some(virt) = membership.virtual_rank_of(self.physical) {
            self.rank = virt.as_usize();
        }
        Ok(membership)
    }

    /// Runs one collective to completion: inline on the transport before
    /// a worker exists, or as submit-and-wait once one is running (so a
    /// blocking call can never overtake dispatched operations).
    fn run_op(&mut self, op: CollectiveOp) -> Result<CollectiveResult, CommError> {
        match (&self.worker, self.inner.as_mut()) {
            (Some(worker), _) => worker.submit(op).wait(),
            (None, Some(transport)) => execute_collective(transport, op),
            // Unreachable: the transport only leaves when a worker spawns.
            (None, None) => Err(CommError::WorkerPanicked),
        }
    }

    /// Spawns the comm worker on first use, moving the transport into it.
    fn ensure_worker(&mut self) -> &CommWorker {
        if self.worker.is_none() {
            let transport = self
                .inner
                .take()
                // allow_verify(reason = "struct invariant: inner is Some until the worker takes it, and this branch only runs when worker is None")
                .expect("transport is present until the worker takes it");
            self.worker = Some(CommWorker::spawn(transport));
        }
        // allow_verify(reason = "assigned Some on the line above when absent")
        self.worker.as_ref().expect("worker just spawned")
    }

    /// Simultaneously sends `send` to `peer` and receives their buffer of
    /// the same length — the pairwise exchange of butterfly algorithms.
    ///
    /// Both sides must call this with each other's rank.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or mismatched lengths.
    pub fn send_recv_f32(&mut self, peer: usize, send: &[f32]) -> Result<Vec<f32>, CommError> {
        self.run_op(CollectiveOp::SendRecvF32 {
            peer,
            send: send.to_vec(),
        })?
        .into_f32()
    }

    /// Latency-optimal all-reduce by recursive doubling: `⌈log₂ p⌉` rounds
    /// of full-buffer pairwise exchanges (`T = log₂(p)(α + Nβ)`), versus
    /// the ring's `2(p−1)` messages of `N/p`. Preferable for small tensors
    /// — the start-up-cost regime tensor fusion addresses.
    ///
    /// Non-power-of-two groups fold the extra ranks onto partners before
    /// and after the butterfly.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or inconsistent buffer lengths.
    pub fn all_reduce_recursive_doubling(
        &mut self,
        buf: &mut [f32],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let out = self
            .run_op(CollectiveOp::AllReduceRd {
                buf: buf.to_vec(),
                op,
            })?
            .into_f32()?;
        buf.copy_from_slice(&out);
        Ok(())
    }
}

impl Communicator for ThreadCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn membership(&self) -> Membership {
        ThreadCommunicator::membership(self)
    }

    fn reform(&mut self) -> Result<Membership, CommError> {
        ThreadCommunicator::reform(self)
    }

    fn all_reduce(&mut self, buf: &mut [f32], op: ReduceOp) -> Result<(), CommError> {
        let out = self
            .run_op(CollectiveOp::AllReduce {
                buf: buf.to_vec(),
                op,
            })?
            .into_f32()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    fn all_gather_f32(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError> {
        self.run_op(CollectiveOp::AllGatherF32 {
            send: send.to_vec(),
        })?
        .into_f32()
    }

    fn all_gather_u32(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError> {
        self.run_op(CollectiveOp::AllGatherU32 {
            send: send.to_vec(),
        })?
        .into_u32()
    }

    fn broadcast(&mut self, buf: &mut [f32], root: usize) -> Result<(), CommError> {
        let out = self
            .run_op(CollectiveOp::Broadcast {
                buf: buf.to_vec(),
                root,
            })?
            .into_f32()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        // Untimed: barriers move no payload, and timing them would skew the
        // communication series with pure synchronization waits.
        self.run_op(CollectiveOp::Barrier).map(|_| ())
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::SeqCst)
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = Arc::clone(&recorder);
        match (&self.worker, self.inner.as_mut()) {
            (Some(worker), _) => worker.set_recorder(recorder),
            (None, Some(transport)) => transport.recorder = recorder,
            (None, None) => {}
        }
    }

    fn global_topk(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<(Vec<u32>, Vec<f32>), CommError> {
        self.run_op(CollectiveOp::GlobalTopk {
            indices: indices.to_vec(),
            values: values.to_vec(),
            k,
        })?
        .into_sparse()
    }

    fn dispatch(&mut self, op: CollectiveOp) -> PendingOp {
        self.ensure_worker().submit(op)
    }

    fn schedule(&self) -> Option<ScheduleSnapshot> {
        Some(
            self.schedule
                .snapshot(self.verify == VerifyMode::CrossCheck),
        )
    }
}

/// Factory for ring communicator groups backed by worker threads.
#[derive(Debug)]
pub struct ThreadGroup {
    _private: (),
}

impl ThreadGroup {
    /// Creates `world_size` connected [`ThreadCommunicator`]s, one per rank,
    /// in rank order. Move each into its worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `world_size == 0`.
    #[allow(clippy::new_ret_no_self)] // constructs the whole group, not a ThreadGroup value
    pub fn new(world_size: usize) -> Vec<ThreadCommunicator> {
        ThreadGroup::new_with(world_size, VerifyMode::default())
    }

    /// [`ThreadGroup::new`] with an explicit schedule-verification mode
    /// (see [`crate::schedule`]). [`VerifyMode::CrossCheck`] makes a
    /// divergent collective schedule fail fast with
    /// [`CommError::ScheduleMismatch`] at the first divergent operation.
    ///
    /// # Panics
    ///
    /// Panics if `world_size == 0`.
    pub fn new_with(world_size: usize, verify: VerifyMode) -> Vec<ThreadCommunicator> {
        ThreadGroup::new_with_topology(Topology::flat(world_size), verify)
    }

    /// [`ThreadGroup::new_with`] over an explicit [`Topology`]. A
    /// two-level arrangement makes all-reduce run the hierarchical
    /// ring-of-rings schedule (see [`crate::hierarchy`]) and is recorded
    /// as schedule op 0, so a flat and a hierarchical schedule over the
    /// same collectives can never digest-collide. (Flat groups record
    /// nothing — the flat ring is the implicit default, keeping existing
    /// flat traces stable.)
    ///
    /// # Panics
    ///
    /// Panics if `topology.world_size() == 0`.
    pub fn new_with_topology(topology: Topology, verify: VerifyMode) -> Vec<ThreadCommunicator> {
        let world_size = topology.world_size();
        assert!(world_size > 0, "world_size must be positive");
        let mut inboxes = Vec::with_capacity(world_size);
        let mut senders = Vec::with_capacity(world_size);
        for _ in 0..world_size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            inboxes.push(rx);
        }
        let group = GroupState::new();
        inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                let bytes_sent = Arc::new(AtomicU64::new(0));
                let schedule = Arc::new(ScheduleCell::default());
                let mut tracer = ScheduleTracer::new(verify, Arc::clone(&schedule));
                if !topology.is_flat() {
                    tracer.begin_op(OpKind::Topology, world_size as u64, topology.fingerprint());
                }
                ThreadCommunicator {
                    rank,
                    world_size,
                    physical: rank,
                    epoch: 0,
                    topology,
                    members: (0..world_size).collect(),
                    inner: Some(ThreadTransport {
                        rank,
                        world_size,
                        physical: rank,
                        epoch: 0,
                        members: (0..world_size).collect(),
                        topology,
                        peers: senders.clone(),
                        inbox,
                        pending: (0..world_size).map(|_| VecDeque::new()).collect(),
                        group: Arc::clone(&group),
                        bytes_sent: Arc::clone(&bytes_sent),
                        recorder: noop(),
                        tracer,
                    }),
                    worker: None,
                    group: Arc::clone(&group),
                    bytes_sent,
                    schedule,
                    verify,
                    recorder: noop(),
                }
            })
            .collect()
    }

    /// Spawns `world_size` scoped worker threads, hands each its
    /// communicator, and returns their results in rank order.
    ///
    /// # Panics
    ///
    /// Panics if any worker panics, or if `world_size == 0`. Use
    /// [`ThreadGroup::try_run`] to observe worker failures as errors.
    pub fn run<T, F>(world_size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadCommunicator) -> T + Sync,
    {
        // allow_verify(reason = "test harness entry point; worker panics are the caller's test failures, and try_run is the non-panicking form")
        ThreadGroup::try_run(world_size, f).expect("worker thread panicked")
    }

    /// [`ThreadGroup::try_run`] with an explicit schedule-verification
    /// mode (see [`ThreadGroup::new_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`CommError::WorkerPanicked`] if any worker thread panicked,
    /// and [`CommError::InvalidRank`] if `world_size == 0`.
    pub fn try_run_with<T, F>(
        world_size: usize,
        verify: VerifyMode,
        f: F,
    ) -> Result<Vec<T>, CommError>
    where
        T: Send,
        F: Fn(ThreadCommunicator) -> T + Sync,
    {
        ThreadGroup::try_run_with_topology(Topology::flat(world_size), verify, f)
    }

    /// [`ThreadGroup::try_run_with`] over an explicit [`Topology`] (see
    /// [`ThreadGroup::new_with_topology`]).
    ///
    /// # Errors
    ///
    /// Returns [`CommError::WorkerPanicked`] if any worker thread panicked,
    /// and [`CommError::InvalidRank`] if the topology is empty.
    pub fn try_run_with_topology<T, F>(
        topology: Topology,
        verify: VerifyMode,
        f: F,
    ) -> Result<Vec<T>, CommError>
    where
        T: Send,
        F: Fn(ThreadCommunicator) -> T + Sync,
    {
        if topology.world_size() == 0 {
            return Err(CommError::InvalidRank {
                rank: 0,
                world_size: 0,
            });
        }
        let comms = ThreadGroup::new_with_topology(topology, verify);
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(|| f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| CommError::WorkerPanicked))
                .collect()
        })
    }

    /// [`ThreadGroup::run`] without the panic: a panicking worker surfaces
    /// as [`CommError::WorkerPanicked`] instead of propagating.
    ///
    /// The remaining workers still run to completion: a rank that dies
    /// mid-collective shows up on its peers' collective paths as
    /// [`CommError::WorkerPanicked`] (observed via the group's panic flag
    /// within a bounded poll interval) or [`CommError::PeerDisconnected`]
    /// (a send to the dead rank's dropped inbox) — never a hang.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::WorkerPanicked`] if any worker thread panicked,
    /// and [`CommError::InvalidRank`] if `world_size == 0`.
    pub fn try_run<T, F>(world_size: usize, f: F) -> Result<Vec<T>, CommError>
    where
        T: Send,
        F: Fn(ThreadCommunicator) -> T + Sync,
    {
        ThreadGroup::try_run_with(world_size, VerifyMode::default(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Naive reference reduction for validating the ring implementation.
    fn reference_reduce(inputs: &[Vec<f32>], op: ReduceOp) -> Vec<f32> {
        let mut out = inputs[0].clone();
        for input in &inputs[1..] {
            for (o, x) in out.iter_mut().zip(input) {
                match op {
                    ReduceOp::Sum | ReduceOp::Mean => *o += x,
                    ReduceOp::Max => *o = o.max(*x),
                }
            }
        }
        if op == ReduceOp::Mean {
            let inv = 1.0 / inputs.len() as f32;
            for o in &mut out {
                *o *= inv;
            }
        }
        out
    }

    fn random_inputs(p: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..p)
            .map(|_| (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect()
    }

    #[test]
    fn all_reduce_sum_matches_reference() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            for len in [1usize, 2, 7, 64, 257] {
                let inputs = random_inputs(p, len, (p * 1000 + len) as u64);
                let expected = reference_reduce(&inputs, ReduceOp::Sum);
                let results = ThreadGroup::run(p, |mut comm| {
                    let mut buf = inputs[comm.rank_id().as_usize()].clone();
                    comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                    buf
                });
                for buf in results {
                    for (a, b) in buf.iter().zip(&expected) {
                        assert!((a - b).abs() < 1e-3, "p={p} len={len}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn all_reduce_mean_and_max() {
        let p = 4;
        let inputs = random_inputs(p, 33, 99);
        for op in [ReduceOp::Mean, ReduceOp::Max] {
            let expected = reference_reduce(&inputs, op);
            let results = ThreadGroup::run(p, |mut comm| {
                let mut buf = inputs[comm.rank_id().as_usize()].clone();
                comm.all_reduce(&mut buf, op).unwrap();
                buf
            });
            for buf in results {
                for (a, b) in buf.iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-4, "{op:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn all_reduce_len_smaller_than_world() {
        // Chunking must handle empty chunks when len < p.
        let p = 8;
        let inputs = random_inputs(p, 3, 7);
        let expected = reference_reduce(&inputs, ReduceOp::Sum);
        let results = ThreadGroup::run(p, |mut comm| {
            let mut buf = inputs[comm.rank_id().as_usize()].clone();
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        for buf in results {
            for (a, b) in buf.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn all_gather_f32_rank_order() {
        let p = 5;
        let results = ThreadGroup::run(p, |mut comm| {
            let send = vec![comm.rank_id().as_usize() as f32; 3];
            comm.all_gather_f32(&send).unwrap()
        });
        for out in results {
            assert_eq!(out.len(), p * 3);
            for r in 0..p {
                assert!(out[r * 3..(r + 1) * 3].iter().all(|&v| v == r as f32));
            }
        }
    }

    #[test]
    fn all_gather_u32_rank_order() {
        let p = 3;
        let results = ThreadGroup::run(p, |mut comm| {
            let send = vec![
                comm.rank_id().as_usize() as u32 * 10,
                comm.rank_id().as_usize() as u32 * 10 + 1,
            ];
            comm.all_gather_u32(&send).unwrap()
        });
        for out in results {
            assert_eq!(out, vec![0, 1, 10, 11, 20, 21]);
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        let p = 4;
        for root in 0..p {
            let results = ThreadGroup::run(p, |mut comm| {
                let mut buf = if comm.rank_id().as_usize() == root {
                    vec![42.0, 43.0]
                } else {
                    vec![0.0, 0.0]
                };
                comm.broadcast(&mut buf, root).unwrap();
                buf
            });
            for buf in results {
                assert_eq!(buf, vec![42.0, 43.0], "root={root}");
            }
        }
    }

    #[test]
    fn broadcast_invalid_root_errors() {
        let results = ThreadGroup::run(2, |mut comm| {
            let mut buf = vec![0.0];
            comm.broadcast(&mut buf, 5)
        });
        for r in results {
            assert_eq!(
                r,
                Err(CommError::InvalidRoot {
                    root: 5,
                    world_size: 2
                })
            );
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let entered = AtomicUsize::new(0);
        let p = 6;
        ThreadGroup::run(p, |mut comm| {
            entered.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must observe all entries.
            assert_eq!(entered.load(Ordering::SeqCst), p);
        });
    }

    #[test]
    fn ring_all_reduce_volume_is_bandwidth_optimal() {
        // Table II: per-rank transmitted volume of ring all-reduce is
        // 2 (p-1)/p * N elements.
        let p = 4;
        let n = 1024usize;
        let results = ThreadGroup::run(p, |mut comm| {
            let mut buf = vec![1.0f32; n];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            comm.bytes_sent()
        });
        let expected = (2 * (p - 1) * n / p * 4) as u64;
        for bytes in results {
            assert_eq!(bytes, expected);
        }
    }

    #[test]
    fn all_gather_volume_is_linear_in_world_size() {
        // Table II: all-gather transmits (p-1) * k elements per rank.
        let p = 4;
        let k = 100usize;
        let results = ThreadGroup::run(p, |mut comm| {
            let send = vec![0.5f32; k];
            comm.all_gather_f32(&send).unwrap();
            comm.bytes_sent()
        });
        let expected = ((p - 1) * k * 4) as u64;
        for bytes in results {
            assert_eq!(bytes, expected);
        }
    }

    #[test]
    fn length_mismatch_detected() {
        let results = ThreadGroup::run(2, |mut comm| {
            let mut buf = vec![
                0.0f32;
                if comm.rank_id().as_usize() == 0 {
                    10
                } else {
                    12
                }
            ];
            comm.all_reduce(&mut buf, ReduceOp::Sum)
        });
        assert!(results
            .iter()
            .any(|r| matches!(r, Err(CommError::LengthMismatch { .. }))));
    }

    #[test]
    fn local_communicator_is_identity() {
        let mut comm = LocalCommunicator::new();
        assert_eq!(comm.world_size(), 1);
        let mut buf = vec![3.0, 4.0];
        comm.all_reduce(&mut buf, ReduceOp::Mean).unwrap();
        assert_eq!(buf, vec![3.0, 4.0]);
        assert_eq!(comm.all_gather_f32(&buf).unwrap(), buf);
        assert_eq!(comm.all_gather_u32(&[1, 2]).unwrap(), vec![1, 2]);
        comm.barrier().unwrap();
        assert_eq!(comm.bytes_sent(), 0);
    }

    #[test]
    fn send_recv_exchanges_pairwise() {
        let results = ThreadGroup::run(4, |mut comm| {
            let peer = comm.rank_id().as_usize() ^ 1;
            let send = vec![comm.rank_id().as_usize() as f32; 3];
            comm.send_recv_f32(peer, &send).unwrap()
        });
        assert_eq!(results[0], vec![1.0; 3]);
        assert_eq!(results[1], vec![0.0; 3]);
        assert_eq!(results[2], vec![3.0; 3]);
        assert_eq!(results[3], vec![2.0; 3]);
    }

    #[test]
    fn recursive_doubling_matches_ring_all_reduce() {
        for p in [1usize, 2, 3, 4, 5, 7, 8] {
            for len in [1usize, 17, 64] {
                let inputs = random_inputs(p, len, (p * 31 + len) as u64);
                let expected = reference_reduce(&inputs, ReduceOp::Sum);
                let results = ThreadGroup::run(p, |mut comm| {
                    let mut buf = inputs[comm.rank_id().as_usize()].clone();
                    comm.all_reduce_recursive_doubling(&mut buf, ReduceOp::Sum)
                        .unwrap();
                    buf
                });
                for buf in results {
                    for (a, b) in buf.iter().zip(&expected) {
                        assert!((a - b).abs() < 1e-3, "p={p} len={len}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn recursive_doubling_mean() {
        let p = 6;
        let results = ThreadGroup::run(p, |mut comm| {
            let mut buf = vec![comm.rank_id().as_usize() as f32; 4];
            comm.all_reduce_recursive_doubling(&mut buf, ReduceOp::Mean)
                .unwrap();
            buf
        });
        for buf in results {
            assert!(buf.iter().all(|&v| (v - 2.5).abs() < 1e-5));
        }
    }

    #[test]
    fn global_topk_sums_overlapping_coordinates() {
        // Ranks contribute overlapping sparse vectors; the exact global
        // top-2 of the sum is coordinate 5 (sum 9) and coordinate 1 (6).
        let contributions = [
            (vec![1u32, 5], vec![2.0f32, 4.0]),
            (vec![1u32, 7], vec![2.0f32, 1.0]),
            (vec![1u32, 5], vec![2.0f32, 5.0]),
        ];
        let results = ThreadGroup::run(3, |mut comm| {
            let (idx, val) = &contributions[comm.rank_id().as_usize()];
            comm.global_topk(idx, val, 2).unwrap()
        });
        for (idx, val) in results {
            assert_eq!(idx, vec![1, 5]);
            assert_eq!(val, vec![6.0, 9.0]);
        }
    }

    #[test]
    fn global_topk_all_ranks_agree_on_random_input() {
        use rand::Rng;
        use rand::SeedableRng;
        for p in [2usize, 3, 4, 5, 8] {
            let contributions: Vec<(Vec<u32>, Vec<f32>)> = (0..p)
                .map(|r| {
                    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(r as u64 + 99);
                    let mut idx: Vec<u32> = (0..8).map(|_| rng.gen_range(0..40u32)).collect();
                    idx.sort_unstable();
                    idx.dedup();
                    let val = idx.iter().map(|_| rng.gen_range(-3.0f32..3.0)).collect();
                    (idx, val)
                })
                .collect();
            let results = ThreadGroup::run(p, |mut comm| {
                let (idx, val) = &contributions[comm.rank_id().as_usize()];
                comm.global_topk(idx, val, 4).unwrap()
            });
            for r in &results[1..] {
                assert_eq!(r, &results[0], "p={p}: ranks disagree");
            }
            assert!(results[0].0.len() <= 4);
        }
    }

    #[test]
    fn local_communicator_global_topk_truncates() {
        let mut comm = LocalCommunicator::new();
        let (idx, val) = comm.global_topk(&[3, 9, 1], &[1.0, -5.0, 0.5], 2).unwrap();
        assert_eq!(idx, vec![3, 9]);
        assert_eq!(val, vec![1.0, -5.0]);
    }

    #[test]
    fn sequential_collectives_do_not_interfere() {
        // Run several different collectives back to back on the same group.
        let p = 3;
        ThreadGroup::run(p, |mut comm| {
            let mut a = vec![comm.rank_id().as_usize() as f32; 8];
            comm.all_reduce(&mut a, ReduceOp::Sum).unwrap();
            assert!(a.iter().all(|&v| v == 3.0));
            let g = comm
                .all_gather_u32(&[comm.rank_id().as_usize() as u32])
                .unwrap();
            assert_eq!(g, vec![0, 1, 2]);
            comm.barrier().unwrap();
            let mut b = vec![
                if comm.rank_id().as_usize() == 1 {
                    7.0
                } else {
                    0.0
                };
                4
            ];
            comm.broadcast(&mut b, 1).unwrap();
            assert!(b.iter().all(|&v| v == 7.0));
        });
    }

    #[test]
    fn worker_panic_mid_collective_surfaces_within_bounded_wait() {
        // Regression test for the hang-hardening: rank 1 dies mid
        // all-reduce; the survivors must fail fast with a structured error
        // (WorkerPanicked via the group's panic flag, or PeerDisconnected
        // for sends addressed at the dead inbox) — far sooner than the
        // 30-second peer timeout, let alone "forever".
        let start = std::time::Instant::now();
        let result = ThreadGroup::try_run(3, |mut comm| {
            if comm.rank_id().as_usize() == 1 {
                // Die after peers have committed to the collective.
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("injected worker death");
            }
            let mut buf = vec![comm.rank_id().as_usize() as f32; 64];
            comm.all_reduce(&mut buf, ReduceOp::Sum)
        });
        assert_eq!(result, Err(CommError::WorkerPanicked));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "survivors blocked {:?} — panic flag not observed",
            start.elapsed()
        );
    }

    #[test]
    fn surviving_ranks_observe_membership_changed_error() {
        // Same scenario, but capture the survivors' error values: every
        // survivor must see MembershipChanged naming the departed rank —
        // the structured signal that reform() would succeed — rather than
        // an opaque panic/disconnect error or a hang.
        let errors = std::sync::Mutex::new(Vec::new());
        let _ = ThreadGroup::try_run(3, |mut comm| {
            if comm.rank_id().as_usize() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("injected worker death");
            }
            let mut buf = vec![comm.rank_id().as_usize() as f32; 64];
            let r = comm.all_reduce(&mut buf, ReduceOp::Sum);
            errors.lock().unwrap().push((comm.rank_id().as_usize(), r));
        });
        let errors = errors.into_inner().unwrap();
        assert_eq!(errors.len(), 2, "both survivors must finish");
        for (rank, r) in &errors {
            match r {
                Err(CommError::MembershipChanged { epoch, departed }) => {
                    assert_eq!(*epoch, 0, "death happened in the initial epoch");
                    assert_eq!(departed, &vec![1], "rank {rank} misnamed the departed");
                }
                other => panic!("rank {rank} got {other:?}, expected MembershipChanged"),
            }
        }
    }

    #[test]
    fn dispatched_all_reduce_is_bit_exact_with_blocking() {
        let p = 4;
        let inputs = random_inputs(p, 97, 123);
        let blocking = ThreadGroup::run(p, |mut comm| {
            let mut buf = inputs[comm.rank_id().as_usize()].clone();
            comm.all_reduce(&mut buf, ReduceOp::Mean).unwrap();
            buf
        });
        let dispatched = ThreadGroup::run(p, |mut comm| {
            let pending =
                comm.all_reduce_start(inputs[comm.rank_id().as_usize()].clone(), ReduceOp::Mean);
            pending.wait().unwrap().into_f32().unwrap()
        });
        for (a, b) in blocking.iter().zip(&dispatched) {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn multiple_in_flight_ops_complete_in_fifo_order() {
        let p = 3;
        let results = ThreadGroup::run(p, |mut comm| {
            let r = comm.rank_id().as_usize();
            let ops = vec![
                comm.dispatch(CollectiveOp::AllReduce {
                    buf: vec![r as f32; 5],
                    op: ReduceOp::Sum,
                }),
                comm.dispatch(CollectiveOp::AllGatherU32 {
                    send: vec![r as u32],
                }),
                comm.dispatch(CollectiveOp::AllReduce {
                    buf: vec![1.0; 2],
                    op: ReduceOp::Sum,
                }),
            ];
            crate::nonblocking::wait_all(ops).unwrap()
        });
        for out in results {
            assert_eq!(out[0], CollectiveResult::F32(vec![3.0; 5]));
            assert_eq!(out[1], CollectiveResult::U32(vec![0, 1, 2]));
            assert_eq!(out[2], CollectiveResult::F32(vec![3.0; 2]));
        }
    }

    #[test]
    fn blocking_calls_after_dispatch_route_through_the_worker() {
        // Once a worker exists, a blocking collective must queue behind
        // the dispatched ones rather than race them on the transport.
        let p = 4;
        let results = ThreadGroup::run(p, |mut comm| {
            let pending =
                comm.all_reduce_start(vec![comm.rank_id().as_usize() as f32; 8], ReduceOp::Max);
            let mut buf = vec![1.0f32; 4];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            let first = pending.wait().unwrap().into_f32().unwrap();
            (first, buf)
        });
        for (first, second) in results {
            assert_eq!(first, vec![3.0; 8]);
            assert_eq!(second, vec![4.0; 4]);
        }
    }

    #[test]
    fn wait_surfaces_structured_error_when_peer_dies() {
        // A peer that panics with ops in flight must surface as a
        // structured error at `wait`, never a hang.
        let start = std::time::Instant::now();
        let result = ThreadGroup::try_run(3, |mut comm| {
            if comm.rank_id().as_usize() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("injected worker death");
            }
            let pending =
                comm.all_reduce_start(vec![comm.rank_id().as_usize() as f32; 64], ReduceOp::Sum);
            pending.wait().map(|_| ())
        });
        assert_eq!(result, Err(CommError::WorkerPanicked));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "waiters blocked {:?} — panic flag not observed",
            start.elapsed()
        );
    }

    #[test]
    fn local_communicator_dispatch_resolves_immediately() {
        let mut comm = LocalCommunicator::new();
        let pending = comm.all_reduce_start(vec![2.0, 3.0], ReduceOp::Mean);
        assert_eq!(pending.wait().unwrap().into_f32().unwrap(), vec![2.0, 3.0]);
        let pending = comm.dispatch(CollectiveOp::Barrier);
        assert_eq!(pending.wait().unwrap(), CollectiveResult::Unit);
    }

    #[test]
    fn cross_check_mode_is_transparent_when_schedules_align() {
        let p = 3;
        let results = ThreadGroup::try_run_with(p, VerifyMode::CrossCheck, |mut comm| {
            let mut buf = vec![comm.rank_id().as_usize() as f32; 16];
            comm.all_reduce(&mut buf, ReduceOp::Sum)?;
            let gathered = comm.all_gather_u32(&[comm.rank_id().as_usize() as u32])?;
            assert_eq!(gathered, vec![0, 1, 2]);
            comm.barrier()?;
            let snap = comm.schedule().expect("thread backend records schedules");
            Ok::<_, CommError>((buf, snap))
        })
        .unwrap();
        let (buf0, snap0) = results[0].clone().unwrap();
        assert!(buf0.iter().all(|&v| v == 3.0));
        assert_eq!(snap0.seq, 3);
        assert_eq!(snap0.entries.len(), 3, "cross-check keeps the full log");
        for r in &results[1..] {
            let (_, snap) = r.clone().unwrap();
            assert_eq!(snap.digest, snap0.digest, "aligned ranks share a digest");
            assert_eq!(snap.entries, snap0.entries);
        }
    }

    #[test]
    fn verify_mode_does_not_change_wire_volume_accounting() {
        // Tag bytes are framing: the Table II reconciliation must hold in
        // cross-check mode bit-for-bit.
        let p = 4;
        let n = 1024usize;
        let results = ThreadGroup::try_run_with(p, VerifyMode::CrossCheck, |mut comm| {
            let mut buf = vec![1.0f32; n];
            comm.all_reduce(&mut buf, ReduceOp::Sum)
                .map(|()| comm.bytes_sent())
        })
        .unwrap();
        let expected = (2 * (p - 1) * n / p * 4) as u64;
        for bytes in results {
            assert_eq!(bytes.unwrap(), expected);
        }
    }

    #[test]
    fn skipped_collective_surfaces_as_schedule_mismatch_fast() {
        // The desync scenario of the schedule verifier: rank 1 skips a
        // bucket's all-reduce and goes straight to the barrier. Without
        // verification this is a silent hang-until-timeout (or a corrupt
        // reduction); with cross-check the first divergent collective is
        // named, and every rank unblocks within the group's poll interval
        // rather than the 30-second peer timeout.
        let start = std::time::Instant::now();
        let results = ThreadGroup::try_run_with(3, VerifyMode::CrossCheck, |mut comm| {
            if comm.rank_id().as_usize() != 1 {
                let mut buf = vec![comm.rank_id().as_usize() as f32; 64];
                comm.all_reduce(&mut buf, ReduceOp::Sum)?;
            }
            comm.barrier()
        })
        .unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "divergence took {:?} to surface",
            start.elapsed()
        );
        let mismatch = results
            .iter()
            .find_map(|r| match r {
                Err(CommError::ScheduleMismatch { seq, local, peer }) => {
                    Some((*seq, *local, *peer))
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("no rank observed the divergence: {results:?}"));
        let (seq, local, peer) = mismatch;
        // The very first collective diverges: barrier on rank 1 vs
        // all-reduce on its peers.
        assert_eq!(seq, 0);
        let kinds: Vec<_> = [local.map(|p| p.kind), Some(peer.kind)]
            .into_iter()
            .flatten()
            .collect();
        assert!(
            kinds.contains(&crate::schedule::OpKind::Barrier)
                && kinds.contains(&crate::schedule::OpKind::AllReduce),
            "mismatch does not name the divergent pair: {mismatch:?}"
        );
        // No rank may hang or return a wrong result silently.
        for r in &results {
            assert!(r.is_err(), "a rank completed despite the divergence: {r:?}");
        }
    }

    #[test]
    fn digest_mode_records_schedule_without_tagging() {
        let results = ThreadGroup::run(2, |mut comm| {
            let mut buf = vec![0.0f32; 8];
            comm.all_reduce(&mut buf, ReduceOp::Mean).unwrap();
            comm.schedule().expect("schedule snapshot")
        });
        assert_eq!(results[0].seq, 1);
        assert_eq!(results[0].digest, results[1].digest);
        assert_eq!(results[0].entries.len(), 1);
    }

    /// Integer-valued inputs: every partial sum is exactly representable,
    /// so flat and hierarchical reduction orders must agree bit-for-bit.
    fn integer_inputs(p: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..p)
            .map(|_| (0..len).map(|_| rng.gen_range(-8i32..=8) as f32).collect())
            .collect()
    }

    #[test]
    fn two_level_all_reduce_is_bit_exact_with_flat_ring() {
        for (groups, group_size) in [(2usize, 2usize), (2, 4), (4, 2), (3, 3)] {
            let p = groups * group_size;
            for len in [1usize, 5, 64, 257] {
                let inputs = integer_inputs(p, len, (p * 1000 + len) as u64);
                let flat = ThreadGroup::run(p, |mut comm| {
                    let mut buf = inputs[comm.rank_id().as_usize()].clone();
                    comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                    buf
                });
                let topo = Topology::two_level(groups, group_size).unwrap();
                let hier = ThreadGroup::try_run_with_topology(topo, VerifyMode::default(), {
                    let inputs = &inputs;
                    move |mut comm| {
                        let mut buf = inputs[comm.rank_id().as_usize()].clone();
                        comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                        buf
                    }
                })
                .unwrap();
                for (a, b) in flat.iter().zip(&hier) {
                    assert_eq!(
                        a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{groups}x{group_size} len={len}: hierarchical differs from flat"
                    );
                }
            }
        }
    }

    #[test]
    fn two_level_mean_is_bit_exact_with_flat_ring() {
        let (groups, group_size) = (2usize, 3usize);
        let p = groups * group_size;
        let inputs = integer_inputs(p, 48, 7);
        let flat = ThreadGroup::run(p, |mut comm| {
            let mut buf = inputs[comm.rank_id().as_usize()].clone();
            comm.all_reduce(&mut buf, ReduceOp::Mean).unwrap();
            buf
        });
        let topo = Topology::two_level(groups, group_size).unwrap();
        let hier = ThreadGroup::try_run_with_topology(topo, VerifyMode::default(), {
            let inputs = &inputs;
            move |mut comm| {
                let mut buf = inputs[comm.rank_id().as_usize()].clone();
                comm.all_reduce(&mut buf, ReduceOp::Mean).unwrap();
                buf
            }
        })
        .unwrap();
        for (a, b) in flat.iter().zip(&hier) {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn two_level_volume_matches_flat_ring_when_chunks_divide() {
        // Table II extension: when s | N and G | N/s, the two-level
        // per-rank volume 2(s-1)N/s + 2(G-1)N/(sG) collapses to the flat
        // ring's 2(p-1)N/p — hierarchy costs nothing in bandwidth.
        let (groups, group_size) = (2usize, 2usize);
        let p = groups * group_size;
        let n = 1024usize;
        let flat_bytes = (2 * (p - 1) * n / p * 4) as u64;
        let topo = Topology::two_level(groups, group_size).unwrap();
        let results =
            ThreadGroup::try_run_with_topology(topo, VerifyMode::default(), |mut comm| {
                let mut buf = vec![1.0f32; n];
                comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                comm.bytes_sent()
            })
            .unwrap();
        for bytes in results {
            assert_eq!(bytes, flat_bytes);
        }
    }

    #[test]
    fn two_level_topology_is_recorded_as_schedule_op() {
        // A two-level group records its topology as schedule op 0, so a
        // flat and a hierarchical run of the same collectives can never
        // digest-collide; flat groups record nothing, keeping old traces
        // stable.
        let flat = ThreadGroup::run(4, |mut comm| {
            let mut buf = vec![comm.rank_id().as_usize() as f32; 8];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            comm.schedule().expect("thread backend records schedules")
        });
        let topo = Topology::two_level(2, 2).unwrap();
        let hier = ThreadGroup::try_run_with_topology(topo, VerifyMode::default(), |mut comm| {
            assert_eq!(comm.topology(), Topology::two_level(2, 2).unwrap());
            assert_eq!(comm.membership(), Membership::initial(4));
            let mut buf = vec![comm.rank_id().as_usize() as f32; 8];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            comm.schedule().expect("thread backend records schedules")
        })
        .unwrap();
        assert_eq!(flat[0].seq, 1);
        assert_eq!(hier[0].seq, 2, "topology op + all-reduce");
        assert_ne!(flat[0].digest, hier[0].digest);
        for snap in &hier[1..] {
            assert_eq!(snap.digest, hier[0].digest);
        }
    }

    #[test]
    fn kill_then_reform_converges_bit_exact_with_fresh_group() {
        // The elastic-membership loop: rank 1 of 3 dies mid all-reduce;
        // the survivors observe MembershipChanged, reform to a 2-rank
        // ring, re-run the collective and must agree bit-for-bit with a
        // fresh 2-rank group over the same inputs.
        let inputs = integer_inputs(3, 96, 42);
        let survivors_fresh = ThreadGroup::run(2, {
            let inputs = &inputs;
            move |mut comm| {
                // Fresh group of the survivors {0, 2}.
                let phys = [0usize, 2][comm.rank_id().as_usize()];
                let mut buf = inputs[phys].clone();
                comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                buf
            }
        });
        let outputs = std::sync::Mutex::new(Vec::new());
        let result = ThreadGroup::try_run(3, |mut comm| {
            let phys = comm.rank_id().as_usize();
            if phys == 1 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("injected worker death");
            }
            let mut buf = inputs[phys].clone();
            match comm.all_reduce(&mut buf, ReduceOp::Sum) {
                Err(CommError::MembershipChanged { departed, .. }) => {
                    assert_eq!(departed, vec![1]);
                }
                other => panic!("rank {phys} expected MembershipChanged, got {other:?}"),
            }
            let membership = comm.reform().expect("reform after departure");
            assert_eq!(membership.epoch(), 1);
            assert_eq!(membership.ranks(), &[0, 2]);
            assert_eq!(comm.membership().world_size(), 2);
            let mut buf = inputs[phys].clone();
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            let digest = comm.schedule().expect("schedule snapshot").digest;
            outputs.lock().unwrap().push((phys, buf, digest));
        });
        // The overall run still reports the panic (rank 1's thread died).
        assert_eq!(result, Err(CommError::WorkerPanicked));
        let mut outputs = outputs.into_inner().unwrap();
        outputs.sort_by_key(|(phys, _, _)| *phys);
        assert_eq!(outputs.len(), 2, "both survivors must converge");
        assert_eq!(
            outputs[0].2, outputs[1].2,
            "survivors disagree on the post-reform schedule digest"
        );
        for ((_, buf, _), fresh) in outputs.iter().zip(&survivors_fresh) {
            assert_eq!(
                buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "reformed group differs from a fresh group of the survivors"
            );
        }
    }

    #[test]
    fn two_level_kill_then_reform_via_worker_dispatch() {
        // 8 ranks in a 2x4 hierarchy, driven through the non-blocking
        // worker path. Rank 5 dies before joining the collective; the
        // seven survivors observe MembershipChanged at wait(), reform
        // (which routes through the worker), and complete a flat 7-rank
        // all-reduce over the survivors' contributions.
        let inputs = integer_inputs(8, 40, 11);
        let expected: Vec<f32> = (0..40)
            .map(|i| {
                (0..8)
                    .filter(|&r| r != 5)
                    .map(|r| inputs[r][i])
                    .sum::<f32>()
            })
            .collect();
        let outputs = std::sync::Mutex::new(Vec::new());
        let topo = Topology::two_level(2, 4).unwrap();
        let result = ThreadGroup::try_run_with_topology(topo, VerifyMode::default(), |mut comm| {
            let phys = comm.rank_id().as_usize();
            if phys == 5 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("injected worker death");
            }
            let pending = comm.all_reduce_start(inputs[phys].clone(), ReduceOp::Sum);
            match pending.wait() {
                Err(CommError::MembershipChanged { departed, .. }) => {
                    assert_eq!(departed, vec![5]);
                }
                other => panic!("rank {phys} expected MembershipChanged, got {other:?}"),
            }
            let membership = comm.reform().expect("reform after departure");
            assert_eq!(membership.epoch(), 1);
            assert_eq!(membership.world_size(), 7);
            assert!(
                comm.topology().is_flat(),
                "reform falls back to a flat ring"
            );
            let out = comm
                .all_reduce_start(inputs[phys].clone(), ReduceOp::Sum)
                .wait()
                .unwrap()
                .into_f32()
                .unwrap();
            outputs.lock().unwrap().push((phys, out));
            Ok::<_, CommError>(())
        });
        assert_eq!(result, Err(CommError::WorkerPanicked));
        let outputs = outputs.into_inner().unwrap();
        assert_eq!(outputs.len(), 7, "all seven survivors must converge");
        for (phys, out) in &outputs {
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "rank {phys} post-reform sum is wrong"
            );
        }
    }

    #[test]
    fn reform_without_departures_is_idempotent() {
        let results = ThreadGroup::run(3, |mut comm| {
            let before = comm.schedule().map(|s| s.digest);
            let membership = comm.reform().expect("reform with everyone alive");
            assert_eq!(membership.epoch(), 0, "no departure, no epoch bump");
            assert_eq!(membership.ranks(), &[0, 1, 2]);
            let after = comm.schedule().map(|s| s.digest);
            assert_eq!(before, after, "idempotent reform must not touch the digest");
            let mut buf = vec![1.0f32; 8];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        for buf in results {
            assert!(buf.iter().all(|&v| v == 3.0));
        }
    }

    #[test]
    fn telemetry_attached_after_worker_spawn_still_records() {
        use acp_telemetry::InMemoryRecorder;
        let recs: Vec<_> = (0..2).map(|_| Arc::new(InMemoryRecorder::new())).collect();
        ThreadGroup::run(2, |mut comm| {
            // Spawn the worker first, then attach the recorder.
            comm.all_reduce_start(vec![1.0; 16], ReduceOp::Sum)
                .wait()
                .unwrap();
            comm.set_recorder(recs[comm.rank_id().as_usize()].clone());
            comm.all_reduce_start(vec![1.0; 16], ReduceOp::Sum)
                .wait()
                .unwrap();
        });
        for rec in &recs {
            assert_eq!(rec.counter(keys::COMM_CALLS), 1);
            assert!(rec.counter(keys::COMM_BYTES_SENT) > 0);
            assert_eq!(rec.spans().len(), 1);
        }
    }
}
