//! Real in-process collectives over a ring of channels.
//!
//! Each worker is a thread holding a [`ThreadCommunicator`] with a channel to
//! its successor on the ring and a receiver from its predecessor — the same
//! topology NCCL's ring algorithms use. All-reduce is implemented as chunked
//! reduce-scatter followed by ring all-gather, so the per-rank transmitted
//! volume is the bandwidth-optimal `2 (p−1)/p · N` of Table II, which the
//! tests verify byte-for-byte through [`Communicator::bytes_sent`].

use std::fmt;

use acp_telemetry::{keys, noop, RecorderHandle, Span};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Reduction operator applied element-wise by [`Communicator::all_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceOp {
    /// Element-wise sum (gradient aggregation).
    #[default]
    Sum,
    /// Element-wise sum divided by the world size (gradient averaging).
    Mean,
    /// Element-wise maximum.
    Max,
}

/// Error raised by collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer sent a payload whose length differs from ours — the ranks
    /// called the collective with inconsistent buffer sizes.
    LengthMismatch {
        /// Length this rank expected.
        expected: usize,
        /// Length actually received.
        actual: usize,
    },
    /// A peer disconnected (its thread panicked or dropped the communicator
    /// mid-collective).
    PeerDisconnected,
    /// A peer sent a payload of an unexpected type for the running
    /// collective (ranks invoked different collectives concurrently).
    ProtocolMismatch,
    /// The requested root rank does not exist in this group.
    InvalidRoot {
        /// Root requested by the caller.
        root: usize,
        /// Size of the group.
        world_size: usize,
    },
    /// A point-to-point operation addressed a rank outside the group.
    InvalidRank {
        /// The out-of-range rank.
        rank: usize,
        /// Size of the group.
        world_size: usize,
    },
    /// A worker thread of a [`ThreadGroup`] panicked before producing a
    /// result.
    WorkerPanicked,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "peer payload length {actual} does not match local length {expected}"
                )
            }
            CommError::PeerDisconnected => write!(f, "a peer disconnected mid-collective"),
            CommError::ProtocolMismatch => {
                write!(f, "peer payload type does not match the running collective")
            }
            CommError::InvalidRoot { root, world_size } => {
                write!(
                    f,
                    "root rank {root} out of range for world size {world_size}"
                )
            }
            CommError::InvalidRank { rank, world_size } => {
                write!(f, "rank {rank} out of range for world size {world_size}")
            }
            CommError::WorkerPanicked => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for CommError {}

/// Former name of [`CommError`].
#[deprecated(since = "0.2.0", note = "renamed to `CommError`")]
pub type CollectiveError = CommError;

/// Collective communication interface shared by the trainer and optimizers.
///
/// Mirrors the subset of NCCL the paper's algorithms need: sum/mean/max
/// all-reduce for additive payloads (S-SGD, Power-SGD, ACP-SGD), `f32`/`u32`
/// all-gather for non-additive compressed payloads (Top-k values/indices,
/// Sign-SGD bit-packed words), broadcast and barrier.
pub trait Communicator: Send {
    /// This worker's rank in `[0, world_size)`.
    fn rank(&self) -> usize;

    /// Number of workers in the group.
    fn world_size(&self) -> usize;

    /// Reduces `buf` element-wise across all ranks; every rank ends with the
    /// reduced result in `buf`.
    ///
    /// # Errors
    ///
    /// Returns an error if ranks disagree on buffer length or a peer
    /// disconnects.
    fn all_reduce(&mut self, buf: &mut [f32], op: ReduceOp) -> Result<(), CommError>;

    /// Gathers each rank's `send` buffer; returns the concatenation in rank
    /// order (`world_size * send.len()` elements).
    ///
    /// # Errors
    ///
    /// Returns an error if ranks disagree on buffer length or a peer
    /// disconnects.
    fn all_gather_f32(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError>;

    /// [`Communicator::all_gather_f32`] for `u32` payloads (bit-packed signs,
    /// sparse indices).
    ///
    /// # Errors
    ///
    /// Returns an error if ranks disagree on buffer length or a peer
    /// disconnects.
    fn all_gather_u32(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError>;

    /// Copies `buf` on `root` into `buf` on every other rank.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range root, mismatched lengths, or a
    /// disconnected peer.
    fn broadcast(&mut self, buf: &mut [f32], root: usize) -> Result<(), CommError>;

    /// Blocks until every rank has entered the barrier.
    ///
    /// # Errors
    ///
    /// Returns an error if a peer disconnects.
    fn barrier(&mut self) -> Result<(), CommError>;

    /// Total payload bytes this rank has transmitted so far (excluding
    /// barrier tokens) — used to verify the Table II volume formulas.
    fn bytes_sent(&self) -> u64;

    /// Attaches a telemetry recorder. An instrumented communicator reports
    /// wire bytes ([`keys::COMM_BYTES_SENT`] / [`keys::COMM_BYTES_RECV`]) and
    /// per-collective latencies to it; the default implementation ignores
    /// the handle, so transports without instrumentation keep compiling.
    fn set_recorder(&mut self, recorder: RecorderHandle) {
        let _ = recorder;
    }

    /// Sparse all-reduce with top-k truncation (the SparCML / gTop-k
    /// collective): sums the ranks' sparse `(indices, values)` vectors and
    /// returns (approximately) the `k` largest-magnitude coordinates of the
    /// sum, identical on every rank.
    ///
    /// The default implementation gathers all contributions and truncates;
    /// [`ThreadCommunicator`] overrides it with the `O(k log p)` recursive
    /// doubling merge of gTop-k (Shi et al., ICDCS 2019), whose per-round
    /// truncation makes it approximate (coordinates that are individually
    /// small everywhere can be dropped even if their sum is large).
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or inconsistent calls.
    fn global_topk(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<(Vec<u32>, Vec<f32>), CommError> {
        let gathered_idx = self.all_gather_u32(indices)?;
        let gathered_val = self.all_gather_f32(values)?;
        let mut map = std::collections::BTreeMap::new();
        for (&i, &v) in gathered_idx.iter().zip(&gathered_val) {
            *map.entry(i).or_insert(0.0f32) += v;
        }
        Ok(truncate_topk(map, k))
    }
}

/// Keeps the `k` largest-magnitude entries of a coordinate map, returned
/// in ascending coordinate order.
fn truncate_topk(map: std::collections::BTreeMap<u32, f32>, k: usize) -> (Vec<u32>, Vec<f32>) {
    let mut entries: Vec<(u32, f32)> = map.into_iter().collect();
    if entries.len() > k {
        entries.select_nth_unstable_by(k - 1, |a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        entries.truncate(k);
        entries.sort_unstable_by_key(|e| e.0);
    }
    entries.into_iter().unzip()
}

/// Trivial [`Communicator`] for a single-process group of size 1.
///
/// Collectives are identities; useful as a default so single-worker training
/// shares the distributed code path.
///
/// # Examples
///
/// ```
/// use acp_collectives::{Communicator, LocalCommunicator, ReduceOp};
///
/// let mut comm = LocalCommunicator::new();
/// let mut buf = vec![1.0, 2.0];
/// comm.all_reduce(&mut buf, ReduceOp::Sum)?;
/// assert_eq!(buf, vec![1.0, 2.0]);
/// # Ok::<(), acp_collectives::CommError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalCommunicator {
    _private: (),
}

impl LocalCommunicator {
    /// Creates a size-1 communicator.
    pub fn new() -> Self {
        LocalCommunicator { _private: () }
    }
}

impl Communicator for LocalCommunicator {
    fn rank(&self) -> usize {
        0
    }

    fn world_size(&self) -> usize {
        1
    }

    fn all_reduce(&mut self, _buf: &mut [f32], _op: ReduceOp) -> Result<(), CommError> {
        Ok(())
    }

    fn all_gather_f32(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError> {
        Ok(send.to_vec())
    }

    fn all_gather_u32(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError> {
        Ok(send.to_vec())
    }

    fn broadcast(&mut self, _buf: &mut [f32], root: usize) -> Result<(), CommError> {
        if root != 0 {
            return Err(CommError::InvalidRoot {
                root,
                world_size: 1,
            });
        }
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        Ok(())
    }

    fn bytes_sent(&self) -> u64 {
        0
    }
}

/// Message exchanged between workers.
#[derive(Debug)]
enum RingMsg {
    F32(Vec<f32>),
    U32(Vec<u32>),
    /// Sparse (indices, values) pair for the gTop-k collective.
    Sparse(Vec<u32>, Vec<f32>),
    Token,
}

impl RingMsg {
    fn payload_bytes(&self) -> u64 {
        match self {
            RingMsg::F32(v) => 4 * v.len() as u64,
            RingMsg::U32(v) => 4 * v.len() as u64,
            RingMsg::Sparse(i, v) => 4 * (i.len() + v.len()) as u64,
            RingMsg::Token => 0,
        }
    }
}

/// How long a rank waits on a peer before concluding it died.
const RECV_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// A worker-thread endpoint of a communicator group.
///
/// Created in bulk by [`ThreadGroup::new`] (one per rank) and moved into the
/// worker threads. Transport is a mailbox: every rank can send to every
/// other rank, which supports ring algorithms (bandwidth-optimal
/// all-reduce), recursive doubling (latency-optimal), and sparse
/// collectives. All collectives are SPMD: every rank of the group must
/// call the same sequence of operations.
pub struct ThreadCommunicator {
    rank: usize,
    world_size: usize,
    /// Sender to each rank's inbox (index = destination rank).
    peers: Vec<Sender<(usize, RingMsg)>>,
    /// This rank's inbox.
    inbox: Receiver<(usize, RingMsg)>,
    /// Out-of-order messages buffered per source rank.
    pending: Vec<std::collections::VecDeque<RingMsg>>,
    bytes_sent: u64,
    /// Telemetry sink; [`acp_telemetry::NoopRecorder`] unless attached via
    /// [`Communicator::set_recorder`].
    recorder: RecorderHandle,
}

impl fmt::Debug for ThreadCommunicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadCommunicator")
            .field("rank", &self.rank)
            .field("world_size", &self.world_size)
            .field("bytes_sent", &self.bytes_sent)
            .finish_non_exhaustive()
    }
}

impl ThreadCommunicator {
    fn send_to(&mut self, dest: usize, msg: RingMsg) -> Result<(), CommError> {
        if dest >= self.peers.len() {
            return Err(CommError::InvalidRank {
                rank: dest,
                world_size: self.world_size,
            });
        }
        let bytes = msg.payload_bytes();
        self.bytes_sent += bytes;
        if self.recorder.enabled() {
            self.recorder.add(keys::COMM_BYTES_SENT, bytes);
        }
        self.peers[dest]
            .send((self.rank, msg))
            .map_err(|_| CommError::PeerDisconnected)
    }

    fn recv_from(&mut self, src: usize) -> Result<RingMsg, CommError> {
        if src >= self.pending.len() {
            return Err(CommError::InvalidRank {
                rank: src,
                world_size: self.world_size,
            });
        }
        if let Some(msg) = self.pending[src].pop_front() {
            return Ok(msg);
        }
        loop {
            match self.inbox.recv_timeout(RECV_TIMEOUT) {
                Ok((from, msg)) => {
                    // Count at inbox receipt so buffered out-of-order
                    // messages are still counted exactly once.
                    if self.recorder.enabled() {
                        self.recorder
                            .add(keys::COMM_BYTES_RECV, msg.payload_bytes());
                    }
                    if from == src {
                        return Ok(msg);
                    }
                    self.pending[from].push_back(msg);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerDisconnected)
                }
            }
        }
    }

    /// Emits per-collective telemetry: one [`keys::COMM_CALLS`] tick, a
    /// latency observation under `key`, and a span on this rank's track.
    fn record_collective(&self, name: &'static str, key: &str, start_us: u64) {
        if !self.recorder.enabled() {
            return;
        }
        let end_us = self.recorder.now_us();
        self.recorder.add(keys::COMM_CALLS, 1);
        self.recorder
            .observe(key, end_us.saturating_sub(start_us) as f64);
        self.recorder.span(Span {
            name,
            cat: keys::CAT_COMM,
            track: self.rank as u64,
            start_us,
            end_us,
        });
    }

    fn next_rank(&self) -> usize {
        (self.rank + 1) % self.world_size
    }

    fn prev_rank(&self) -> usize {
        (self.rank + self.world_size - 1) % self.world_size
    }

    fn send(&mut self, msg: RingMsg) -> Result<(), CommError> {
        let next = self.next_rank();
        self.send_to(next, msg)
    }

    fn recv(&mut self) -> Result<RingMsg, CommError> {
        let prev = self.prev_rank();
        self.recv_from(prev)
    }

    fn expect_f32(msg: RingMsg, expected: usize) -> Result<Vec<f32>, CommError> {
        match msg {
            RingMsg::F32(v) if v.len() == expected => Ok(v),
            RingMsg::F32(v) => Err(CommError::LengthMismatch {
                expected,
                actual: v.len(),
            }),
            _ => Err(CommError::ProtocolMismatch),
        }
    }

    fn recv_f32(&mut self, expected: usize) -> Result<Vec<f32>, CommError> {
        let msg = self.recv()?;
        Self::expect_f32(msg, expected)
    }

    fn recv_u32(&mut self, expected: usize) -> Result<Vec<u32>, CommError> {
        match self.recv()? {
            RingMsg::U32(v) if v.len() == expected => Ok(v),
            RingMsg::U32(v) => Err(CommError::LengthMismatch {
                expected,
                actual: v.len(),
            }),
            _ => Err(CommError::ProtocolMismatch),
        }
    }

    /// Simultaneously sends `send` to `peer` and receives their buffer of
    /// the same length — the pairwise exchange of butterfly algorithms.
    ///
    /// Both sides must call this with each other's rank.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or mismatched lengths.
    pub fn send_recv_f32(&mut self, peer: usize, send: &[f32]) -> Result<Vec<f32>, CommError> {
        self.send_to(peer, RingMsg::F32(send.to_vec()))?;
        let msg = self.recv_from(peer)?;
        Self::expect_f32(msg, send.len())
    }

    /// Latency-optimal all-reduce by recursive doubling: `⌈log₂ p⌉` rounds
    /// of full-buffer pairwise exchanges (`T = log₂(p)(α + Nβ)`), versus
    /// the ring's `2(p−1)` messages of `N/p`. Preferable for small tensors
    /// — the start-up-cost regime tensor fusion addresses.
    ///
    /// Non-power-of-two groups fold the extra ranks onto partners before
    /// and after the butterfly.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnect or inconsistent buffer lengths.
    pub fn all_reduce_recursive_doubling(
        &mut self,
        buf: &mut [f32],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let start_us = self.recorder.now_us();
        let result = self.all_reduce_recursive_doubling_impl(buf, op);
        self.record_collective("all_reduce_rd", keys::COMM_ALL_REDUCE_US, start_us);
        result
    }

    fn all_reduce_recursive_doubling_impl(
        &mut self,
        buf: &mut [f32],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let p = self.world_size;
        if p == 1 {
            return Ok(());
        }
        let reduce = |dst: &mut [f32], src: &[f32], op: ReduceOp| match op {
            ReduceOp::Sum | ReduceOp::Mean => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
            ReduceOp::Max => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = d.max(*s);
                }
            }
        };
        // Largest power of two <= p.
        let pow2 = 1usize << (usize::BITS - 1 - (p.leading_zeros().max(1))).min(63);
        let pow2 = if pow2 > p { pow2 >> 1 } else { pow2 };
        let rem = p - pow2;
        let r = self.rank;
        // Pre-fold: ranks >= pow2 send to (rank - pow2); partners reduce.
        if r >= pow2 {
            self.send_to(r - pow2, RingMsg::F32(buf.to_vec()))?;
        } else if r < rem {
            let msg = self.recv_from(r + pow2)?;
            let incoming = Self::expect_f32(msg, buf.len())?;
            reduce(buf, &incoming, op);
        }
        // Butterfly over the pow2 group.
        if r < pow2 {
            let mut dist = 1usize;
            while dist < pow2 {
                let peer = r ^ dist;
                let incoming = self.send_recv_f32(peer, buf)?;
                reduce(buf, &incoming, op);
                dist <<= 1;
            }
        }
        // Post-fold: send results back to the folded ranks.
        if r < rem {
            self.send_to(r + pow2, RingMsg::F32(buf.to_vec()))?;
        } else if r >= pow2 {
            let msg = self.recv_from(r - pow2)?;
            let incoming = Self::expect_f32(msg, buf.len())?;
            buf.copy_from_slice(&incoming);
        }
        if op == ReduceOp::Mean {
            let inv = 1.0 / p as f32;
            for v in buf.iter_mut() {
                *v *= inv;
            }
        }
        Ok(())
    }

    /// Chunk boundaries for splitting `len` elements into `world_size` nearly
    /// equal contiguous ranges.
    fn chunk_range(&self, len: usize, chunk: usize) -> std::ops::Range<usize> {
        let p = self.world_size;
        let start = chunk * len / p;
        let end = (chunk + 1) * len / p;
        start..end
    }

    fn all_reduce_ring(&mut self, buf: &mut [f32], op: ReduceOp) -> Result<(), CommError> {
        let p = self.world_size;
        if p == 1 {
            return Ok(());
        }
        let r = self.rank;
        let len = buf.len();
        // Phase 1: ring reduce-scatter. After p-1 steps rank r owns the fully
        // reduced chunk (r+1) mod p.
        for s in 0..p - 1 {
            let send_idx = (r + p - s) % p;
            let recv_idx = (r + p - s - 1) % p;
            let send_range = self.chunk_range(len, send_idx);
            let payload = buf[send_range].to_vec();
            self.send(RingMsg::F32(payload))?;
            let recv_range = self.chunk_range(len, recv_idx);
            let incoming = self.recv_f32(recv_range.len())?;
            let dst = &mut buf[recv_range];
            match op {
                ReduceOp::Sum | ReduceOp::Mean => {
                    for (d, x) in dst.iter_mut().zip(&incoming) {
                        *d += x;
                    }
                }
                ReduceOp::Max => {
                    for (d, x) in dst.iter_mut().zip(&incoming) {
                        *d = d.max(*x);
                    }
                }
            }
        }
        // Phase 2: ring all-gather of the reduced chunks.
        for s in 0..p - 1 {
            let send_idx = (r + 1 + p - s) % p;
            let recv_idx = (r + p - s) % p;
            let send_range = self.chunk_range(len, send_idx);
            let payload = buf[send_range].to_vec();
            self.send(RingMsg::F32(payload))?;
            let recv_range = self.chunk_range(len, recv_idx);
            let incoming = self.recv_f32(recv_range.len())?;
            buf[recv_range].copy_from_slice(&incoming);
        }
        if op == ReduceOp::Mean {
            let inv = 1.0 / p as f32;
            for v in buf.iter_mut() {
                *v *= inv;
            }
        }
        Ok(())
    }

    fn all_gather_f32_impl(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError> {
        let p = self.world_size;
        let k = send.len();
        let r = self.rank;
        let mut out = vec![0.0f32; p * k];
        out[r * k..(r + 1) * k].copy_from_slice(send);
        for s in 0..p - 1 {
            let send_slot = (r + p - s) % p;
            let recv_slot = (r + p - s - 1) % p;
            let payload = out[send_slot * k..(send_slot + 1) * k].to_vec();
            self.send(RingMsg::F32(payload))?;
            let incoming = self.recv_f32(k)?;
            out[recv_slot * k..(recv_slot + 1) * k].copy_from_slice(&incoming);
        }
        Ok(out)
    }

    fn all_gather_u32_impl(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError> {
        let p = self.world_size;
        let k = send.len();
        let r = self.rank;
        let mut out = vec![0u32; p * k];
        out[r * k..(r + 1) * k].copy_from_slice(send);
        for s in 0..p - 1 {
            let send_slot = (r + p - s) % p;
            let recv_slot = (r + p - s - 1) % p;
            let payload = out[send_slot * k..(send_slot + 1) * k].to_vec();
            self.send(RingMsg::U32(payload))?;
            let incoming = self.recv_u32(k)?;
            out[recv_slot * k..(recv_slot + 1) * k].copy_from_slice(&incoming);
        }
        Ok(out)
    }

    fn broadcast_impl(&mut self, buf: &mut [f32], root: usize) -> Result<(), CommError> {
        let p = self.world_size;
        if root >= p {
            return Err(CommError::InvalidRoot {
                root,
                world_size: p,
            });
        }
        if p == 1 {
            return Ok(());
        }
        // Pipeline around the ring: root sends, each rank forwards unless its
        // successor is the root.
        let next_is_root = (self.rank + 1) % p == root;
        if self.rank == root {
            self.send(RingMsg::F32(buf.to_vec()))?;
        } else {
            let incoming = self.recv_f32(buf.len())?;
            buf.copy_from_slice(&incoming);
            if !next_is_root {
                self.send(RingMsg::F32(incoming))?;
            }
        }
        Ok(())
    }

    fn barrier_impl(&mut self) -> Result<(), CommError> {
        let p = self.world_size;
        if p == 1 {
            return Ok(());
        }
        // Two token trips around the ring: after the first, every rank has
        // entered; the second releases them.
        for _round in 0..2 {
            if self.rank == 0 {
                self.send(RingMsg::Token)?;
                match self.recv()? {
                    RingMsg::Token => {}
                    _ => return Err(CommError::ProtocolMismatch),
                }
            } else {
                match self.recv()? {
                    RingMsg::Token => {}
                    _ => return Err(CommError::ProtocolMismatch),
                }
                self.send(RingMsg::Token)?;
            }
        }
        Ok(())
    }

    fn global_topk_impl(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<(Vec<u32>, Vec<f32>), CommError> {
        if indices.len() != values.len() {
            return Err(CommError::LengthMismatch {
                expected: indices.len(),
                actual: values.len(),
            });
        }
        let p = self.world_size;
        let mut map: std::collections::BTreeMap<u32, f32> = std::collections::BTreeMap::new();
        for (&i, &v) in indices.iter().zip(values) {
            *map.entry(i).or_insert(0.0) += v;
        }
        if p == 1 {
            return Ok(truncate_topk(map, k));
        }
        // gTop-k butterfly: exchange sparse sets with rank ^ 2^s, merge,
        // truncate to k each round. Requires a power-of-two group; fold
        // the remainder like recursive doubling.
        let pow2 = {
            let x = 1usize << (usize::BITS - 1 - p.leading_zeros());
            if x > p {
                x >> 1
            } else {
                x
            }
        };
        let rem = p - pow2;
        let r = self.rank;
        let merge =
            |map: &mut std::collections::BTreeMap<u32, f32>, idx: Vec<u32>, val: Vec<f32>| {
                for (i, v) in idx.into_iter().zip(val) {
                    *map.entry(i).or_insert(0.0) += v;
                }
            };
        let recv_sparse = |msg: RingMsg| -> Result<(Vec<u32>, Vec<f32>), CommError> {
            match msg {
                RingMsg::Sparse(i, v) => Ok((i, v)),
                _ => Err(CommError::ProtocolMismatch),
            }
        };
        if r >= pow2 {
            let (idx, val): (Vec<u32>, Vec<f32>) = map.into_iter().unzip();
            self.send_to(r - pow2, RingMsg::Sparse(idx, val))?;
            // Wait for the final result.
            let msg = self.recv_from(r - pow2)?;
            let (idx, val) = recv_sparse(msg)?;
            return Ok((idx, val));
        }
        if r < rem {
            let msg = self.recv_from(r + pow2)?;
            let (idx, val) = recv_sparse(msg)?;
            merge(&mut map, idx, val);
        }
        let mut dist = 1usize;
        while dist < pow2 {
            let peer = r ^ dist;
            let (send_idx, send_val): (Vec<u32>, Vec<f32>) =
                map.iter().map(|(&i, &v)| (i, v)).unzip();
            self.send_to(peer, RingMsg::Sparse(send_idx, send_val))?;
            let msg = self.recv_from(peer)?;
            let (idx, val) = recv_sparse(msg)?;
            merge(&mut map, idx, val);
            // Per-round truncation is what keeps gTop-k's traffic at
            // O(k log p) — and what makes it approximate.
            let (ti, tv) = truncate_topk(std::mem::take(&mut map), k);
            map = ti.into_iter().zip(tv).collect();
            dist <<= 1;
        }
        let (idx, val) = truncate_topk(map, k);
        if r < rem {
            self.send_to(r + pow2, RingMsg::Sparse(idx.clone(), val.clone()))?;
        }
        Ok((idx, val))
    }
}

impl Communicator for ThreadCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn all_reduce(&mut self, buf: &mut [f32], op: ReduceOp) -> Result<(), CommError> {
        let start_us = self.recorder.now_us();
        let result = self.all_reduce_ring(buf, op);
        self.record_collective("all_reduce", keys::COMM_ALL_REDUCE_US, start_us);
        result
    }

    fn all_gather_f32(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError> {
        let start_us = self.recorder.now_us();
        let result = self.all_gather_f32_impl(send);
        self.record_collective("all_gather_f32", keys::COMM_ALL_GATHER_US, start_us);
        result
    }

    fn all_gather_u32(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError> {
        let start_us = self.recorder.now_us();
        let result = self.all_gather_u32_impl(send);
        self.record_collective("all_gather_u32", keys::COMM_ALL_GATHER_US, start_us);
        result
    }

    fn broadcast(&mut self, buf: &mut [f32], root: usize) -> Result<(), CommError> {
        let start_us = self.recorder.now_us();
        let result = self.broadcast_impl(buf, root);
        self.record_collective("broadcast", keys::COMM_BROADCAST_US, start_us);
        result
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        // Untimed: barriers move no payload, and timing them would skew the
        // communication series with pure synchronization waits.
        self.barrier_impl()
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    fn global_topk(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<(Vec<u32>, Vec<f32>), CommError> {
        let start_us = self.recorder.now_us();
        let result = self.global_topk_impl(indices, values, k);
        self.record_collective("global_topk", keys::COMM_GLOBAL_TOPK_US, start_us);
        result
    }
}

/// Factory for ring communicator groups backed by worker threads.
#[derive(Debug)]
pub struct ThreadGroup {
    _private: (),
}

impl ThreadGroup {
    /// Creates `world_size` connected [`ThreadCommunicator`]s, one per rank,
    /// in rank order. Move each into its worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `world_size == 0`.
    #[allow(clippy::new_ret_no_self)] // constructs the whole group, not a ThreadGroup value
    pub fn new(world_size: usize) -> Vec<ThreadCommunicator> {
        assert!(world_size > 0, "world_size must be positive");
        let mut inboxes = Vec::with_capacity(world_size);
        let mut senders = Vec::with_capacity(world_size);
        for _ in 0..world_size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            inboxes.push(rx);
        }
        inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| ThreadCommunicator {
                rank,
                world_size,
                peers: senders.clone(),
                inbox,
                pending: (0..world_size)
                    .map(|_| std::collections::VecDeque::new())
                    .collect(),
                bytes_sent: 0,
                recorder: noop(),
            })
            .collect()
    }

    /// Spawns `world_size` scoped worker threads, hands each its
    /// communicator, and returns their results in rank order.
    ///
    /// # Panics
    ///
    /// Panics if any worker panics, or if `world_size == 0`. Use
    /// [`ThreadGroup::try_run`] to observe worker failures as errors.
    pub fn run<T, F>(world_size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadCommunicator) -> T + Sync,
    {
        ThreadGroup::try_run(world_size, f).expect("worker thread panicked")
    }

    /// [`ThreadGroup::run`] without the panic: a panicking worker surfaces
    /// as [`CommError::WorkerPanicked`] instead of propagating.
    ///
    /// The remaining workers still run to completion (a dead peer shows up
    /// on their collective paths as [`CommError::PeerDisconnected`]).
    ///
    /// # Errors
    ///
    /// Returns [`CommError::WorkerPanicked`] if any worker thread panicked,
    /// and [`CommError::InvalidRank`] if `world_size == 0`.
    pub fn try_run<T, F>(world_size: usize, f: F) -> Result<Vec<T>, CommError>
    where
        T: Send,
        F: Fn(ThreadCommunicator) -> T + Sync,
    {
        if world_size == 0 {
            return Err(CommError::InvalidRank {
                rank: 0,
                world_size: 0,
            });
        }
        let comms = ThreadGroup::new(world_size);
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(|| f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| CommError::WorkerPanicked))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Naive reference reduction for validating the ring implementation.
    fn reference_reduce(inputs: &[Vec<f32>], op: ReduceOp) -> Vec<f32> {
        let mut out = inputs[0].clone();
        for input in &inputs[1..] {
            for (o, x) in out.iter_mut().zip(input) {
                match op {
                    ReduceOp::Sum | ReduceOp::Mean => *o += x,
                    ReduceOp::Max => *o = o.max(*x),
                }
            }
        }
        if op == ReduceOp::Mean {
            let inv = 1.0 / inputs.len() as f32;
            for o in &mut out {
                *o *= inv;
            }
        }
        out
    }

    fn random_inputs(p: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..p)
            .map(|_| (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect()
    }

    #[test]
    fn all_reduce_sum_matches_reference() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            for len in [1usize, 2, 7, 64, 257] {
                let inputs = random_inputs(p, len, (p * 1000 + len) as u64);
                let expected = reference_reduce(&inputs, ReduceOp::Sum);
                let results = ThreadGroup::run(p, |mut comm| {
                    let mut buf = inputs[comm.rank()].clone();
                    comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                    buf
                });
                for buf in results {
                    for (a, b) in buf.iter().zip(&expected) {
                        assert!((a - b).abs() < 1e-3, "p={p} len={len}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn all_reduce_mean_and_max() {
        let p = 4;
        let inputs = random_inputs(p, 33, 99);
        for op in [ReduceOp::Mean, ReduceOp::Max] {
            let expected = reference_reduce(&inputs, op);
            let results = ThreadGroup::run(p, |mut comm| {
                let mut buf = inputs[comm.rank()].clone();
                comm.all_reduce(&mut buf, op).unwrap();
                buf
            });
            for buf in results {
                for (a, b) in buf.iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-4, "{op:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn all_reduce_len_smaller_than_world() {
        // Chunking must handle empty chunks when len < p.
        let p = 8;
        let inputs = random_inputs(p, 3, 7);
        let expected = reference_reduce(&inputs, ReduceOp::Sum);
        let results = ThreadGroup::run(p, |mut comm| {
            let mut buf = inputs[comm.rank()].clone();
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        for buf in results {
            for (a, b) in buf.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn all_gather_f32_rank_order() {
        let p = 5;
        let results = ThreadGroup::run(p, |mut comm| {
            let send = vec![comm.rank() as f32; 3];
            comm.all_gather_f32(&send).unwrap()
        });
        for out in results {
            assert_eq!(out.len(), p * 3);
            for r in 0..p {
                assert!(out[r * 3..(r + 1) * 3].iter().all(|&v| v == r as f32));
            }
        }
    }

    #[test]
    fn all_gather_u32_rank_order() {
        let p = 3;
        let results = ThreadGroup::run(p, |mut comm| {
            let send = vec![comm.rank() as u32 * 10, comm.rank() as u32 * 10 + 1];
            comm.all_gather_u32(&send).unwrap()
        });
        for out in results {
            assert_eq!(out, vec![0, 1, 10, 11, 20, 21]);
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        let p = 4;
        for root in 0..p {
            let results = ThreadGroup::run(p, |mut comm| {
                let mut buf = if comm.rank() == root {
                    vec![42.0, 43.0]
                } else {
                    vec![0.0, 0.0]
                };
                comm.broadcast(&mut buf, root).unwrap();
                buf
            });
            for buf in results {
                assert_eq!(buf, vec![42.0, 43.0], "root={root}");
            }
        }
    }

    #[test]
    fn broadcast_invalid_root_errors() {
        let results = ThreadGroup::run(2, |mut comm| {
            let mut buf = vec![0.0];
            comm.broadcast(&mut buf, 5)
        });
        for r in results {
            assert_eq!(
                r,
                Err(CommError::InvalidRoot {
                    root: 5,
                    world_size: 2
                })
            );
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let entered = AtomicUsize::new(0);
        let p = 6;
        ThreadGroup::run(p, |mut comm| {
            entered.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must observe all entries.
            assert_eq!(entered.load(Ordering::SeqCst), p);
        });
    }

    #[test]
    fn ring_all_reduce_volume_is_bandwidth_optimal() {
        // Table II: per-rank transmitted volume of ring all-reduce is
        // 2 (p-1)/p * N elements.
        let p = 4;
        let n = 1024usize;
        let results = ThreadGroup::run(p, |mut comm| {
            let mut buf = vec![1.0f32; n];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            comm.bytes_sent()
        });
        let expected = (2 * (p - 1) * n / p * 4) as u64;
        for bytes in results {
            assert_eq!(bytes, expected);
        }
    }

    #[test]
    fn all_gather_volume_is_linear_in_world_size() {
        // Table II: all-gather transmits (p-1) * k elements per rank.
        let p = 4;
        let k = 100usize;
        let results = ThreadGroup::run(p, |mut comm| {
            let send = vec![0.5f32; k];
            comm.all_gather_f32(&send).unwrap();
            comm.bytes_sent()
        });
        let expected = ((p - 1) * k * 4) as u64;
        for bytes in results {
            assert_eq!(bytes, expected);
        }
    }

    #[test]
    fn length_mismatch_detected() {
        let results = ThreadGroup::run(2, |mut comm| {
            let mut buf = vec![0.0f32; if comm.rank() == 0 { 10 } else { 12 }];
            comm.all_reduce(&mut buf, ReduceOp::Sum)
        });
        assert!(results
            .iter()
            .any(|r| matches!(r, Err(CommError::LengthMismatch { .. }))));
    }

    #[test]
    fn local_communicator_is_identity() {
        let mut comm = LocalCommunicator::new();
        assert_eq!(comm.world_size(), 1);
        let mut buf = vec![3.0, 4.0];
        comm.all_reduce(&mut buf, ReduceOp::Mean).unwrap();
        assert_eq!(buf, vec![3.0, 4.0]);
        assert_eq!(comm.all_gather_f32(&buf).unwrap(), buf);
        assert_eq!(comm.all_gather_u32(&[1, 2]).unwrap(), vec![1, 2]);
        comm.barrier().unwrap();
        assert_eq!(comm.bytes_sent(), 0);
    }

    #[test]
    fn send_recv_exchanges_pairwise() {
        let results = ThreadGroup::run(4, |mut comm| {
            let peer = comm.rank() ^ 1;
            let send = vec![comm.rank() as f32; 3];
            comm.send_recv_f32(peer, &send).unwrap()
        });
        assert_eq!(results[0], vec![1.0; 3]);
        assert_eq!(results[1], vec![0.0; 3]);
        assert_eq!(results[2], vec![3.0; 3]);
        assert_eq!(results[3], vec![2.0; 3]);
    }

    #[test]
    fn recursive_doubling_matches_ring_all_reduce() {
        for p in [1usize, 2, 3, 4, 5, 7, 8] {
            for len in [1usize, 17, 64] {
                let inputs = random_inputs(p, len, (p * 31 + len) as u64);
                let expected = reference_reduce(&inputs, ReduceOp::Sum);
                let results = ThreadGroup::run(p, |mut comm| {
                    let mut buf = inputs[comm.rank()].clone();
                    comm.all_reduce_recursive_doubling(&mut buf, ReduceOp::Sum)
                        .unwrap();
                    buf
                });
                for buf in results {
                    for (a, b) in buf.iter().zip(&expected) {
                        assert!((a - b).abs() < 1e-3, "p={p} len={len}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn recursive_doubling_mean() {
        let p = 6;
        let results = ThreadGroup::run(p, |mut comm| {
            let mut buf = vec![comm.rank() as f32; 4];
            comm.all_reduce_recursive_doubling(&mut buf, ReduceOp::Mean)
                .unwrap();
            buf
        });
        for buf in results {
            assert!(buf.iter().all(|&v| (v - 2.5).abs() < 1e-5));
        }
    }

    #[test]
    fn global_topk_sums_overlapping_coordinates() {
        // Ranks contribute overlapping sparse vectors; the exact global
        // top-2 of the sum is coordinate 5 (sum 9) and coordinate 1 (6).
        let contributions = [
            (vec![1u32, 5], vec![2.0f32, 4.0]),
            (vec![1u32, 7], vec![2.0f32, 1.0]),
            (vec![1u32, 5], vec![2.0f32, 5.0]),
        ];
        let results = ThreadGroup::run(3, |mut comm| {
            let (idx, val) = &contributions[comm.rank()];
            comm.global_topk(idx, val, 2).unwrap()
        });
        for (idx, val) in results {
            assert_eq!(idx, vec![1, 5]);
            assert_eq!(val, vec![6.0, 9.0]);
        }
    }

    #[test]
    fn global_topk_all_ranks_agree_on_random_input() {
        use rand::Rng;
        use rand::SeedableRng;
        for p in [2usize, 3, 4, 5, 8] {
            let contributions: Vec<(Vec<u32>, Vec<f32>)> = (0..p)
                .map(|r| {
                    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(r as u64 + 99);
                    let mut idx: Vec<u32> = (0..8).map(|_| rng.gen_range(0..40u32)).collect();
                    idx.sort_unstable();
                    idx.dedup();
                    let val = idx.iter().map(|_| rng.gen_range(-3.0f32..3.0)).collect();
                    (idx, val)
                })
                .collect();
            let results = ThreadGroup::run(p, |mut comm| {
                let (idx, val) = &contributions[comm.rank()];
                comm.global_topk(idx, val, 4).unwrap()
            });
            for r in &results[1..] {
                assert_eq!(r, &results[0], "p={p}: ranks disagree");
            }
            assert!(results[0].0.len() <= 4);
        }
    }

    #[test]
    fn local_communicator_global_topk_truncates() {
        let mut comm = LocalCommunicator::new();
        let (idx, val) = comm.global_topk(&[3, 9, 1], &[1.0, -5.0, 0.5], 2).unwrap();
        assert_eq!(idx, vec![3, 9]);
        assert_eq!(val, vec![1.0, -5.0]);
    }

    #[test]
    fn sequential_collectives_do_not_interfere() {
        // Run several different collectives back to back on the same group.
        let p = 3;
        ThreadGroup::run(p, |mut comm| {
            let mut a = vec![comm.rank() as f32; 8];
            comm.all_reduce(&mut a, ReduceOp::Sum).unwrap();
            assert!(a.iter().all(|&v| v == 3.0));
            let g = comm.all_gather_u32(&[comm.rank() as u32]).unwrap();
            assert_eq!(g, vec![0, 1, 2]);
            comm.barrier().unwrap();
            let mut b = vec![if comm.rank() == 1 { 7.0 } else { 0.0 }; 4];
            comm.broadcast(&mut b, 1).unwrap();
            assert!(b.iter().all(|&v| v == 7.0));
        });
    }
}
