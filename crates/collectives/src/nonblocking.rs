//! Non-blocking collectives: operation descriptors, pending-operation
//! handles, and the per-rank comm worker thread.
//!
//! The blocking [`Communicator`] methods and the
//! non-blocking `dispatch`/`wait` path execute the *same* generic
//! [`ring`] algorithms — a blocking call is literally
//! `dispatch` + [`PendingOp::wait`] once a worker is running — so the two
//! paths are bit-exact with each other by construction, on every backend.
//!
//! A backend opts into the worker by implementing [`WorkerTransport`] and
//! moving its transport state into [`CommWorker::spawn`]. The worker owns
//! the transport, drains submitted operations strictly in FIFO order (so
//! the SPMD contract — every rank issues the same collectives in the same
//! order — is preserved no matter how many operations are in flight), and
//! replies through the per-operation channel a [`PendingOp`] wraps.
//!
//! Error propagation is structured end to end: a ring algorithm error is
//! sent through the reply channel and surfaces at [`PendingOp::wait`]; a
//! worker that dies drops the reply sender, which `wait` maps to
//! [`CommError::WorkerPanicked`]. Transport deadlines bound every receive,
//! so `wait` never hangs on a dead peer.

use acp_telemetry::{keys, RecorderHandle, Span};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::communicator::{CommError, Communicator, ReduceOp};
use crate::ring::{self, Transport};
use crate::schedule::{OpKind, ScheduleTracer};
use crate::topology::{Membership, Topology};

/// One collective operation, with its input payload moved in.
///
/// Inputs are owned (`Vec`, not slices) so an operation can be shipped to
/// the comm worker thread while the caller keeps computing.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveOp {
    /// Element-wise reduction of `buf` across ranks; resolves to
    /// [`CollectiveResult::F32`] with the reduced buffer.
    AllReduce {
        /// This rank's contribution; consumed by the operation.
        buf: Vec<f32>,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// Latency-optimal recursive-doubling all-reduce (butterfly); resolves
    /// to [`CollectiveResult::F32`]. Requires a transport whose topology
    /// supports arbitrary pairwise exchange.
    AllReduceRd {
        /// This rank's contribution; consumed by the operation.
        buf: Vec<f32>,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// Rank-order concatenation of every rank's `send`; resolves to
    /// [`CollectiveResult::F32`] of `world_size * send.len()` elements.
    AllGatherF32 {
        /// This rank's contribution.
        send: Vec<f32>,
    },
    /// [`CollectiveOp::AllGatherF32`] for `u32` payloads; resolves to
    /// [`CollectiveResult::U32`].
    AllGatherU32 {
        /// This rank's contribution.
        send: Vec<u32>,
    },
    /// Copies `buf` on `root` to every rank; resolves to
    /// [`CollectiveResult::F32`] with the root's buffer.
    Broadcast {
        /// Payload on the root; sized-but-arbitrary elsewhere.
        buf: Vec<f32>,
        /// Originating rank.
        root: usize,
    },
    /// Sparse all-reduce with top-k truncation; resolves to
    /// [`CollectiveResult::Sparse`].
    GlobalTopk {
        /// This rank's sparse coordinate indices.
        indices: Vec<u32>,
        /// This rank's values, parallel to `indices`.
        values: Vec<f32>,
        /// Number of coordinates to keep globally.
        k: usize,
    },
    /// Pairwise exchange with `peer` (both sides must submit it); resolves
    /// to [`CollectiveResult::F32`] with the peer's buffer.
    SendRecvF32 {
        /// The partner rank.
        peer: usize,
        /// This rank's outgoing buffer.
        send: Vec<f32>,
    },
    /// Synchronization point; resolves to [`CollectiveResult::Unit`].
    Barrier,
}

impl CollectiveOp {
    /// The `(kind, words, param)` fingerprint the schedule tracer records
    /// for this operation (see [`crate::schedule`]).
    ///
    /// `words` is the element count every rank must agree on; it is 0 for
    /// [`CollectiveOp::GlobalTopk`], whose sparse payload sizes are
    /// legitimately rank-dependent (the shared contract there is `k`, the
    /// `param`). `param` encodes the shape-relevant argument: the
    /// [`ReduceOp`] for reductions, the root for broadcast, `k` for
    /// top-k. [`CollectiveOp::SendRecvF32`]'s `peer` is *excluded* — the
    /// two sides of a pairwise exchange name each other, so their peers
    /// legitimately differ.
    pub fn fingerprint(&self) -> (OpKind, u64, u64) {
        fn reduce_code(op: ReduceOp) -> u64 {
            match op {
                ReduceOp::Sum => 0,
                ReduceOp::Mean => 1,
                ReduceOp::Max => 2,
            }
        }
        match self {
            CollectiveOp::AllReduce { buf, op } => {
                (OpKind::AllReduce, buf.len() as u64, reduce_code(*op))
            }
            CollectiveOp::AllReduceRd { buf, op } => {
                (OpKind::AllReduceRd, buf.len() as u64, reduce_code(*op))
            }
            CollectiveOp::AllGatherF32 { send } => (OpKind::AllGatherF32, send.len() as u64, 0),
            CollectiveOp::AllGatherU32 { send } => (OpKind::AllGatherU32, send.len() as u64, 0),
            CollectiveOp::Broadcast { buf, root } => {
                (OpKind::Broadcast, buf.len() as u64, *root as u64)
            }
            CollectiveOp::GlobalTopk { k, .. } => (OpKind::GlobalTopk, 0, *k as u64),
            CollectiveOp::SendRecvF32 { send, .. } => (OpKind::SendRecv, send.len() as u64, 0),
            CollectiveOp::Barrier => (OpKind::Barrier, 0, 0),
        }
    }
}

/// The typed result a completed [`CollectiveOp`] resolves to.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveResult {
    /// Dense `f32` payload (all-reduce, all-gather, broadcast, exchange).
    F32(Vec<f32>),
    /// Dense `u32` payload (all-gather of indices or bit-packed signs).
    U32(Vec<u32>),
    /// Sparse (indices, values) pair from the gTop-k collective.
    Sparse(Vec<u32>, Vec<f32>),
    /// No payload (barrier).
    Unit,
}

impl CollectiveResult {
    /// Unwraps an `F32` result.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::ProtocolMismatch`] if the result holds a
    /// different payload type.
    pub fn into_f32(self) -> Result<Vec<f32>, CommError> {
        match self {
            CollectiveResult::F32(v) => Ok(v),
            _ => Err(CommError::ProtocolMismatch),
        }
    }

    /// Unwraps a `U32` result.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::ProtocolMismatch`] if the result holds a
    /// different payload type.
    pub fn into_u32(self) -> Result<Vec<u32>, CommError> {
        match self {
            CollectiveResult::U32(v) => Ok(v),
            _ => Err(CommError::ProtocolMismatch),
        }
    }

    /// Unwraps a `Sparse` result.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::ProtocolMismatch`] if the result holds a
    /// different payload type.
    pub fn into_sparse(self) -> Result<(Vec<u32>, Vec<f32>), CommError> {
        match self {
            CollectiveResult::Sparse(i, v) => Ok((i, v)),
            _ => Err(CommError::ProtocolMismatch),
        }
    }
}

enum PendingState {
    /// Resolved at dispatch time (synchronous default path).
    Ready(Result<CollectiveResult, CommError>),
    /// In flight on a comm worker; resolved by the reply channel.
    InFlight(Receiver<Result<CollectiveResult, CommError>>),
    /// Consumed by [`PendingOp::wait`] or drained by `Drop`.
    Taken,
}

/// Handle to a dispatched collective; redeem it with [`PendingOp::wait`].
///
/// Dropping a handle without waiting abandons the *result*, not the
/// operation: the comm worker still executes it (the SPMD order across
/// ranks is unaffected), and its reply is discarded. The drop *blocks*
/// until the operation completes on the worker — an error path that bails
/// out of an overlapped step therefore stays synchronous with its own comm
/// worker instead of racing ahead (tearing down the communicator, or
/// submitting the next step's collectives) while peers are still inside
/// the abandoned collective.
#[must_use = "a dispatched collective completes at `wait`; dropping the handle discards its result"]
pub struct PendingOp {
    state: PendingState,
}

impl std::fmt::Debug for PendingOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.state {
            PendingState::Ready(_) => "ready",
            PendingState::InFlight(_) => "in-flight",
            PendingState::Taken => "taken",
        };
        f.debug_struct("PendingOp").field("state", &state).finish()
    }
}

impl PendingOp {
    /// Wraps an already-computed result — the synchronous default path of
    /// [`Communicator::dispatch`], used by backends without a comm worker.
    pub fn ready(result: Result<CollectiveResult, CommError>) -> Self {
        PendingOp {
            state: PendingState::Ready(result),
        }
    }

    pub(crate) fn in_flight(rx: Receiver<Result<CollectiveResult, CommError>>) -> Self {
        PendingOp {
            state: PendingState::InFlight(rx),
        }
    }

    /// Blocks until the operation completes and returns its result.
    ///
    /// Never hangs: transport deadlines bound every receive inside the
    /// collective, so a dead or straggling peer surfaces as a structured
    /// error ([`CommError::Timeout`], [`CommError::PeerDisconnected`],
    /// [`CommError::WorkerPanicked`]) within the transport's timeout.
    ///
    /// # Errors
    ///
    /// Propagates the collective's error; a comm worker that died before
    /// replying surfaces as [`CommError::WorkerPanicked`].
    pub fn wait(mut self) -> Result<CollectiveResult, CommError> {
        match std::mem::replace(&mut self.state, PendingState::Taken) {
            PendingState::Ready(result) => result,
            // A dropped reply sender means the worker thread is gone.
            PendingState::InFlight(rx) => rx.recv().unwrap_or(Err(CommError::WorkerPanicked)),
            // allow_verify(reason = "wait takes self by value and replaces the state with Taken exactly once; only Drop sees Taken afterwards, so this arm cannot execute")
            PendingState::Taken => unreachable!("wait consumes the handle"),
        }
    }
}

impl Drop for PendingOp {
    fn drop(&mut self) {
        if let PendingState::InFlight(rx) = std::mem::replace(&mut self.state, PendingState::Taken)
        {
            // Drain the reply so the drop is synchronous with the worker
            // (see the type docs). The worker's own receives are bounded by
            // transport deadlines, so this wait terminates even with dead
            // peers; the generous cap only guards against a wedged worker
            // thread, where abandoning the reply is the lesser evil.
            let _ = rx.recv_timeout(std::time::Duration::from_secs(60));
        }
    }
}

/// Waits for every handle in submission order and collects the results.
///
/// # Errors
///
/// Returns the first error encountered; remaining handles are dropped,
/// which blocks until their operations complete on the worker (results
/// discarded) — the error return leaves no collectives still in flight.
pub fn wait_all(
    ops: impl IntoIterator<Item = PendingOp>,
) -> Result<Vec<CollectiveResult>, CommError> {
    ops.into_iter().map(PendingOp::wait).collect()
}

/// Which global top-k algorithm a transport's topology supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopkMode {
    /// The `O(k log p)` recursive-doubling merge (needs arbitrary pairs).
    #[default]
    Butterfly,
    /// Exact gather-and-truncate over two ring all-gathers (ring-only
    /// topologies).
    GatherTruncate,
}

/// A point-to-point transport that can be moved into a [`CommWorker`].
///
/// Extends [`Transport`] with the per-backend hooks the worker needs to
/// execute collectives exactly as the backend's blocking path would:
/// telemetry wiring, pre-collective fault hooks, and topology-dependent
/// algorithm selection.
pub trait WorkerTransport: Transport + Send {
    /// The telemetry recorder collective latencies and spans go to.
    fn recorder(&self) -> &RecorderHandle;

    /// Replaces the telemetry recorder (delivered to a running worker via
    /// [`CommWorker::set_recorder`]).
    fn set_recorder(&mut self, recorder: RecorderHandle);

    /// Called at the top of every collective (fault-injection hook; the
    /// TCP backend applies its straggler delay here).
    fn prepare(&mut self) {}

    /// Which global top-k algorithm this transport runs.
    fn topk_mode(&self) -> TopkMode {
        TopkMode::Butterfly
    }

    /// The rank arrangement collectives are scheduled over. All-reduce
    /// runs the two-level ring-of-rings of [`crate::hierarchy`] when this
    /// is [`Topology::TwoLevel`]; the default is the flat ring.
    fn topology(&self) -> Topology {
        Topology::flat(self.world_size())
    }

    /// The current membership (epoch + surviving physical ranks). The
    /// default reports the static launch membership.
    fn membership(&self) -> Membership {
        Membership::initial(self.world_size())
    }

    /// Rebuilds the group from the surviving ranks after a peer departure:
    /// re-detects who is alive, re-derives ring/virtual ranks, bumps the
    /// membership epoch, folds the new membership into the schedule digest
    /// and cross-checks digest agreement among survivors. Collective —
    /// every survivor must call it at the same schedule position.
    ///
    /// # Errors
    ///
    /// The default implementation reports that the backend is not elastic.
    fn reform(&mut self) -> Result<Membership, CommError> {
        Err(CommError::Io(
            "this transport does not support membership reform".to_string(),
        ))
    }

    /// The transport's collective-schedule tracer, if it records one (see
    /// [`crate::schedule`]). [`execute_collective`] advances it once per
    /// collective; transports with a tracer should also tag/verify wire
    /// messages when its mode is
    /// [`VerifyMode::CrossCheck`](crate::schedule::VerifyMode::CrossCheck).
    fn tracer(&mut self) -> Option<&mut ScheduleTracer> {
        None
    }
}

/// Emits the per-collective telemetry every backend records: one
/// [`keys::COMM_CALLS`] tick, a latency observation under `key`, a payload
/// size under `bytes_key` (index-parallel with the latency series — the
/// pairing the α–β calibration fit relies on), and a span on `track`'s
/// timeline.
fn record_collective(
    rec: &RecorderHandle,
    track: u64,
    name: &'static str,
    key: &'static str,
    bytes_key: &'static str,
    bytes: u64,
    start_us: u64,
) {
    if !rec.enabled() {
        return;
    }
    let end_us = rec.now_us();
    rec.add(keys::COMM_CALLS, 1);
    rec.observe(key, end_us.saturating_sub(start_us) as f64);
    rec.observe(bytes_key, bytes as f64);
    rec.span(Span {
        name,
        cat: keys::CAT_COMM,
        track,
        start_us,
        end_us,
    });
}

/// Exact global top-k over two all-gathers: sum contributions per
/// coordinate, keep the `k` largest magnitudes (the [`Communicator`]
/// trait's default algorithm, shared here with ring-topology transports).
fn gather_truncate_topk<T: Transport + ?Sized>(
    t: &mut T,
    indices: &[u32],
    values: &[f32],
    k: usize,
) -> Result<(Vec<u32>, Vec<f32>), CommError> {
    let gathered_idx = ring::all_gather_u32(t, indices)?;
    let gathered_val = ring::all_gather_f32(t, values)?;
    let mut map = std::collections::BTreeMap::new();
    for (&i, &v) in gathered_idx.iter().zip(&gathered_val) {
        *map.entry(i).or_insert(0.0f32) += v;
    }
    Ok(ring::truncate_topk(map, k))
}

/// Runs one collective on a transport, with the same telemetry the
/// blocking [`Communicator`] methods emit (barrier and pairwise exchange
/// stay untimed — they move no accountable payload).
///
/// This is *the* execution path for worker-backed communicators, used by
/// both their blocking methods and their dispatched operations.
///
/// # Errors
///
/// Propagates the ring algorithm's structured [`CommError`].
pub fn execute_collective<T: WorkerTransport + ?Sized>(
    t: &mut T,
    op: CollectiveOp,
) -> Result<CollectiveResult, CommError> {
    t.prepare();
    let (kind, words, param) = op.fingerprint();
    if let Some(tracer) = t.tracer() {
        tracer.begin_op(kind, words, param);
    }
    let rec = t.recorder().clone();
    let track = t.rank() as u64;
    let start_us = rec.now_us();
    let (name, key, bytes_key, bytes, result) = match op {
        CollectiveOp::AllReduce { mut buf, op } => (
            "all_reduce",
            keys::COMM_ALL_REDUCE_US,
            keys::COMM_ALL_REDUCE_BYTES,
            4 * buf.len() as u64,
            {
                // Topology-aware dispatch: two-level arrangements run the
                // ring-of-rings schedule, flat ones the classic ring.
                let topo = t.topology();
                if topo.is_flat() {
                    ring::all_reduce(t, &mut buf, op)
                } else {
                    crate::hierarchy::all_reduce_two_level(t, topo, &mut buf, op)
                }
            }
            .map(|()| CollectiveResult::F32(buf)),
        ),
        CollectiveOp::AllReduceRd { mut buf, op } => (
            "all_reduce_rd",
            keys::COMM_ALL_REDUCE_US,
            keys::COMM_ALL_REDUCE_BYTES,
            4 * buf.len() as u64,
            ring::all_reduce_recursive_doubling(t, &mut buf, op)
                .map(|()| CollectiveResult::F32(buf)),
        ),
        CollectiveOp::AllGatherF32 { send } => (
            "all_gather_f32",
            keys::COMM_ALL_GATHER_US,
            keys::COMM_ALL_GATHER_BYTES,
            4 * send.len() as u64,
            ring::all_gather_f32(t, &send).map(CollectiveResult::F32),
        ),
        CollectiveOp::AllGatherU32 { send } => (
            "all_gather_u32",
            keys::COMM_ALL_GATHER_US,
            keys::COMM_ALL_GATHER_BYTES,
            4 * send.len() as u64,
            ring::all_gather_u32(t, &send).map(CollectiveResult::U32),
        ),
        CollectiveOp::Broadcast { mut buf, root } => (
            "broadcast",
            keys::COMM_BROADCAST_US,
            keys::COMM_BROADCAST_BYTES,
            4 * buf.len() as u64,
            ring::broadcast(t, &mut buf, root).map(|()| CollectiveResult::F32(buf)),
        ),
        CollectiveOp::GlobalTopk { indices, values, k } => (
            "global_topk",
            keys::COMM_GLOBAL_TOPK_US,
            keys::COMM_GLOBAL_TOPK_BYTES,
            // (index, value) pairs this rank contributes.
            8 * indices.len() as u64,
            match t.topk_mode() {
                TopkMode::Butterfly => ring::global_topk_butterfly(t, &indices, &values, k),
                TopkMode::GatherTruncate => gather_truncate_topk(t, &indices, &values, k),
            }
            .map(|(i, v)| CollectiveResult::Sparse(i, v)),
        ),
        CollectiveOp::SendRecvF32 { peer, send } => {
            return ring::send_recv_f32(t, peer, &send).map(CollectiveResult::F32);
        }
        CollectiveOp::Barrier => {
            return ring::barrier(t).map(|()| CollectiveResult::Unit);
        }
    };
    record_collective(&rec, track, name, key, bytes_key, bytes, start_us);
    result
}

/// Runs one collective through a communicator's *blocking* trait methods —
/// the synchronous fallback behind [`Communicator::dispatch`]'s default
/// implementation, for backends without a comm worker.
///
/// # Errors
///
/// Propagates the blocking collective's error. [`CollectiveOp::AllReduceRd`]
/// and [`CollectiveOp::SendRecvF32`] need transport-level pairwise exchange
/// and surface [`CommError::ProtocolMismatch`] here.
pub fn execute_via_blocking<C: Communicator + ?Sized>(
    comm: &mut C,
    op: CollectiveOp,
) -> Result<CollectiveResult, CommError> {
    match op {
        CollectiveOp::AllReduce { mut buf, op } => {
            comm.all_reduce(&mut buf, op)?;
            Ok(CollectiveResult::F32(buf))
        }
        CollectiveOp::AllGatherF32 { send } => {
            comm.all_gather_f32(&send).map(CollectiveResult::F32)
        }
        CollectiveOp::AllGatherU32 { send } => {
            comm.all_gather_u32(&send).map(CollectiveResult::U32)
        }
        CollectiveOp::Broadcast { mut buf, root } => {
            comm.broadcast(&mut buf, root)?;
            Ok(CollectiveResult::F32(buf))
        }
        CollectiveOp::GlobalTopk { indices, values, k } => comm
            .global_topk(&indices, &values, k)
            .map(|(i, v)| CollectiveResult::Sparse(i, v)),
        CollectiveOp::Barrier => {
            comm.barrier()?;
            Ok(CollectiveResult::Unit)
        }
        CollectiveOp::AllReduceRd { .. } | CollectiveOp::SendRecvF32 { .. } => {
            Err(CommError::ProtocolMismatch)
        }
    }
}

enum WorkerMsg {
    Op {
        op: CollectiveOp,
        reply: Sender<Result<CollectiveResult, CommError>>,
    },
    SetRecorder(RecorderHandle),
    Reform {
        reply: Sender<Result<Membership, CommError>>,
    },
}

/// Handle to a per-rank comm worker thread that owns a transport and
/// drains submitted collectives in FIFO order.
///
/// Dropping the handle closes the submission channel; the worker finishes
/// in-flight operations, then exits and drops the transport (releasing its
/// links/channels, which is what peers observe as a clean departure).
pub struct CommWorker {
    tx: Sender<WorkerMsg>,
}

impl std::fmt::Debug for CommWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommWorker").finish_non_exhaustive()
    }
}

impl CommWorker {
    /// Moves `transport` into a new worker thread and returns the
    /// submission handle.
    pub fn spawn<T: WorkerTransport + 'static>(mut transport: T) -> CommWorker {
        let (tx, rx) = unbounded::<WorkerMsg>();
        std::thread::Builder::new()
            .name(format!("acp-comm-{}", transport.rank()))
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        WorkerMsg::Op { op, reply } => {
                            let result = execute_collective(&mut transport, op);
                            // The submitter may have dropped its handle;
                            // the operation still ran, keeping SPMD order.
                            let _ = reply.send(result);
                        }
                        WorkerMsg::SetRecorder(recorder) => transport.set_recorder(recorder),
                        WorkerMsg::Reform { reply } => {
                            let _ = reply.send(transport.reform());
                        }
                    }
                }
            })
            // allow_verify(reason = "thread spawn fails only on OS resource exhaustion at startup; no collective is in flight yet")
            .expect("spawn comm worker thread");
        CommWorker { tx }
    }

    /// Enqueues one collective and returns its handle.
    pub fn submit(&self, op: CollectiveOp) -> PendingOp {
        let (reply, rx) = unbounded();
        match self.tx.send(WorkerMsg::Op { op, reply }) {
            Ok(()) => PendingOp::in_flight(rx),
            // The worker is gone; resolve immediately instead of hanging.
            Err(_) => PendingOp::ready(Err(CommError::WorkerPanicked)),
        }
    }

    /// Forwards a recorder swap to the worker (applied after the
    /// operations already in its queue, like any other submission).
    pub fn set_recorder(&self, recorder: RecorderHandle) {
        let _ = self.tx.send(WorkerMsg::SetRecorder(recorder));
    }

    /// Asks the worker to reform the group from the surviving ranks (see
    /// [`WorkerTransport::reform`]). FIFO with submitted collectives, so
    /// every operation enqueued before the reform still runs (or fails)
    /// against the old membership.
    ///
    /// # Errors
    ///
    /// Propagates the transport's reform error; a dead worker surfaces as
    /// [`CommError::WorkerPanicked`].
    pub fn reform(&self) -> Result<Membership, CommError> {
        let (reply, rx) = unbounded();
        if self.tx.send(WorkerMsg::Reform { reply }).is_err() {
            return Err(CommError::WorkerPanicked);
        }
        // Reform re-establishes links with bounded dials/accepts; the cap
        // only guards a wedged worker.
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .unwrap_or(Err(CommError::WorkerPanicked))
    }
}
