//! Hierarchical (ring-of-rings) collectives over a two-level [`Topology`].
//!
//! The NCCL-style two-level all-reduce for `G` groups of `s` ranks:
//!
//! 1. **Intra-group reduce-scatter** — a ring reduce-scatter inside each
//!    group over `s` chunks; after `s−1` steps the rank at position `j`
//!    owns its group's partial reduction of chunk `(j+1) mod s`.
//! 2. **Cross-group all-reduce** — the `G` ranks sharing a position form
//!    an outer ring and all-reduce their owned chunk (ring reduce-scatter
//!    plus ring all-gather over `G` sub-chunks).
//! 3. **Intra-group all-gather** — a ring all-gather inside each group
//!    redistributes the `s` fully reduced chunks.
//!
//! Per-rank volume stays the bandwidth-optimal `2(p−1)/p·N` shape, but the
//! latency splits into `2(s−1)` intra-group terms and `2(G−1)` cross-group
//! terms — the trade the Table II cost model prices via
//! [`TwoLevelCost`](crate::cost::TwoLevelCost), and the reason hierarchy
//! wins when cross-group links have WAN-class α.
//!
//! Like everything in [`crate::ring`], the algorithm is generic over
//! [`Transport`], so the thread and TCP backends are bit-exact with *each
//! other* by construction. Against the flat ring the reduction *tree*
//! differs, so general floats agree only to round-off; for exactly
//! representable sums (integer-valued f32 within 2²⁴) the results are
//! bitwise identical under any association, which is what the
//! flat-vs-hierarchical proptests pin.

use crate::communicator::{CommError, ReduceOp};
use crate::ring::{chunk_range, recv_f32, reduce_into, Transport};
use crate::topology::{RankId, Topology};

/// The four ring neighbours of a rank in a two-level arrangement.
struct Neighbours {
    /// Next rank on the intra-group ring.
    intra_next: usize,
    /// Previous rank on the intra-group ring.
    intra_prev: usize,
    /// Next same-position rank on the cross-group ring.
    cross_next: usize,
    /// Previous same-position rank on the cross-group ring.
    cross_prev: usize,
}

fn neighbours(topo: &Topology, rank: usize) -> Neighbours {
    let s = topo.group_size();
    let g_count = topo.groups();
    let g = topo.group_of(RankId(rank)).as_usize();
    let j = topo.position_in_group(RankId(rank));
    Neighbours {
        intra_next: g * s + (j + 1) % s,
        intra_prev: g * s + (j + s - 1) % s,
        cross_next: ((g + 1) % g_count) * s + j,
        cross_prev: ((g + g_count - 1) % g_count) * s + j,
    }
}

/// Two-level ring-of-rings all-reduce; falls back to the flat ring when
/// `topo` is flat or degenerate. `Mean` divides once by the total world at
/// the end, like the flat ring.
///
/// Requires a transport where the four ring neighbours are reachable
/// (full mesh, or the thread backend's implicit mesh); the TCP backend
/// upgrades its wiring to `Wiring::FullMesh` when configured two-level.
///
/// # Errors
///
/// Returns an error on disconnect, timeout, or inconsistent buffer
/// lengths; a topology that does not match `t.world_size()` is a
/// [`CommError::ProtocolMismatch`].
pub fn all_reduce_two_level<T: Transport + ?Sized>(
    t: &mut T,
    topo: Topology,
    buf: &mut [f32],
    op: ReduceOp,
) -> Result<(), CommError> {
    let p = t.world_size();
    if topo.world_size() != p {
        return Err(CommError::ProtocolMismatch);
    }
    let s = topo.group_size();
    let g_count = topo.groups();
    if topo.is_flat() || s == 1 || g_count == 1 {
        return crate::ring::all_reduce(t, buf, op);
    }
    let r = t.rank();
    let j = topo.position_in_group(RankId(r));
    let g = topo.group_of(RankId(r)).as_usize();
    let n = neighbours(&topo, r);
    let len = buf.len();
    // Reductions run as Sum/Max; Mean divides once by the full world at
    // the end so the result matches the flat ring's convention.
    let phase_op = match op {
        ReduceOp::Mean => ReduceOp::Sum,
        other => other,
    };

    // Phase 1: intra-group ring reduce-scatter over s chunks. After s-1
    // steps position j owns the group-partial chunk (j+1) mod s.
    for step in 0..s - 1 {
        let send_idx = (j + s - step) % s;
        let recv_idx = (j + s - step - 1) % s;
        t.send_f32s(n.intra_next, &buf[chunk_range(len, send_idx, s)])?;
        let recv_range = chunk_range(len, recv_idx, s);
        let incoming = recv_f32(t, n.intra_prev, recv_range.len())?;
        reduce_into(&mut buf[recv_range], &incoming, phase_op);
    }
    let owned = (j + 1) % s;
    let owned_range = chunk_range(len, owned, s);

    // Phase 2: cross-group ring all-reduce of the owned chunk among the
    // G same-position ranks; this rank's outer-ring position is g.
    {
        let sub = &mut buf[owned_range.clone()];
        let m = sub.len();
        for step in 0..g_count - 1 {
            let send_idx = (g + g_count - step) % g_count;
            let recv_idx = (g + g_count - step - 1) % g_count;
            t.send_f32s(n.cross_next, &sub[chunk_range(m, send_idx, g_count)])?;
            let recv_range = chunk_range(m, recv_idx, g_count);
            let incoming = recv_f32(t, n.cross_prev, recv_range.len())?;
            reduce_into(&mut sub[recv_range], &incoming, phase_op);
        }
        for step in 0..g_count - 1 {
            let send_idx = (g + 1 + g_count - step) % g_count;
            let recv_idx = (g + g_count - step) % g_count;
            t.send_f32s(n.cross_next, &sub[chunk_range(m, send_idx, g_count)])?;
            let recv_range = chunk_range(m, recv_idx, g_count);
            let incoming = recv_f32(t, n.cross_prev, recv_range.len())?;
            sub[recv_range].copy_from_slice(&incoming);
        }
    }

    // Phase 3: intra-group ring all-gather of the s reduced chunks,
    // starting from the chunk each position owns.
    for step in 0..s - 1 {
        let send_idx = (j + 1 + s - step) % s;
        let recv_idx = (j + s - step) % s;
        t.send_f32s(n.intra_next, &buf[chunk_range(len, send_idx, s)])?;
        let recv_range = chunk_range(len, recv_idx, s);
        let incoming = recv_f32(t, n.intra_prev, recv_range.len())?;
        buf[recv_range].copy_from_slice(&incoming);
    }

    if op == ReduceOp::Mean {
        let inv = 1.0 / p as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }
    Ok(())
}
