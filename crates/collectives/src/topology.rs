//! Topology and membership: which ranks exist and how they are arranged.
//!
//! The paper's testbed is a flat 8–32-GPU ring, and until this module the
//! whole stack hard-wired that assumption: ranks were bare `usize`s and the
//! only schedule was one ring over `0..world`. Pricing worlds of 128–1024
//! ranks (ROADMAP north star) needs the NCCL-style two-level schedule —
//! reduce-scatter inside a group, cross-group all-reduce of the owned
//! chunks, all-gather back out — which trades `2(p−1)` latency terms on the
//! slow links for `2(G−1)` cross-group plus `2(s−1)` intra-group ones.
//!
//! This module owns the vocabulary for that:
//!
//! * [`RankId`] / [`GroupId`] — newtypes so rank arithmetic cannot be
//!   silently mixed with element counts (a `cargo xtask lint` rule bans raw
//!   `usize` rank arithmetic outside this crate);
//! * [`Topology`] — flat ring vs. [`Topology::TwoLevel`], with a builder
//!   and a validated `groups × group_size` factorization;
//! * [`Membership`] — the *elastic* part: an epoch plus the sorted physical
//!   ranks still present. When a rank dies mid-collective the communicator
//!   surfaces [`CommError::MembershipChanged`](crate::CommError::MembershipChanged)
//!   and `reform()` rebuilds the ring from the survivors, bumping the epoch
//!   and folding the new membership into the schedule digest so re-formed
//!   schedules provably agree (see `DESIGN.md` §"Topology & membership").

use std::fmt;

/// A rank's identity within a group, distinct from buffer lengths and
/// other `usize`s by construction.
///
/// After a [`Membership`] reform this is the *virtual* rank — the position
/// in the surviving ring — which may differ from the physical rank the
/// process was launched with.
// The derived `PartialOrd` delegates to `usize` — a total order, so the
// float-comparator ban does not apply.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RankId(pub usize);

impl RankId {
    /// The underlying index, for interop with APIs that still take `usize`.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

impl From<usize> for RankId {
    fn from(r: usize) -> Self {
        RankId(r)
    }
}

/// A group's identity within a [`Topology::TwoLevel`] arrangement.
// Total order on `usize`, as for `RankId`.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub usize);

impl GroupId {
    /// The underlying index.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

impl From<usize> for GroupId {
    fn from(g: usize) -> Self {
        GroupId(g)
    }
}

/// How the ranks of a group are arranged for collective scheduling.
///
/// Construct with [`Topology::flat`], [`Topology::two_level`],
/// [`Topology::grouped`] or the [`builder`](Topology::builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// One ring over all ranks — the paper's testbed layout.
    Flat {
        /// Number of ranks.
        world: usize,
    },
    /// `groups` rings of `group_size` ranks each, reduced hierarchically:
    /// intra-group reduce-scatter, cross-group all-reduce of the owned
    /// chunk, intra-group all-gather. Rank `r` belongs to group
    /// `r / group_size` at position `r % group_size`.
    TwoLevel {
        /// Number of groups (the outer ring).
        groups: usize,
        /// Ranks per group (the inner rings).
        group_size: usize,
    },
}

impl Topology {
    /// A flat ring over `world` ranks.
    pub fn flat(world: usize) -> Topology {
        Topology::Flat { world }
    }

    /// A validated two-level arrangement of `groups × group_size` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyGroup`] when either factor is zero.
    pub fn two_level(groups: usize, group_size: usize) -> Result<Topology, TopologyError> {
        if groups == 0 || group_size == 0 {
            return Err(TopologyError::EmptyGroup { groups, group_size });
        }
        Ok(if groups == 1 {
            // One group of everything *is* a flat ring; normalizing here
            // keeps fingerprints and dispatch canonical.
            Topology::Flat { world: group_size }
        } else {
            Topology::TwoLevel { groups, group_size }
        })
    }

    /// Splits `world` ranks into `groups` equal groups.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::IndivisibleWorld`] when `world` is not a
    /// multiple of `groups`, or [`TopologyError::EmptyGroup`] on zeroes.
    pub fn grouped(world: usize, groups: usize) -> Result<Topology, TopologyError> {
        if groups == 0 || world == 0 {
            return Err(TopologyError::EmptyGroup {
                groups,
                group_size: world,
            });
        }
        if !world.is_multiple_of(groups) {
            return Err(TopologyError::IndivisibleWorld { world, groups });
        }
        Topology::two_level(groups, world / groups)
    }

    /// A builder in the style of the crate's config builders.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        match *self {
            Topology::Flat { world } => world,
            Topology::TwoLevel { groups, group_size } => groups * group_size,
        }
    }

    /// Number of groups (1 for a flat ring).
    pub fn groups(&self) -> usize {
        match *self {
            Topology::Flat { .. } => 1,
            Topology::TwoLevel { groups, .. } => groups,
        }
    }

    /// Ranks per group (the whole world for a flat ring).
    pub fn group_size(&self) -> usize {
        match *self {
            Topology::Flat { world } => world,
            Topology::TwoLevel { group_size, .. } => group_size,
        }
    }

    /// Whether this is a single flat ring.
    pub fn is_flat(&self) -> bool {
        matches!(self, Topology::Flat { .. })
    }

    /// The group containing `rank`.
    pub fn group_of(&self, rank: RankId) -> GroupId {
        GroupId(rank.0 / self.group_size())
    }

    /// `rank`'s position within its group's inner ring.
    pub fn position_in_group(&self, rank: RankId) -> usize {
        rank.0 % self.group_size()
    }

    /// The rank at `position` within `group`.
    pub fn rank_at(&self, group: GroupId, position: usize) -> RankId {
        RankId(group.0 * self.group_size() + position)
    }

    /// A stable fingerprint of the arrangement, folded into schedule
    /// digests so a flat and a two-level schedule over the same world can
    /// never be confused by the verifier.
    pub fn fingerprint(&self) -> u64 {
        match *self {
            Topology::Flat { world } => 0x01u64 ^ (world as u64) << 8,
            Topology::TwoLevel { groups, group_size } => {
                0x02u64 ^ (groups as u64) << 8 ^ (group_size as u64) << 32
            }
        }
    }

    /// Parses a launcher group spec for `world` ranks: either a group
    /// count (`"2"`) or an explicit `groups x group_size` factorization
    /// (`"2x4"`).
    ///
    /// # Errors
    ///
    /// Returns a structured [`TopologyError`] (never panics) when the spec
    /// is malformed or inconsistent with `world`.
    pub fn parse_spec(world: usize, spec: &str) -> Result<Topology, TopologyError> {
        let bad = || TopologyError::BadSpec {
            spec: spec.to_string(),
        };
        let spec = spec.trim();
        if let Some((g, s)) = spec.split_once(['x', 'X']) {
            let groups: usize = g.trim().parse().map_err(|_| bad())?;
            let group_size: usize = s.trim().parse().map_err(|_| bad())?;
            if groups == 0 || group_size == 0 {
                return Err(TopologyError::EmptyGroup { groups, group_size });
            }
            if groups * group_size != world {
                return Err(TopologyError::WorldMismatch {
                    world,
                    groups,
                    group_size,
                });
            }
            Topology::two_level(groups, group_size)
        } else {
            let groups: usize = spec.parse().map_err(|_| bad())?;
            Topology::grouped(world, groups)
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::Flat { world } => write!(f, "flat ring of {world}"),
            Topology::TwoLevel { groups, group_size } => {
                write!(f, "{groups} groups \u{d7} {group_size} ranks")
            }
        }
    }
}

/// Builder for [`Topology`], consistent with the crate's config builders.
///
/// ```
/// use acp_collectives::Topology;
///
/// let topo = Topology::builder().world(8).groups(2).build().unwrap();
/// assert_eq!(topo.groups(), 2);
/// assert_eq!(topo.group_size(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TopologyBuilder {
    world: Option<usize>,
    groups: Option<usize>,
    group_size: Option<usize>,
}

impl TopologyBuilder {
    /// Sets the total number of ranks.
    pub fn world(mut self, world: usize) -> Self {
        self.world = Some(world);
        self
    }

    /// Sets the number of groups.
    pub fn groups(mut self, groups: usize) -> Self {
        self.groups = Some(groups);
        self
    }

    /// Sets the ranks-per-group factor.
    pub fn group_size(mut self, group_size: usize) -> Self {
        self.group_size = Some(group_size);
        self
    }

    /// Builds the topology, deriving the missing factor where possible.
    ///
    /// # Errors
    ///
    /// Returns a structured [`TopologyError`] on inconsistent or
    /// under-specified factors.
    pub fn build(self) -> Result<Topology, TopologyError> {
        match (self.world, self.groups, self.group_size) {
            (Some(w), None, None) => {
                if w == 0 {
                    return Err(TopologyError::EmptyGroup {
                        groups: 1,
                        group_size: 0,
                    });
                }
                Ok(Topology::flat(w))
            }
            (Some(w), Some(g), None) => Topology::grouped(w, g),
            (Some(w), None, Some(s)) => {
                if s == 0 {
                    return Err(TopologyError::EmptyGroup {
                        groups: 0,
                        group_size: s,
                    });
                }
                if w % s != 0 {
                    return Err(TopologyError::IndivisibleWorld {
                        world: w,
                        groups: s,
                    });
                }
                Topology::two_level(w / s, s)
            }
            (world, Some(g), Some(s)) => {
                if let Some(w) = world {
                    if g * s != w {
                        return Err(TopologyError::WorldMismatch {
                            world: w,
                            groups: g,
                            group_size: s,
                        });
                    }
                }
                Topology::two_level(g, s)
            }
            (None, _, _) => Err(TopologyError::MissingWorld),
        }
    }
}

/// Why a [`Topology`] could not be constructed. Structured (not a panic)
/// so launchers can report inconsistent group specs to the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A zero group count or group size.
    EmptyGroup {
        /// Requested group count.
        groups: usize,
        /// Requested group size.
        group_size: usize,
    },
    /// `world` ranks cannot be split into `groups` equal groups.
    IndivisibleWorld {
        /// Total ranks.
        world: usize,
        /// Requested group count.
        groups: usize,
    },
    /// An explicit `groups × group_size` that disagrees with the world.
    WorldMismatch {
        /// Total ranks.
        world: usize,
        /// Requested group count.
        groups: usize,
        /// Requested group size.
        group_size: usize,
    },
    /// The builder was not told the world size (nor both factors).
    MissingWorld,
    /// An unparseable group spec string.
    BadSpec {
        /// The offending spec.
        spec: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyGroup { groups, group_size } => write!(
                f,
                "topology must have at least one group and one rank per group \
                 (got {groups} groups \u{d7} {group_size})"
            ),
            TopologyError::IndivisibleWorld { world, groups } => write!(
                f,
                "world size {world} is not divisible into {groups} equal groups"
            ),
            TopologyError::WorldMismatch {
                world,
                groups,
                group_size,
            } => write!(
                f,
                "group spec {groups}x{group_size} covers {} ranks but the world has {world}",
                groups * group_size
            ),
            TopologyError::MissingWorld => {
                f.write_str("topology builder needs a world size or both group factors")
            }
            TopologyError::BadSpec { spec } => {
                write!(f, "unparseable group spec {spec:?} (expected N or NxM)")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The set of physical ranks currently participating, plus the reform
/// epoch. Epoch 0 is the launch membership `0..world`; every successful
/// `reform()` removes the departed ranks and bumps the epoch.
///
/// Virtual rank (ring position) is the index into [`ranks`](Membership::ranks);
/// physical rank is the identity a process was launched with. They
/// coincide until the first reform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    epoch: u64,
    ranks: Vec<usize>,
}

impl Membership {
    /// The launch membership: epoch 0, ranks `0..world`.
    pub fn initial(world: usize) -> Membership {
        Membership {
            epoch: 0,
            ranks: (0..world).collect(),
        }
    }

    /// A membership from an explicit epoch and rank set (sorted and
    /// deduplicated) — for transports reconstructing state after a reform.
    pub fn from_parts(epoch: u64, mut ranks: Vec<usize>) -> Membership {
        ranks.sort_unstable();
        ranks.dedup();
        Membership { epoch, ranks }
    }

    /// Reform epoch: how many times the group has re-formed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The physical ranks still present, sorted ascending.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of surviving ranks.
    pub fn world_size(&self) -> usize {
        self.ranks.len()
    }

    /// Whether `physical` is still a member.
    pub fn contains(&self, physical: usize) -> bool {
        self.ranks.binary_search(&physical).is_ok()
    }

    /// The virtual (ring) rank of a physical rank, if still present.
    pub fn virtual_rank_of(&self, physical: usize) -> Option<RankId> {
        self.ranks.binary_search(&physical).ok().map(RankId)
    }

    /// The physical rank at virtual position `virt`, if in range.
    pub fn physical_rank_of(&self, virt: RankId) -> Option<usize> {
        self.ranks.get(virt.0).copied()
    }

    /// The membership after `departed` leave: survivors only, epoch + 1.
    pub fn without(&self, departed: &[usize]) -> Membership {
        Membership {
            epoch: self.epoch + 1,
            ranks: self
                .ranks
                .iter()
                .copied()
                .filter(|r| !departed.contains(r))
                .collect(),
        }
    }
}

impl fmt::Display for Membership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {} with {} ranks {:?}",
            self.epoch,
            self.ranks.len(),
            self.ranks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_has_one_group() {
        let t = Topology::flat(8);
        assert_eq!(t.world_size(), 8);
        assert_eq!(t.groups(), 1);
        assert_eq!(t.group_size(), 8);
        assert!(t.is_flat());
        assert_eq!(t.group_of(RankId(5)), GroupId(0));
    }

    #[test]
    fn two_level_index_math_round_trips() {
        let t = Topology::two_level(2, 4).unwrap();
        assert_eq!(t.world_size(), 8);
        for r in 0..8 {
            let rank = RankId(r);
            let g = t.group_of(rank);
            let j = t.position_in_group(rank);
            assert_eq!(t.rank_at(g, j), rank);
        }
        assert_eq!(t.group_of(RankId(5)), GroupId(1));
        assert_eq!(t.position_in_group(RankId(5)), 1);
    }

    #[test]
    fn one_group_normalizes_to_flat() {
        assert!(Topology::two_level(1, 4).unwrap().is_flat());
        assert!(Topology::grouped(4, 1).unwrap().is_flat());
    }

    #[test]
    fn grouped_rejects_indivisible_world() {
        assert_eq!(
            Topology::grouped(7, 2),
            Err(TopologyError::IndivisibleWorld {
                world: 7,
                groups: 2
            })
        );
        assert!(Topology::grouped(0, 2).is_err());
        assert!(Topology::two_level(2, 0).is_err());
    }

    #[test]
    fn builder_derives_missing_factor() {
        let t = Topology::builder().world(8).groups(2).build().unwrap();
        assert_eq!(t, Topology::two_level(2, 4).unwrap());
        let t = Topology::builder().world(8).group_size(2).build().unwrap();
        assert_eq!(t, Topology::two_level(4, 2).unwrap());
        let t = Topology::builder().groups(3).group_size(2).build().unwrap();
        assert_eq!(t.world_size(), 6);
        assert!(Topology::builder().build().is_err());
        assert!(Topology::builder()
            .world(9)
            .groups(2)
            .group_size(4)
            .build()
            .is_err());
    }

    #[test]
    fn spec_parsing_accepts_count_and_factorization() {
        assert_eq!(
            Topology::parse_spec(8, "2").unwrap(),
            Topology::two_level(2, 4).unwrap()
        );
        assert_eq!(
            Topology::parse_spec(8, "2x4").unwrap(),
            Topology::two_level(2, 4).unwrap()
        );
        assert_eq!(
            Topology::parse_spec(8, "4X2").unwrap(),
            Topology::two_level(4, 2).unwrap()
        );
        assert!(matches!(
            Topology::parse_spec(8, "3x2"),
            Err(TopologyError::WorldMismatch { .. })
        ));
        assert!(matches!(
            Topology::parse_spec(8, "nope"),
            Err(TopologyError::BadSpec { .. })
        ));
        assert!(Topology::parse_spec(8, "3").is_err());
    }

    #[test]
    fn fingerprints_distinguish_arrangements() {
        let flat = Topology::flat(8).fingerprint();
        let two = Topology::two_level(2, 4).unwrap().fingerprint();
        let four = Topology::two_level(4, 2).unwrap().fingerprint();
        assert_ne!(flat, two);
        assert_ne!(two, four);
        assert_ne!(flat, Topology::flat(9).fingerprint());
    }

    #[test]
    fn membership_reform_removes_departed_and_bumps_epoch() {
        let m = Membership::initial(4);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.ranks(), &[0, 1, 2, 3]);
        let m2 = m.without(&[2]);
        assert_eq!(m2.epoch(), 1);
        assert_eq!(m2.ranks(), &[0, 1, 3]);
        assert!(!m2.contains(2));
        assert_eq!(m2.virtual_rank_of(3), Some(RankId(2)));
        assert_eq!(m2.physical_rank_of(RankId(2)), Some(3));
        assert_eq!(m2.virtual_rank_of(2), None);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(RankId(3).to_string(), "rank3");
        assert_eq!(GroupId(1).to_string(), "group1");
        assert!(Topology::two_level(2, 4)
            .unwrap()
            .to_string()
            .contains("2 groups"));
    }
}
