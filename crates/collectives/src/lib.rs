//! Collective communication substrate for the ACP-SGD reproduction.
//!
//! The paper's entire system argument is about which collective an
//! aggregation algorithm *can* use: S-SGD, Power-SGD and ACP-SGD aggregate
//! additively and therefore use bandwidth-optimal **ring all-reduce**, while
//! Sign-SGD and Top-k SGD produce non-additive compressed payloads and fall
//! back to **all-gather**, whose received volume grows linearly with the
//! number of workers (Table II). This crate provides both sides of that
//! argument:
//!
//! * [`communicator`] — the [`Communicator`] trait plus
//!   [`ThreadGroup`]/[`ThreadCommunicator`]: *real* collectives that move
//!   data between worker threads over a ring of channels (chunked
//!   reduce-scatter + all-gather), bit-tested against naive reference
//!   reductions. The data-parallel trainer in `acp-training` runs on these.
//! * [`cost`] — α–β analytical cost models for ring all-reduce, all-gather
//!   and their start-up terms, with [`cost::NetworkTier`] presets for the
//!   paper's three interconnects (1 GbE, 10 GbE, 100 Gb InfiniBand),
//!   calibrated to the microbenchmarks quoted in the paper. The
//!   discrete-event simulator in `acp-simulator` prices every communication
//!   task with these models.
//!
//! # Examples
//!
//! ```
//! use acp_collectives::{Communicator, ReduceOp, ThreadGroup};
//!
//! // Four workers each contribute their rank; all-reduce sums them.
//! let results = ThreadGroup::run(4, |mut comm| {
//!     let mut buf = vec![comm.rank_id().as_usize() as f32; 3];
//!     comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
//!     buf
//! });
//! for buf in results {
//!     assert_eq!(buf, vec![6.0, 6.0, 6.0]); // 0 + 1 + 2 + 3
//! }
//! ```

#![warn(missing_docs)]

pub mod communicator;
pub mod cost;
pub mod hierarchy;
pub mod nonblocking;
pub mod ring;
pub mod schedule;
pub mod topology;

#[allow(deprecated)]
pub use communicator::CollectiveError; // allow_verify(reason = "deprecated re-export")
pub use communicator::{
    CommError, Communicator, LocalCommunicator, ReduceOp, ThreadCommunicator, ThreadGroup,
};
pub use cost::{AlphaBetaCost, ClusterCost, NetworkTier, TwoLevelCost};
pub use nonblocking::{
    wait_all, CollectiveOp, CollectiveResult, CommWorker, PendingOp, TopkMode, WorkerTransport,
};
pub use ring::{
    all_gather_f32_reference, all_gather_u32_reference, all_reduce_reference, Transport, WireMsg,
};
pub use schedule::{
    OpKind, ScheduleEntry, SchedulePoint, ScheduleSnapshot, ScheduleTag, ScheduleTracer, VerifyMode,
};
pub use topology::{GroupId, Membership, RankId, Topology, TopologyBuilder, TopologyError};
