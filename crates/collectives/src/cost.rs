//! Analytical α–β cost models for collective communication.
//!
//! These price the communication tasks in the discrete-event simulator and
//! encode Table II of the paper as code. The standard α–β model for a ring
//! collective over `p` workers is
//!
//! ```text
//! T_allreduce(n)  = launch + 2(p−1)·α + 2(p−1)/p · n · β
//! T_allgather(k)  = launch + (p−1)·α +  (p−1)    · k · β
//! ```
//!
//! where `α` is the per-hop message latency, `β` seconds per byte, and
//! `launch` a fixed per-operation cost (kernel launch + protocol setup).
//!
//! # Calibration
//!
//! The presets in [`NetworkTier`] are fitted to the microbenchmarks quoted
//! in the paper for its 8-node × 4-GPU 10 GbE testbed (§II-A3 and §IV-B):
//!
//! * all-reducing the unfused gradients of ResNet-50 (≈161 tensors,
//!   97.5 MB) takes 243 ms, fused into 25 MB buffers 169 ms;
//! * all-reducing ACP-SGD's compressed tensors separately takes 55.9 ms,
//!   fused 2.3 ms;
//! * two 32 KB all-reduces ≈ 2.0 ms vs one 64 KB ≈ 1.2 ms.
//!
//! With `p = 32`, `α = 8 µs`, `launch = 50 µs`, `β = 1/10 Gb/s` the model
//! reproduces the first two (246 ms / 160 ms and ≈60 ms / 2.4 ms) and is
//! within 2× of the third (which is itself inconsistent with the first two
//! under any linear model — small all-reduces partially overlap in NCCL).

use serde::{Deserialize, Serialize};

/// Per-message latency, per-byte cost and per-operation launch overhead of a
/// network tier, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaBetaCost {
    /// Per-hop message latency α (seconds).
    pub alpha: f64,
    /// Transfer cost β (seconds per byte).
    pub beta: f64,
    /// Fixed per-collective launch overhead (seconds).
    pub launch: f64,
}

impl AlphaBetaCost {
    /// Creates a cost model from bandwidth in Gb/s and latencies in seconds.
    pub fn from_bandwidth_gbps(gbps: f64, alpha: f64, launch: f64) -> Self {
        AlphaBetaCost {
            alpha,
            beta: 8.0 / (gbps * 1e9),
            launch,
        }
    }
}

impl From<acp_telemetry::FittedAlphaBeta> for AlphaBetaCost {
    /// A calibration fit from live telemetry drops in for a tier preset —
    /// the fit targets exactly the model [`ClusterCost`] evaluates, so the
    /// conversion is a plain re-labeling.
    fn from(fit: acp_telemetry::FittedAlphaBeta) -> Self {
        AlphaBetaCost {
            alpha: fit.alpha,
            beta: fit.beta,
            launch: fit.launch,
        }
    }
}

/// The three interconnects evaluated in the paper (Fig. 13), plus the
/// loopback-TCP tier of `acp-net`'s local multi-process backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkTier {
    /// Inexpensive commodity 1 Gb/s Ethernet.
    OneGbE,
    /// Ubiquitous data-center 10 Gb/s Ethernet (the paper's main testbed).
    TenGbE,
    /// High-bandwidth 100 Gb/s InfiniBand.
    HundredGbIb,
    /// Kernel loopback TCP between processes on one host — what the
    /// `acp-net` backend's `launch_local` runs over. No physical NIC:
    /// bandwidth is memcpy-limited (tens of Gb/s) and the per-message
    /// latency is the syscall + TCP-stack cost, so it behaves like a very
    /// fast, very low-launch-cost Ethernet.
    Loopback,
    /// Cross-site WAN links between data centers: respectable bandwidth
    /// but millisecond-class per-message latency. This is the tier where
    /// the flat ring's `2(p−1)·α` term collapses at large worlds and the
    /// two-level schedule (cross-group traffic only on the WAN ring) wins
    /// — the regime [`TwoLevelCost`] prices.
    Wan,
}

impl NetworkTier {
    /// The calibrated α–β parameters of this tier.
    pub fn cost(self) -> AlphaBetaCost {
        match self {
            // Ethernet latencies dominated by kernel/TCP stack; InfiniBand
            // uses RDMA with much lower per-message cost.
            NetworkTier::OneGbE => AlphaBetaCost::from_bandwidth_gbps(1.0, 10e-6, 50e-6),
            NetworkTier::TenGbE => AlphaBetaCost::from_bandwidth_gbps(10.0, 8e-6, 50e-6),
            // The paper's testbed has no GPUDirect RDMA (RTX 2080 Ti over
            // PCIe 3.0): NCCL's effective all-reduce algorithm bandwidth on
            // the 100 Gb/s fabric is host-memory/PCIe limited to ≈30 Gb/s,
            // which is what lets ACP-SGD still beat S-SGD by ~40% on
            // BERT-Base over InfiniBand (Fig. 13).
            NetworkTier::HundredGbIb => AlphaBetaCost::from_bandwidth_gbps(30.0, 1.5e-6, 20e-6),
            // Loopback moves bytes through the kernel, not a NIC: ~40 Gb/s
            // effective for framed streams, ~5 µs per message (two
            // syscalls + scheduler wakeup), negligible launch cost since
            // there is no device handshake.
            NetworkTier::Loopback => AlphaBetaCost::from_bandwidth_gbps(40.0, 5e-6, 5e-6),
            // Inter-region fiber: ~5 Gb/s effective per flow, ~1.5 ms
            // one-way latency (hundreds of km + routing), launch dominated
            // by connection management.
            NetworkTier::Wan => AlphaBetaCost::from_bandwidth_gbps(5.0, 1.5e-3, 100e-6),
        }
    }

    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            NetworkTier::OneGbE => "1GbE",
            NetworkTier::TenGbE => "10GbE",
            NetworkTier::HundredGbIb => "100GbIB",
            NetworkTier::Loopback => "loopback",
            NetworkTier::Wan => "WAN",
        }
    }
}

impl std::fmt::Display for NetworkTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Communication cost calculator for a cluster of `p` workers on a network
/// tier.
///
/// # Examples
///
/// ```
/// use acp_collectives::{ClusterCost, NetworkTier};
///
/// let cluster = ClusterCost::new(32, NetworkTier::TenGbE);
/// // Fused 25 MB all-reduce: bandwidth-dominated.
/// let t = cluster.all_reduce_time(25 * 1024 * 1024);
/// assert!(t > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCost {
    workers: usize,
    cost: AlphaBetaCost,
}

impl ClusterCost {
    /// Creates the cost model for `workers` ranks on `tier`.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize, tier: NetworkTier) -> Self {
        assert!(workers > 0, "cluster must have at least one worker");
        ClusterCost {
            workers,
            cost: tier.cost(),
        }
    }

    /// Creates a cost model with explicit α–β parameters.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn with_cost(workers: usize, cost: AlphaBetaCost) -> Self {
        assert!(workers > 0, "cluster must have at least one worker");
        ClusterCost { workers, cost }
    }

    /// Number of workers `p`.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The underlying α–β parameters.
    pub fn alpha_beta(&self) -> AlphaBetaCost {
        self.cost
    }

    /// Wall-clock seconds for a ring all-reduce of `bytes` payload.
    ///
    /// `launch + 2(p−1)·α + 2(p−1)/p · bytes · β`; zero-sized payloads still
    /// pay the launch cost. A single worker pays nothing.
    pub fn all_reduce_time(&self, bytes: usize) -> f64 {
        let p = self.workers as f64;
        if self.workers == 1 {
            return 0.0;
        }
        self.cost.launch
            + 2.0 * (p - 1.0) * self.cost.alpha
            + 2.0 * (p - 1.0) / p * bytes as f64 * self.cost.beta
    }

    /// Wall-clock seconds for a ring all-gather where every rank contributes
    /// `bytes_per_rank`.
    ///
    /// `launch + (p−1)·α + (p−1) · bytes_per_rank · β`.
    pub fn all_gather_time(&self, bytes_per_rank: usize) -> f64 {
        let p = self.workers as f64;
        if self.workers == 1 {
            return 0.0;
        }
        self.cost.launch + (p - 1.0) * (self.cost.alpha + bytes_per_rank as f64 * self.cost.beta)
    }

    /// Per-rank transmitted bytes of a ring all-reduce (Table II row
    /// "Communicate" for S-SGD / Power-SGD): `2(p−1)/p · bytes`.
    pub fn all_reduce_volume(&self, bytes: usize) -> f64 {
        let p = self.workers as f64;
        2.0 * (p - 1.0) / p * bytes as f64
    }

    /// Per-rank transmitted bytes of an all-gather (Table II row for
    /// Sign-SGD / Top-k SGD): `(p−1) · bytes_per_rank`.
    pub fn all_gather_volume(&self, bytes_per_rank: usize) -> f64 {
        (self.workers as f64 - 1.0) * bytes_per_rank as f64
    }

    /// Wall-clock seconds for a recursive-doubling all-reduce of `bytes`:
    /// `launch + ⌈log₂ p⌉ (α + bytes·β)` — latency-optimal, preferable to
    /// the ring for small payloads (the regime tensor fusion addresses).
    pub fn recursive_doubling_time(&self, bytes: usize) -> f64 {
        if self.workers == 1 {
            return 0.0;
        }
        let rounds = (self.workers as f64).log2().ceil();
        self.cost.launch + rounds * (self.cost.alpha + bytes as f64 * self.cost.beta)
    }

    /// Wall-clock seconds for the gTop-k sparse all-reduce collective:
    /// `⌈log₂ p⌉` rounds, each exchanging `k` (index, value) pairs —
    /// `launch + log₂(p)(α + 8k·β)`. Contrast with Top-k's all-gather,
    /// whose received volume grows linearly in `p`.
    pub fn gtopk_time(&self, k: usize) -> f64 {
        if self.workers == 1 {
            return 0.0;
        }
        let rounds = (self.workers as f64).log2().ceil();
        self.cost.launch + rounds * (self.cost.alpha + (8 * k) as f64 * self.cost.beta)
    }

    /// Time for the naive flat (non-ring) reduce+broadcast used when a
    /// method cannot pipeline — retained for the start-up cost comparisons.
    pub fn flat_all_reduce_time(&self, bytes: usize) -> f64 {
        let p = self.workers as f64;
        if self.workers == 1 {
            return 0.0;
        }
        // Reduce to root then broadcast: 2 (p-1) sequential messages of the
        // full payload.
        self.cost.launch + 2.0 * (p - 1.0) * (self.cost.alpha + bytes as f64 * self.cost.beta)
    }
}

/// Cost model for the two-level ring-of-rings all-reduce of
/// [`crate::hierarchy`]: `G` groups of `s` ranks, intra-group traffic on
/// one tier (e.g. intra-site 10 GbE) and cross-group traffic on another
/// (e.g. WAN).
///
/// ```text
/// T = launch + 2(s−1)·(α_i + n/s·β_i)                 intra RS + AG
///            + 2(G−1)·α_c + 2(G−1)/G · n/s · β_c      cross all-reduce
/// ```
///
/// The flat ring over the same `p = G·s` ranks pays `2(p−1)` latency terms
/// on the *slow* tier; the hierarchy pays only `2(G−1)` there, which is
/// why it wins at world ≥ 128 on WAN-class cross links (the
/// `BENCH_hierarchy` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoLevelCost {
    groups: usize,
    group_size: usize,
    intra: AlphaBetaCost,
    cross: AlphaBetaCost,
}

impl TwoLevelCost {
    /// Creates the hierarchical model for `topo` with per-tier parameters.
    ///
    /// # Panics
    ///
    /// Panics if `topo` covers zero ranks.
    pub fn new(topo: crate::Topology, intra: AlphaBetaCost, cross: AlphaBetaCost) -> Self {
        assert!(
            topo.world_size() > 0,
            "cluster must have at least one worker"
        );
        TwoLevelCost {
            groups: topo.groups(),
            group_size: topo.group_size(),
            intra,
            cross,
        }
    }

    /// Convenience constructor from [`NetworkTier`] presets.
    ///
    /// # Panics
    ///
    /// Panics if `topo` covers zero ranks.
    pub fn from_tiers(topo: crate::Topology, intra: NetworkTier, cross: NetworkTier) -> Self {
        TwoLevelCost::new(topo, intra.cost(), cross.cost())
    }

    /// Total number of ranks `G·s`.
    pub fn workers(&self) -> usize {
        self.groups * self.group_size
    }

    /// Wall-clock seconds for the two-level all-reduce of `bytes` payload.
    ///
    /// Degenerate shapes collapse to the flat ring on the matching tier: a
    /// single group is an intra-tier ring, groups of one an all-cross ring.
    pub fn all_reduce_time(&self, bytes: usize) -> f64 {
        let (g, s) = (self.groups as f64, self.group_size as f64);
        if self.workers() == 1 {
            return 0.0;
        }
        if self.groups == 1 {
            return ClusterCost::with_cost(self.group_size, self.intra).all_reduce_time(bytes);
        }
        if self.group_size == 1 {
            return ClusterCost::with_cost(self.groups, self.cross).all_reduce_time(bytes);
        }
        // Each intra step moves one of the s chunks: n/s bytes.
        let chunk = bytes as f64 / s;
        let intra = 2.0 * (s - 1.0) * (self.intra.alpha + chunk * self.intra.beta);
        let cross =
            2.0 * (g - 1.0) * self.cross.alpha + 2.0 * (g - 1.0) / g * chunk * self.cross.beta;
        self.intra.launch.max(self.cross.launch) + intra + cross
    }

    /// Per-rank transmitted bytes: `2(s−1)/s·n` intra plus `2(G−1)/G·n/s`
    /// cross — the hierarchy moves strictly less on the slow tier than the
    /// flat ring's `2(p−1)/p·n`.
    pub fn cross_volume(&self, bytes: usize) -> f64 {
        let g = self.groups as f64;
        if self.groups == 1 {
            return 0.0;
        }
        2.0 * (g - 1.0) / g * bytes as f64 / self.group_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1024 * 1024;

    fn cluster32() -> ClusterCost {
        ClusterCost::new(32, NetworkTier::TenGbE)
    }

    #[test]
    fn single_worker_costs_nothing() {
        let c = ClusterCost::new(1, NetworkTier::TenGbE);
        assert_eq!(c.all_reduce_time(MB), 0.0);
        assert_eq!(c.all_gather_time(MB), 0.0);
    }

    #[test]
    fn all_reduce_time_is_monotone_in_bytes() {
        let c = cluster32();
        assert!(c.all_reduce_time(2 * MB) > c.all_reduce_time(MB));
        assert!(c.all_reduce_time(MB) > c.all_reduce_time(0));
        assert!(
            c.all_reduce_time(0) > 0.0,
            "zero payload still pays startup"
        );
    }

    #[test]
    fn fusion_saves_startup_cost() {
        // The premise of tensor fusion: one 64 KB op is cheaper than two
        // 32 KB ops.
        let c = cluster32();
        let two_small = 2.0 * c.all_reduce_time(32 * 1024);
        let one_big = c.all_reduce_time(64 * 1024);
        assert!(one_big < two_small);
        // And in the right ballpark of the paper's quote (2.0 ms / 1.2 ms):
        // within 3x.
        assert!(
            two_small > 0.6e-3 && two_small < 6e-3,
            "two small: {two_small}"
        );
        assert!(one_big > 0.3e-3 && one_big < 3.6e-3, "one big: {one_big}");
    }

    #[test]
    fn calibration_matches_resnet50_fusion_quote() {
        // Paper §IV-B: unfused all-reduce of ResNet-50 gradients 243 ms,
        // fused 169 ms (97.5 MB, ~161 tensors, 4 fused buffers).
        let c = cluster32();
        let total_bytes = (97.5 * MB as f64) as usize;
        let unfused: f64 = (0..161).map(|_| c.all_reduce_time(total_bytes / 161)).sum();
        let fused: f64 = (0..4).map(|_| c.all_reduce_time(total_bytes / 4)).sum();
        assert!((unfused - 0.243).abs() < 0.06, "unfused = {unfused}");
        assert!((fused - 0.169).abs() < 0.04, "fused = {fused}");
        assert!(unfused > fused);
    }

    #[test]
    fn all_gather_scales_linearly_with_workers() {
        let k = MB;
        let t8 = ClusterCost::new(8, NetworkTier::TenGbE).all_gather_time(k);
        let t32 = ClusterCost::new(32, NetworkTier::TenGbE).all_gather_time(k);
        // (p-1) scaling: 31/7 ≈ 4.4x.
        assert!((t32 / t8 - 31.0 / 7.0).abs() < 0.2, "ratio = {}", t32 / t8);
    }

    #[test]
    fn all_reduce_nearly_constant_in_workers() {
        // Ring all-reduce volume 2(p-1)/p N approaches 2N: doubling workers
        // barely moves the bandwidth term.
        let n = 100 * MB;
        let t8 = ClusterCost::new(8, NetworkTier::TenGbE).all_reduce_time(n);
        let t64 = ClusterCost::new(64, NetworkTier::TenGbE).all_reduce_time(n);
        assert!(t64 / t8 < 1.25, "ratio = {}", t64 / t8);
    }

    #[test]
    fn volumes_match_table2() {
        let c = ClusterCost::new(4, NetworkTier::TenGbE);
        assert_eq!(c.all_reduce_volume(400), 2.0 * 3.0 / 4.0 * 400.0);
        assert_eq!(c.all_gather_volume(100), 300.0);
    }

    #[test]
    fn tiers_order_by_bandwidth() {
        let n = 10 * MB;
        let t1 = ClusterCost::new(32, NetworkTier::OneGbE).all_reduce_time(n);
        let t10 = ClusterCost::new(32, NetworkTier::TenGbE).all_reduce_time(n);
        let t100 = ClusterCost::new(32, NetworkTier::HundredGbIb).all_reduce_time(n);
        assert!(t1 > t10 && t10 > t100);
    }

    #[test]
    fn recursive_doubling_beats_ring_for_small_payloads() {
        // Latency-optimal vs bandwidth-optimal crossover.
        let c = cluster32();
        let small = 4 * 1024;
        assert!(c.recursive_doubling_time(small) < c.all_reduce_time(small));
        let large = 64 * MB;
        assert!(c.recursive_doubling_time(large) > c.all_reduce_time(large));
    }

    #[test]
    fn gtopk_scales_logarithmically() {
        let k = 100_000;
        let t8 = ClusterCost::new(8, NetworkTier::TenGbE).gtopk_time(k);
        let t64 = ClusterCost::new(64, NetworkTier::TenGbE).gtopk_time(k);
        // log2: 3 rounds -> 6 rounds, so at most ~2.2x.
        assert!(t64 / t8 < 2.3, "gtopk scaling {}", t64 / t8);
        // All-gather for the same k grows ~(p-1): 9x.
        let g8 = ClusterCost::new(8, NetworkTier::TenGbE).all_gather_time(8 * k);
        let g64 = ClusterCost::new(64, NetworkTier::TenGbE).all_gather_time(8 * k);
        assert!(g64 / g8 > 4.0);
    }

    #[test]
    fn flat_all_reduce_slower_than_ring_for_large_payloads() {
        let c = cluster32();
        assert!(c.flat_all_reduce_time(10 * MB) > c.all_reduce_time(10 * MB));
    }

    #[test]
    fn labels() {
        assert_eq!(NetworkTier::OneGbE.label(), "1GbE");
        assert_eq!(format!("{}", NetworkTier::HundredGbIb), "100GbIB");
        assert_eq!(NetworkTier::Loopback.label(), "loopback");
    }

    #[test]
    fn loopback_beats_ethernet_tiers() {
        // Loopback's per-message cost (two syscalls) undercuts the
        // kernel-TCP-over-NIC Ethernet tiers at every size, while RDMA on
        // the InfiniBand tier still wins on per-message latency.
        for bytes in [4 * 1024, 10 * MB] {
            let lo = ClusterCost::new(4, NetworkTier::Loopback).all_reduce_time(bytes);
            for tier in [NetworkTier::OneGbE, NetworkTier::TenGbE] {
                assert!(
                    lo < ClusterCost::new(4, tier).all_reduce_time(bytes),
                    "loopback slower than {tier} at {bytes} bytes"
                );
            }
        }
        let small = 4 * 1024;
        let ib = ClusterCost::new(4, NetworkTier::HundredGbIb).all_reduce_time(small);
        let lo = ClusterCost::new(4, NetworkTier::Loopback).all_reduce_time(small);
        assert!(
            ib < lo,
            "RDMA per-message cost should beat loopback syscalls"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ClusterCost::new(0, NetworkTier::TenGbE);
    }

    #[test]
    fn two_level_beats_flat_ring_on_wan_at_scale() {
        // The BENCH_hierarchy claim in miniature: with WAN-class α on the
        // cross links, a flat ring pays 2(p−1) WAN latencies while the
        // hierarchy pays 2(G−1) — at world ≥ 128 that must dominate.
        let n = 100 * MB;
        for world in [128usize, 512, 1024] {
            let groups = world / 8;
            let topo = crate::Topology::grouped(world, groups).unwrap();
            let hier = TwoLevelCost::from_tiers(topo, NetworkTier::TenGbE, NetworkTier::Wan);
            let flat = ClusterCost::new(world, NetworkTier::Wan);
            assert!(
                hier.all_reduce_time(n) < flat.all_reduce_time(n),
                "world {world}: hier {} vs flat {}",
                hier.all_reduce_time(n),
                flat.all_reduce_time(n)
            );
        }
    }

    #[test]
    fn two_level_degenerates_to_flat_ring() {
        let n = 10 * MB;
        let flat = ClusterCost::new(8, NetworkTier::TenGbE).all_reduce_time(n);
        let one_group = TwoLevelCost::from_tiers(
            crate::Topology::flat(8),
            NetworkTier::TenGbE,
            NetworkTier::Wan,
        );
        assert!((one_group.all_reduce_time(n) - flat).abs() < 1e-12);
        let singleton_groups = TwoLevelCost::from_tiers(
            crate::Topology::grouped(8, 8).unwrap(),
            NetworkTier::TenGbE,
            NetworkTier::TenGbE,
        );
        assert!((singleton_groups.all_reduce_time(n) - flat).abs() < 1e-12);
    }

    #[test]
    fn cross_volume_shrinks_with_group_size() {
        let n = 100 * MB;
        let topo = crate::Topology::grouped(64, 8).unwrap();
        let hier = TwoLevelCost::from_tiers(topo, NetworkTier::TenGbE, NetworkTier::Wan);
        let flat_volume = ClusterCost::new(64, NetworkTier::Wan).all_reduce_volume(n);
        assert!(hier.cross_volume(n) < flat_volume / 4.0);
    }

    #[test]
    fn wan_tier_is_latency_bound() {
        let wan = NetworkTier::Wan.cost();
        let ten = NetworkTier::TenGbE.cost();
        assert!(wan.alpha > 100.0 * ten.alpha);
        assert_eq!(NetworkTier::Wan.label(), "WAN");
    }

    #[test]
    fn calibration_fit_round_trips_through_cluster_cost() {
        // Samples generated from a ClusterCost, fitted by the telemetry
        // calibration, must reproduce that ClusterCost's predictions — the
        // fit and the simulator price collectives with the same formulas.
        use acp_telemetry::{fit_alpha_beta, CollectiveKind, CollectiveSample};
        let truth = ClusterCost::new(4, NetworkTier::TenGbE);
        let mut samples = Vec::new();
        for bytes in [16 * 1024usize, 256 * 1024, 4 * MB] {
            samples.push(CollectiveSample {
                kind: CollectiveKind::AllReduce,
                bytes: bytes as u64,
                seconds: truth.all_reduce_time(bytes),
            });
            samples.push(CollectiveSample {
                kind: CollectiveKind::AllGather,
                bytes: bytes as u64,
                seconds: truth.all_gather_time(bytes),
            });
        }
        let fit = fit_alpha_beta(4, &samples).unwrap();
        let fitted = ClusterCost::with_cost(4, AlphaBetaCost::from(fit));
        for bytes in [8 * 1024usize, MB, 64 * MB] {
            let (got, want) = (fitted.all_reduce_time(bytes), truth.all_reduce_time(bytes));
            assert!((got - want).abs() / want < 1e-6, "AR {got} vs {want}");
            let (got, want) = (fitted.all_gather_time(bytes), truth.all_gather_time(bytes));
            assert!((got - want).abs() / want < 1e-6, "AG {got} vs {want}");
        }
    }
}
