//! Property tests pinning the vectorized kernels byte-identical to the
//! retained scalar references, across odd lengths, world sizes 2–8, and
//! gradients salted with the awkward IEEE values (`±0.0`, infinities, NaN).
//!
//! These are the oracle that lets the pool-parallel kernels replace the
//! scalar loops without moving a single payload bit.

use acp_compression::kernels::{self, reference};
use proptest::prelude::*;

/// Gradient strategy: ordinary magnitudes with awkward values sprinkled in.
fn grads(len: usize) -> impl Strategy<Value = Vec<f32>> {
    let elem = (0u8..13, -50.0f32..50.0).prop_map(|(pick, x)| match pick {
        0 => 0.0f32,
        1 => -0.0f32,
        2 => f32::NAN,
        3 => f32::INFINITY,
        4 => f32::NEG_INFINITY,
        _ => x,
    });
    proptest::collection::vec(elem, len..=len)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sign_pack_is_bit_identical(grad in (1usize..300).prop_flat_map(grads)) {
        prop_assert_eq!(kernels::pack_signs(&grad), reference::pack_signs(&grad));
    }

    #[test]
    fn sign_unpack_is_bit_identical(grad in (1usize..300).prop_flat_map(grads), scale in -4.0f32..4.0) {
        let words = reference::pack_signs(&grad);
        let mut fast = vec![0.0f32; grad.len()];
        let mut slow = vec![0.0f32; grad.len()];
        kernels::unpack_signs_into(&words, scale, &mut fast);
        reference::unpack_signs_into(&words, scale, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn majority_vote_is_bit_identical(
        len in 1usize..200,
        world in 2usize..=8,
        seed in 0u64..u64::MAX,
        scales in proptest::collection::vec(0.01f32..8.0, 8),
    ) {
        // Derive per-rank sign words from the seed (cheap splitmix).
        let wpr = len.div_ceil(32);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u32
        };
        let mut gathered = vec![0u32; wpr * world];
        for (w, word) in gathered.iter_mut().enumerate() {
            *word = next();
            // Keep tail bits clean like a real pack would.
            if (w + 1) % wpr == 0 && len % 32 != 0 {
                *word &= (1u32 << (len % 32)) - 1;
            }
        }
        let scales = &scales[..world];
        let mut fast = vec![0.0f32; len];
        let mut slow = vec![0.0f32; len];
        kernels::majority_vote_into(&gathered, scales, len, world, &mut fast);
        reference::majority_vote_into(&gathered, scales, len, world, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn quantize_is_bit_identical(
        grad in (1usize..300).prop_flat_map(grads),
        rand in proptest::collection::vec(0.0f32..1.0, 300),
        levels in 1u8..=127,
    ) {
        let rand = &rand[..grad.len()];
        let norm = grad
            .iter()
            .map(|g| if g.is_finite() { g * g } else { 1.0 })
            .sum::<f32>()
            .sqrt()
            .max(1e-3);
        let mut fast = vec![0i8; grad.len()];
        let mut slow = vec![0i8; grad.len()];
        kernels::quantize_chunk_into(&grad, norm, levels, rand, &mut fast);
        reference::quantize_chunk_into(&grad, norm, levels, rand, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn dequantize_is_bit_identical(
        levels in proptest::collection::vec(-127i8..=127, 1..300),
        num_levels in 1u8..=127,
        scale in -8.0f32..8.0,
    ) {
        let mut fast = vec![0.0f32; levels.len()];
        let mut slow = vec![0.0f32; levels.len()];
        kernels::dequantize_into(&levels, num_levels, scale, &mut fast);
        reference::dequantize_into(&levels, num_levels, scale, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn topk_selection_is_identical(
        grad in (1usize..300).prop_flat_map(grads),
        k in 1usize..300,
    ) {
        prop_assert_eq!(
            kernels::select_topk(&grad, k),
            reference::select_topk(&grad, k)
        );
    }
}

/// Above the pool's parallel threshold the chunked kernels must still be
/// bit-identical to the scalar references (fixed partitioning, no parallel
/// folds). One deterministic large case keeps the test fast.
#[test]
fn large_inputs_cross_the_parallel_threshold_bit_identically() {
    let len = (1 << 16) + 37; // just past PAR_THRESHOLD, odd tail
    let mut state = 0x1234_5678u32;
    let grad: Vec<f32> = (0..len)
        .map(|_| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            match state % 13 {
                0 => f32::NAN,
                1 => -0.0,
                _ => (state as f32 / u32::MAX as f32 - 0.5) * 10.0,
            }
        })
        .collect();

    let fast_words = kernels::pack_signs(&grad);
    let slow_words = reference::pack_signs(&grad);
    assert_eq!(fast_words, slow_words);

    let mut fast = vec![0.0f32; len];
    let mut slow = vec![0.0f32; len];
    kernels::unpack_signs_into(&fast_words, 1.5, &mut fast);
    reference::unpack_signs_into(&slow_words, 1.5, &mut slow);
    assert_eq!(bits(&fast), bits(&slow));

    let world = 4;
    let gathered: Vec<u32> = (0..world).flat_map(|_| fast_words.clone()).collect();
    let scales = vec![0.5f32, 1.0, 2.0, 4.0];
    kernels::majority_vote_into(&gathered, &scales, len, world, &mut fast);
    reference::majority_vote_into(&gathered, &scales, len, world, &mut slow);
    assert_eq!(bits(&fast), bits(&slow));

    assert_eq!(
        kernels::select_topk(&grad, 1000),
        reference::select_topk(&grad, 1000)
    );
}
