//! Property-based tests of the compression algorithms' invariants.

use proptest::prelude::*;

use acp_compression::acp::{AcpSgd, AcpSgdConfig, FactorSide};
use acp_compression::powersgd::{PowerSgd, PowerSgdConfig};
use acp_compression::qsgd::Qsgd;
use acp_compression::terngrad::TernGrad;
use acp_compression::{Compressor, ErrorFeedback, Payload, RandomK, SignSgd, TopK};
use acp_tensor::Matrix;

fn gradient(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sign-SGD decode magnitudes always equal the payload scale.
    #[test]
    fn sign_decode_magnitudes_equal_scale(len in 1usize..200, seed in 0u64..50) {
        let grad: Vec<f32> = (0..len).map(|i| ((i as u64 * seed + 1) as f32).sin()).collect();
        let mut c = SignSgd::scaled();
        let p = c.compress(&grad);
        let scale = match &p {
            Payload::Signs { scale, .. } => *scale,
            _ => unreachable!(),
        };
        let mut out = vec![0.0f32; len];
        c.decompress(&p, &mut out);
        for v in &out {
            prop_assert!((v.abs() - scale).abs() < 1e-6);
        }
    }

    /// Top-k keeps exactly min(k, len) elements, all present in the input.
    #[test]
    fn topk_selection_is_a_subset(grad in gradient(64), k in 1usize..80) {
        let mut c = TopK::new(k);
        if let Payload::Sparse { indices, values, .. } = c.compress(&grad) {
            prop_assert_eq!(indices.len(), k.min(64));
            for (&i, &v) in indices.iter().zip(&values) {
                prop_assert_eq!(grad[i as usize], v);
            }
            // Selected magnitudes dominate unselected ones.
            let min_selected = values.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
            for (i, g) in grad.iter().enumerate() {
                if !indices.contains(&(i as u32)) {
                    prop_assert!(g.abs() <= min_selected + 1e-6);
                }
            }
        } else {
            prop_assert!(false);
        }
    }

    /// Error feedback conserves mass exactly: over T steps, the sum of
    /// decoded payloads plus the final residual equals the sum of inputs.
    #[test]
    fn error_feedback_mass_conservation(
        grads in proptest::collection::vec(gradient(16), 1..5),
        k in 1usize..8,
    ) {
        let mut ef = ErrorFeedback::new(TopK::new(k));
        let mut sent = vec![0.0f64; 16];
        let mut truth = [0.0f64; 16];
        for g in &grads {
            let p = ef.compress(g);
            let mut dec = vec![0.0f32; 16];
            ef.decompress(&p, &mut dec);
            for i in 0..16 {
                sent[i] += dec[i] as f64;
                truth[i] += g[i] as f64;
            }
        }
        let residual2: f64 = truth
            .iter()
            .zip(&sent)
            .map(|(t, s)| (t - s) * (t - s))
            .sum();
        let expect = ef.residual_norm() as f64;
        prop_assert!(
            (residual2.sqrt() - expect).abs() < 1e-2 * (1.0 + expect),
            "{} vs {}",
            residual2.sqrt(),
            expect
        );
    }

    /// QSGD and TernGrad never increase the magnitude bound of the input
    /// beyond their scale.
    #[test]
    fn quantizers_respect_scale_bounds(grad in gradient(40), seed in 0u64..20) {
        let max = grad.iter().fold(0.0f32, |m, g| m.max(g.abs()));
        let mut tg = TernGrad::new(seed);
        for v in tg.round_trip(&grad) {
            prop_assert!(v.abs() <= max + 1e-5);
        }
        let mut q = Qsgd::new(4, seed);
        let bucket_max = 40; // single bucket for this length
        let _ = bucket_max;
        for v in q.round_trip(&grad) {
            // Bounded by the bucket norm.
            let norm = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
            prop_assert!(v.abs() <= norm + 1e-4);
        }
    }

    /// Random-k draws identical coordinates on all "ranks" (same seed and
    /// step) regardless of data.
    #[test]
    fn randomk_coordinates_rank_agree(ga in gradient(48), gb in gradient(48), seed in 0u64..100) {
        let mut a = RandomK::new(5, seed);
        let mut b = RandomK::new(5, seed);
        let (pa, pb) = (a.compress(&ga), b.compress(&gb));
        match (pa, pb) {
            (
                Payload::Sparse { indices: ia, .. },
                Payload::Sparse { indices: ib, .. },
            ) => prop_assert_eq!(ia, ib),
            _ => prop_assert!(false),
        }
    }

    /// ACP-SGD: the factor side strictly alternates and the factor shapes
    /// match (n×r, m×r).
    #[test]
    fn acp_sides_alternate_with_correct_shapes(
        n in 2usize..10,
        m in 2usize..10,
        rank in 1usize..4,
        steps in 1usize..6,
    ) {
        let grad = Matrix::from_vec(
            n,
            m,
            (0..n * m).map(|i| (i as f32 * 0.3).sin()).collect(),
        ).unwrap();
        let mut acp = AcpSgd::new(n, m, AcpSgdConfig { rank, ..Default::default() });
        let r = rank.min(n).min(m);
        for s in 0..steps {
            let side = acp.next_side();
            prop_assert_eq!(side, if s % 2 == 0 { FactorSide::P } else { FactorSide::Q });
            let f = acp.compress(&grad);
            match side {
                FactorSide::P => prop_assert_eq!((f.rows(), f.cols()), (n, r)),
                FactorSide::Q => prop_assert_eq!((f.rows(), f.cols()), (m, r)),
            }
            let approx = acp.finish(f);
            prop_assert_eq!((approx.rows(), approx.cols()), (n, m));
            prop_assert!(approx.is_finite());
        }
    }

    /// Power-SGD with EF on a single worker: the EF identity
    /// `M + E_{t−1} = M̂_t + E_t` holds for arbitrary gradients and ranks.
    #[test]
    fn powersgd_ef_identity(n in 2usize..8, m in 2usize..8, rank in 1usize..4, seed in 0u64..30) {
        let grad = Matrix::from_vec(
            n,
            m,
            (0..n * m).map(|i| ((i as u64 + seed) as f32 * 0.7).cos()).collect(),
        ).unwrap();
        let mut ps = PowerSgd::new(n, m, PowerSgdConfig { rank, ..Default::default() });
        let mut prev_e = Matrix::zeros(n, m);
        for _ in 0..3 {
            let before = &grad + &prev_e;
            let p = ps.compute_p(&grad);
            let q = ps.compute_q(p);
            let approx = ps.finish(q);
            let e = &before - &approx;
            prop_assert!(
                (e.frobenius_norm() - ps.error_norm()).abs() < 1e-2 * (1.0 + e.frobenius_norm())
            );
            prev_e = e;
        }
    }

    /// Compression ratios are always >= 1 for the sub-dense encodings.
    #[test]
    fn ratios_at_least_one(grad in gradient(256)) {
        let mut sign = SignSgd::plain();
        prop_assert!(sign.compress(&grad).compression_ratio() >= 1.0);
        let mut topk = TopK::new(16);
        prop_assert!(topk.compress(&grad).compression_ratio() >= 1.0);
        let mut tern = TernGrad::new(1);
        prop_assert!(tern.compress(&grad).compression_ratio() >= 1.0);
    }
}
