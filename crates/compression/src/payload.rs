//! Self-describing compressed gradient payloads with wire-byte accounting.

use serde::{Deserialize, Serialize};

/// A compressed gradient as it would travel on the network.
///
/// Every variant knows its exact wire size, so compression ratios (Table I)
/// and communication volumes (Table II) are computed from real payloads, not
/// nominal formulas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Uncompressed `f32` gradient (S-SGD).
    Dense(Vec<f32>),
    /// Bit-packed signs (Sign-SGD): bit `i` of `words[i / 32]` is 1 when
    /// gradient element `i` is non-negative.
    Signs {
        /// Packed sign bits, 32 per word.
        words: Vec<u32>,
        /// Number of gradient elements represented.
        len: usize,
        /// Optional magnitude scale (mean |g|); `1.0` for pure Sign-SGD.
        scale: f32,
    },
    /// Sparse selection (Top-k / Random-k): parallel index/value arrays.
    Sparse {
        /// Coordinates of the selected elements.
        indices: Vec<u32>,
        /// Values of the selected elements.
        values: Vec<f32>,
        /// Length of the dense gradient they came from.
        len: usize,
    },
    /// Stochastically quantized levels (QSGD / TernGrad): signed integer
    /// levels in `[-s, s]` plus a scale.
    Quantized {
        /// Per-element levels.
        levels: Vec<i8>,
        /// Number of quantization levels `s` (per sign).
        num_levels: u8,
        /// Scale factor (‖g‖₂ for QSGD, max |g| for TernGrad).
        scale: f32,
    },
    /// Bucketed stochastic quantization (QSGD with per-bucket norms).
    QuantizedBuckets {
        /// Per-element levels.
        levels: Vec<i8>,
        /// Number of quantization levels `s` (per sign).
        num_levels: u8,
        /// Bucket length.
        bucket: usize,
        /// L2 norm of each bucket.
        scales: Vec<f32>,
    },
    /// A low-rank factor (the `P` or `Q` of Power-SGD / ACP-SGD), stored
    /// row-major.
    LowRank {
        /// Factor elements, row-major.
        data: Vec<f32>,
        /// Factor rows (`n` for P, `m` for Q).
        rows: usize,
        /// Factor columns (the rank `r`).
        cols: usize,
    },
}

impl Payload {
    /// Exact bytes this payload occupies on the wire.
    ///
    /// Counts data plus the per-payload scalar headers (length/scale), but
    /// not transport framing.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::Dense(v) => 4 * v.len(),
            Payload::Signs { words, .. } => 4 * words.len() + 8,
            Payload::Sparse {
                indices, values, ..
            } => 4 * indices.len() + 4 * values.len() + 4,
            Payload::Quantized {
                levels, num_levels, ..
            } => {
                // Levels need ceil(log2(2s+1)) bits each.
                let bits = bits_per_level(*num_levels);
                (levels.len() * bits).div_ceil(8) + 8
            }
            Payload::QuantizedBuckets {
                levels,
                num_levels,
                scales,
                ..
            } => {
                let bits = bits_per_level(*num_levels);
                (levels.len() * bits).div_ceil(8) + 4 * scales.len() + 8
            }
            Payload::LowRank { data, .. } => 4 * data.len(),
        }
    }

    /// Number of dense gradient elements this payload stands for.
    pub fn dense_len(&self) -> usize {
        match self {
            Payload::Dense(v) => v.len(),
            Payload::Signs { len, .. } => *len,
            Payload::Sparse { len, .. } => *len,
            Payload::Quantized { levels, .. } => levels.len(),
            Payload::QuantizedBuckets { levels, .. } => levels.len(),
            Payload::LowRank { rows, cols, .. } => rows * cols,
        }
    }

    /// Compression ratio relative to sending the dense `f32` gradient.
    pub fn compression_ratio(&self) -> f64 {
        let dense = 4 * self.dense_len();
        dense as f64 / self.wire_bytes().max(1) as f64
    }
}

/// Bits required to store one level in `[-s, s]` (sign-magnitude).
pub(crate) fn bits_per_level(s: u8) -> usize {
    let states = 2 * s as usize + 1;
    usize::BITS as usize - (states - 1).leading_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_wire_bytes() {
        assert_eq!(Payload::Dense(vec![0.0; 10]).wire_bytes(), 40);
    }

    #[test]
    fn signs_pack_32_to_1() {
        let p = Payload::Signs {
            words: vec![0; 32],
            len: 1024,
            scale: 1.0,
        };
        assert_eq!(p.dense_len(), 1024);
        // 1024 floats = 4096 bytes -> 128 bytes + 8 header.
        assert_eq!(p.wire_bytes(), 136);
        assert!(p.compression_ratio() > 30.0);
    }

    #[test]
    fn sparse_counts_both_arrays() {
        let p = Payload::Sparse {
            indices: vec![0; 5],
            values: vec![0.0; 5],
            len: 5000,
        };
        assert_eq!(p.wire_bytes(), 44);
        // 5000*4 / 44 ≈ 454x.
        assert!(p.compression_ratio() > 400.0);
    }

    #[test]
    fn quantized_bit_widths() {
        // TernGrad: s=1 -> 3 states -> 2 bits.
        assert_eq!(bits_per_level(1), 2);
        // QSGD s=4 -> 9 states -> 4 bits.
        assert_eq!(bits_per_level(4), 4);
        // s=127 -> 255 states -> 8 bits.
        assert_eq!(bits_per_level(127), 8);
        let p = Payload::Quantized {
            levels: vec![0; 100],
            num_levels: 1,
            scale: 1.0,
        };
        assert_eq!(p.wire_bytes(), 25 + 8);
    }

    #[test]
    fn low_rank_dense_len_is_product() {
        let p = Payload::LowRank {
            data: vec![0.0; 8],
            rows: 100,
            cols: 4,
        };
        assert_eq!(p.dense_len(), 400);
        assert_eq!(p.wire_bytes(), 32);
    }
}
