//! Power-SGD low-rank gradient compression (Vogels et al., NeurIPS 2019) —
//! Algorithm 1 of the paper.
//!
//! One step of power iteration factorizes the gradient matrix `M ∈ ℝ^{n×m}`
//! as `M ≈ P Qᵀ` with rank-`r` factors. Each iteration needs **two**
//! all-reduces with a computation sandwiched between them:
//!
//! ```text
//! P ← (M + E) Q_{t−1}      (compute, local)
//! P ← all-reduce(P)         (communication)
//! P ← orthogonalize(P)      (compute — BLOCKED on the all-reduce)
//! Q ← (M + E)ᵀ P            (compute)
//! E ← (M + E) − P Qᵀ        (error feedback)
//! Q ← all-reduce(Q)         (communication)
//! M̂ ← P Qᵀ
//! ```
//!
//! The mid-iteration dependency is why Power-SGD's communication is
//! *blocking* (§III-C): aggregate-P must finish before compute-Q starts,
//! which is what ACP-SGD ([`crate::acp`]) removes.
//!
//! The state machine here exposes the three phases explicitly
//! ([`PowerSgd::compute_p`] → [`PowerSgd::compute_q`] →
//! [`PowerSgd::finish`]) so a distributed optimizer inserts real collectives
//! at the marked points.

use acp_tensor::{Matrix, OrthoMethod, SeedableStdNormal};

use serde::{Deserialize, Serialize};

use crate::error::CompressError;

/// Configuration shared by [`PowerSgd`] and tested in the ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSgdConfig {
    /// Rank `r` of the factors (paper: 4 for ResNets, 32 for BERTs).
    pub rank: usize,
    /// Maintain the error-feedback residual `E` (Algorithm 2). Disabling
    /// reproduces the divergence of Fig. 7.
    pub error_feedback: bool,
    /// Reuse the previous step's factor as the power-iteration query
    /// (query reuse). Disabling draws a fresh random query each step.
    pub reuse: bool,
    /// Orthogonalization kernel.
    #[serde(skip)]
    pub ortho: OrthoMethod,
    /// Seed for the (rank-shared) random initialization of `Q₀`.
    pub seed: u64,
}

impl Default for PowerSgdConfig {
    fn default() -> Self {
        PowerSgdConfig {
            rank: 4,
            error_feedback: true,
            reuse: true,
            ortho: OrthoMethod::GramSchmidt,
            seed: 42,
        }
    }
}

/// Which phase the per-matrix state machine expects next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitP,
    AwaitQ { have_p: bool },
}

/// Per-gradient-matrix Power-SGD compression state.
///
/// # Examples
///
/// Single-worker round trip (all-reduce is the identity at world size 1):
///
/// ```
/// use acp_compression::powersgd::{PowerSgd, PowerSgdConfig};
/// use acp_tensor::{Matrix, SeedableStdNormal};
///
/// let grad = Matrix::random_std_normal(8, 6, 3);
/// let mut ps = PowerSgd::new(8, 6, PowerSgdConfig { rank: 2, ..Default::default() });
/// let p = ps.compute_p(&grad);
/// let q = ps.compute_q(p);      // would all-reduce p here
/// let approx = ps.finish(q);    // would all-reduce q here
/// assert_eq!((approx.rows(), approx.cols()), (8, 6));
/// ```
#[derive(Debug, Clone)]
pub struct PowerSgd {
    n: usize,
    m: usize,
    rank: usize,
    cfg: PowerSgdConfig,
    /// Query matrix `Q_{t−1}` (m × r), identical on every rank.
    q: Matrix,
    /// Error-feedback residual `E` (n × m) when enabled.
    error: Option<Matrix>,
    /// Orthogonalized aggregated `P̂` cached between phases.
    p_hat: Option<Matrix>,
    /// Corrected gradient `M + E` cached between phases.
    corrected: Option<Matrix>,
    step: u64,
    phase: Phase,
}

impl PowerSgd {
    /// Creates the state for an `n × m` gradient matrix.
    ///
    /// The effective rank is `min(cfg.rank, n, m)`. `Q₀` is drawn from a
    /// seeded standard normal stream, so all ranks constructing the state
    /// with the same arguments agree on it without a broadcast.
    ///
    /// # Panics
    ///
    /// Panics if any of `n`, `m` or `cfg.rank` is zero.
    pub fn new(n: usize, m: usize, cfg: PowerSgdConfig) -> Self {
        assert!(n > 0 && m > 0, "gradient matrix must be non-empty");
        assert!(cfg.rank > 0, "rank must be positive");
        let rank = cfg.rank.min(n).min(m);
        let q = Matrix::random_std_normal(m, rank, cfg.seed);
        let error = cfg.error_feedback.then(|| Matrix::zeros(n, m));
        PowerSgd {
            n,
            m,
            rank,
            cfg,
            q,
            error,
            p_hat: None,
            corrected: None,
            step: 0,
            phase: Phase::AwaitP,
        }
    }

    /// Effective rank (requested rank clamped to the matrix dimensions).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of completed compression steps.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Frobenius norm of the error-feedback residual (0 when EF disabled).
    pub fn error_norm(&self) -> f32 {
        self.error.as_ref().map_or(0.0, Matrix::frobenius_norm)
    }

    /// Phase 1: computes the local factor `P = (M + E) Q_{t−1}` to be
    /// all-reduced (with mean) across workers.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape differs from construction, or the state
    /// machine is mid-iteration (phases called out of order).
    pub fn compute_p(&mut self, grad: &Matrix) -> Matrix {
        // allow_verify(reason: legacy infallible surface, panics with the try_ error text)
        self.try_compute_p(grad).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PowerSgd::compute_p`]: returns a structured error instead
    /// of panicking on phase or shape violations.
    ///
    /// # Errors
    ///
    /// [`CompressError::Phase`] when called out of order,
    /// [`CompressError::Shape`] when the gradient shape differs from
    /// construction, [`CompressError::Matrix`] if the inner multiply is fed
    /// incompatible dimensions.
    #[must_use = "the result carries the computation; dropping it discards the round"]
    pub fn try_compute_p(&mut self, grad: &Matrix) -> Result<Matrix, CompressError> {
        if self.phase != Phase::AwaitP {
            return Err(CompressError::Phase {
                what: "compute_p called out of order",
            });
        }
        if (grad.rows(), grad.cols()) != (self.n, self.m) {
            return Err(CompressError::Shape {
                what: "gradient shape changed",
                expected: (self.n, self.m),
                actual: (grad.rows(), grad.cols()),
            });
        }
        if !self.cfg.reuse {
            // Fresh random query each step (ablation). Seed varies by step
            // but agrees across ranks.
            self.q = Matrix::random_std_normal(
                self.m,
                self.rank,
                self.cfg.seed ^ (self.step + 1).wrapping_mul(0x9E37),
            );
        }
        let corrected = match &self.error {
            Some(e) => grad + e,
            None => grad.clone(),
        };
        let p = corrected.try_matmul(&self.q)?;
        self.corrected = Some(corrected);
        self.phase = Phase::AwaitQ { have_p: false };
        Ok(p)
    }

    /// Phase 2: consumes the aggregated `P̂`, orthogonalizes it, computes
    /// `Q = (M + E)ᵀ P̂` and updates the error residual; returns `Q` to be
    /// all-reduced (with mean).
    ///
    /// # Panics
    ///
    /// Panics if called out of order or `p_reduced` has the wrong shape.
    pub fn compute_q(&mut self, p_reduced: Matrix) -> Matrix {
        // allow_verify(reason: legacy infallible surface, panics with the try_ error text)
        self.try_compute_q(p_reduced)
            // allow_verify(reason: same legacy surface as above)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PowerSgd::compute_q`]: returns a structured error instead
    /// of panicking on phase or shape violations.
    ///
    /// # Errors
    ///
    /// [`CompressError::Phase`] when called out of order,
    /// [`CompressError::Shape`] when `p_reduced` has the wrong shape,
    /// [`CompressError::Matrix`] if an inner multiply is fed incompatible
    /// dimensions.
    #[must_use = "the result carries the computation; dropping it discards the round"]
    pub fn try_compute_q(&mut self, mut p_reduced: Matrix) -> Result<Matrix, CompressError> {
        if !matches!(self.phase, Phase::AwaitQ { have_p: false }) {
            return Err(CompressError::Phase {
                what: "compute_q called out of order",
            });
        }
        if (p_reduced.rows(), p_reduced.cols()) != (self.n, self.rank) {
            return Err(CompressError::Shape {
                what: "aggregated P has the wrong shape",
                expected: (self.n, self.rank),
                actual: (p_reduced.rows(), p_reduced.cols()),
            });
        }
        self.cfg.ortho.apply(&mut p_reduced);
        let corrected = match self.corrected.take() {
            Some(c) => c,
            None => {
                return Err(CompressError::Phase {
                    what: "corrected gradient cached by compute_p",
                })
            }
        };
        let q = corrected.try_matmul_tn(&p_reduced)?;
        if self.error.is_some() {
            // E ← (M + E) − P̂ Q_localᵀ, with the local (pre-reduce) Q so the
            // average of transmitted + residual equals the true average.
            let approx = p_reduced.try_matmul_nt(&q)?;
            let mut e = corrected;
            e -= &approx;
            self.error = Some(e);
        }
        self.p_hat = Some(p_reduced);
        self.phase = Phase::AwaitQ { have_p: true };
        Ok(q)
    }

    /// Phase 3: consumes the aggregated `Q̂` and returns the decompressed
    /// gradient `M̂ = P̂ Q̂ᵀ`. `Q̂` is retained as the next step's query.
    ///
    /// # Panics
    ///
    /// Panics if called out of order or `q_reduced` has the wrong shape.
    pub fn finish(&mut self, q_reduced: Matrix) -> Matrix {
        // allow_verify(reason: legacy infallible surface, panics with the try_ error text)
        self.try_finish(q_reduced).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PowerSgd::finish`]: returns a structured error instead of
    /// panicking on phase or shape violations.
    ///
    /// # Errors
    ///
    /// [`CompressError::Phase`] when called out of order,
    /// [`CompressError::Shape`] when `q_reduced` has the wrong shape,
    /// [`CompressError::Matrix`] if the reconstruction multiply is fed
    /// incompatible dimensions.
    #[must_use = "the result carries the computation; dropping it discards the round"]
    pub fn try_finish(&mut self, q_reduced: Matrix) -> Result<Matrix, CompressError> {
        if !matches!(self.phase, Phase::AwaitQ { have_p: true }) {
            return Err(CompressError::Phase {
                what: "finish called out of order",
            });
        }
        if (q_reduced.rows(), q_reduced.cols()) != (self.m, self.rank) {
            return Err(CompressError::Shape {
                what: "aggregated Q has the wrong shape",
                expected: (self.m, self.rank),
                actual: (q_reduced.rows(), q_reduced.cols()),
            });
        }
        let p_hat = match self.p_hat.take() {
            Some(p) => p,
            None => {
                return Err(CompressError::Phase {
                    what: "aggregated P cached by compute_q",
                })
            }
        };
        let approx = p_hat.try_matmul_nt(&q_reduced)?;
        self.q = q_reduced;
        self.step += 1;
        self.phase = Phase::AwaitP;
        Ok(approx)
    }

    /// FLOPs of one compression step (Table II: `O(N r)` with `N = n m`):
    /// two `n×m·m×r` multiplications plus the `O((n+m) r²)`
    /// orthogonalization and the `n×r·r×m` error-feedback reconstruction.
    pub fn compress_flops(&self) -> u64 {
        let (n, m, r) = (self.n as u64, self.m as u64, self.rank as u64);
        let matmuls = 2 * 2 * n * m * r;
        let ortho = 2 * n * r * r;
        let ef = if self.cfg.error_feedback {
            2 * n * m * r
        } else {
            0
        };
        matmuls + ortho + ef
    }

    /// Elements transmitted per step (both factors): `(n + m) r`.
    pub fn transmitted_elements(&self) -> usize {
        (self.n + self.m) * self.rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_tensor::vecops::relative_error;

    fn single_worker_step(ps: &mut PowerSgd, grad: &Matrix) -> Matrix {
        let p = ps.compute_p(grad);
        let q = ps.compute_q(p);
        ps.finish(q)
    }

    fn low_rank_matrix(n: usize, m: usize, rank: usize, seed: u64) -> Matrix {
        let a = Matrix::random_std_normal(n, rank, seed);
        let b = Matrix::random_std_normal(m, rank, seed + 1);
        a.matmul_nt(&b)
    }

    #[test]
    fn recovers_low_rank_matrix_after_iterations() {
        // A fixed rank-2 matrix compressed at rank 2 must be recovered to
        // high accuracy once the power iteration converges.
        let truth = low_rank_matrix(20, 15, 2, 5);
        let mut ps = PowerSgd::new(
            20,
            15,
            PowerSgdConfig {
                rank: 2,
                ..Default::default()
            },
        );
        let mut approx = Matrix::zeros(20, 15);
        for _ in 0..6 {
            approx = single_worker_step(&mut ps, &truth);
        }
        let err = relative_error(truth.as_slice(), approx.as_slice());
        assert!(err < 1e-2, "relative error {err}");
    }

    #[test]
    fn error_feedback_identity_holds() {
        // Single worker: M + E_{t-1} = M̂_t + E_t exactly (per Algorithm 2).
        let grad = Matrix::random_std_normal(12, 9, 8);
        let mut ps = PowerSgd::new(
            12,
            9,
            PowerSgdConfig {
                rank: 2,
                ..Default::default()
            },
        );
        let mut prev_err = Matrix::zeros(12, 9);
        for _ in 0..4 {
            let before = &grad + &prev_err;
            let approx = single_worker_step(&mut ps, &grad);
            // Reconstruct E_t = (M + E_{t-1}) - M̂_t and compare with state.
            let expected_e = &before - &approx;
            assert!((expected_e.frobenius_norm() - ps.error_norm()).abs() < 1e-3);
            prev_err = expected_e;
        }
    }

    #[test]
    fn without_error_feedback_residual_stays_zero() {
        let grad = Matrix::random_std_normal(6, 5, 1);
        let cfg = PowerSgdConfig {
            rank: 1,
            error_feedback: false,
            ..Default::default()
        };
        let mut ps = PowerSgd::new(6, 5, cfg);
        single_worker_step(&mut ps, &grad);
        assert_eq!(ps.error_norm(), 0.0);
    }

    #[test]
    fn reuse_improves_fixed_matrix_approximation() {
        let truth = low_rank_matrix(24, 18, 3, 77);
        let steps = 5;
        let run = |reuse: bool| {
            let cfg = PowerSgdConfig {
                rank: 3,
                reuse,
                error_feedback: false,
                ..Default::default()
            };
            let mut ps = PowerSgd::new(24, 18, cfg);
            let mut last = Matrix::zeros(24, 18);
            for _ in 0..steps {
                last = single_worker_step(&mut ps, &truth);
            }
            relative_error(truth.as_slice(), last.as_slice())
        };
        let with_reuse = run(true);
        let without = run(false);
        assert!(
            with_reuse < without,
            "reuse {with_reuse} should beat fresh queries {without}"
        );
    }

    #[test]
    fn rank_clamps_to_dimensions() {
        let ps = PowerSgd::new(
            3,
            5,
            PowerSgdConfig {
                rank: 64,
                ..Default::default()
            },
        );
        assert_eq!(ps.rank(), 3);
    }

    #[test]
    fn initial_q_agrees_across_ranks() {
        let a = PowerSgd::new(10, 8, PowerSgdConfig::default());
        let b = PowerSgd::new(10, 8, PowerSgdConfig::default());
        assert_eq!(a.q, b.q);
    }

    #[test]
    fn transmitted_elements_formula() {
        let ps = PowerSgd::new(
            100,
            50,
            PowerSgdConfig {
                rank: 4,
                ..Default::default()
            },
        );
        assert_eq!(ps.transmitted_elements(), 600);
        assert!(ps.compress_flops() > 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn phases_enforced() {
        let grad = Matrix::zeros(4, 4);
        let mut ps = PowerSgd::new(4, 4, PowerSgdConfig::default());
        ps.compute_p(&grad);
        ps.compute_p(&grad); // must panic: AwaitQ expected
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn gradient_shape_is_checked() {
        let mut ps = PowerSgd::new(4, 4, PowerSgdConfig::default());
        ps.compute_p(&Matrix::zeros(4, 5));
    }

    #[test]
    fn try_surface_reports_structured_errors() {
        use crate::error::CompressError;
        let grad = Matrix::zeros(4, 4);
        let mut ps = PowerSgd::new(4, 4, PowerSgdConfig::default());
        assert_eq!(
            ps.try_compute_p(&Matrix::zeros(4, 5)),
            Err(CompressError::Shape {
                what: "gradient shape changed",
                expected: (4, 4),
                actual: (4, 5),
            })
        );
        // A failed call leaves the state usable.
        let p = ps.try_compute_p(&grad).unwrap();
        assert_eq!(
            ps.try_compute_p(&grad),
            Err(CompressError::Phase {
                what: "compute_p called out of order",
            })
        );
        let q = ps.try_compute_q(p).unwrap();
        assert_eq!(
            ps.try_finish(Matrix::zeros(3, 3)),
            Err(CompressError::Shape {
                what: "aggregated Q has the wrong shape",
                expected: (4, ps.rank()),
                actual: (3, 3),
            })
        );
        assert!(ps.try_finish(q).is_ok());
    }
}
