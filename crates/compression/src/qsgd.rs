//! QSGD stochastic quantization (Alistarh et al., NeurIPS 2017).
//!
//! Quantizes each element to one of `s` levels per sign via randomized
//! rounding, scaled by the L2 norm of its *bucket*. The rounding is
//! *unbiased*: `E[decode(encode(g))] = g`, a property the tests verify —
//! this is the contrast to the biased compressors (Sign, Top-k, low-rank)
//! that need error feedback.
//!
//! Bucketing matters: quantizing against the norm of the whole tensor
//! makes the variance explode for large tensors (`‖g‖₂ ≫ |gᵢ|`), so QSGD
//! implementations split the gradient into fixed-size buckets and scale
//! each independently — the default bucket here is 512 elements, matching
//! common practice.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::compressor::Compressor;
use crate::kernels;
use crate::payload::Payload;

/// Default quantization bucket length.
pub const DEFAULT_BUCKET: usize = 512;

/// QSGD compressor with `s` quantization levels per sign.
///
/// # Examples
///
/// ```
/// use acp_compression::{Compressor, qsgd::Qsgd};
///
/// let mut c = Qsgd::new(4, 0);
/// let rt = c.round_trip(&[0.5, -0.5]);
/// assert_eq!(rt.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Qsgd {
    levels: u8,
    bucket: usize,
    rng: ChaCha8Rng,
}

impl Qsgd {
    /// Creates a QSGD compressor with the default 512-element buckets;
    /// `levels` is `s` (1 ⇒ ternary), `seed` feeds the rounding RNG.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `levels > 127`.
    pub fn new(levels: u8, seed: u64) -> Self {
        Self::with_bucket(levels, DEFAULT_BUCKET, seed)
    }

    /// Creates a QSGD compressor with an explicit bucket length.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or exceeds 127, or `bucket == 0`.
    #[must_use]
    pub fn with_bucket(levels: u8, bucket: usize, seed: u64) -> Self {
        assert!(levels > 0, "levels must be positive");
        assert!(levels <= 127, "levels must fit in i8 magnitude");
        assert!(bucket > 0, "bucket must be positive");
        Qsgd {
            levels,
            bucket,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Number of levels per sign `s`.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Bucket length.
    pub fn bucket(&self) -> usize {
        self.bucket
    }
}

impl Compressor for Qsgd {
    fn name(&self) -> &'static str {
        "qsgd"
    }

    fn compress(&mut self, grad: &[f32]) -> Payload {
        let mut levels = vec![0i8; grad.len()];
        let mut scales = Vec::with_capacity(grad.len().div_ceil(self.bucket));
        // Pre-drawn uniforms, one per element in element order, so the
        // ChaCha stream (and therefore the payload) is byte-identical to
        // the pre-kernel element-at-a-time implementation.
        let mut rand = vec![0.0f32; self.bucket];
        for (chunk, out) in grad.chunks(self.bucket).zip(levels.chunks_mut(self.bucket)) {
            // Bucket norm stays a strictly sequential sum (bitwise pinned).
            let norm = chunk.iter().map(|g| g * g).sum::<f32>().sqrt();
            scales.push(norm);
            if norm == 0.0 {
                continue;
            }
            let rand = &mut rand[..chunk.len()];
            for r in rand.iter_mut() {
                *r = self.rng.gen::<f32>();
            }
            kernels::quantize_chunk_into(chunk, norm, self.levels, rand, out);
        }
        Payload::QuantizedBuckets {
            levels,
            num_levels: self.levels,
            bucket: self.bucket,
            scales,
        }
    }

    fn decompress(&self, payload: &Payload, out: &mut [f32]) {
        match payload {
            Payload::QuantizedBuckets {
                levels,
                num_levels,
                bucket,
                scales,
            } => {
                assert_eq!(out.len(), levels.len(), "output length mismatch");
                for ((ochunk, lchunk), &scale) in out
                    .chunks_mut(*bucket)
                    .zip(levels.chunks(*bucket))
                    .zip(scales)
                {
                    kernels::dequantize_into(lchunk, *num_levels, scale, ochunk);
                }
            }
            // Accept the flat variant too (TernGrad shares the alphabet).
            Payload::Quantized {
                levels,
                num_levels,
                scale,
            } => {
                assert_eq!(out.len(), levels.len(), "output length mismatch");
                kernels::dequantize_into(levels, *num_levels, *scale, out);
            }
            // allow_verify(reason: contract panic on payload-kind mismatch, pinned by tests)
            _ => panic!("Qsgd expects a quantized payload"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gradient_round_trips_to_zero() {
        let mut c = Qsgd::new(4, 0);
        assert_eq!(c.round_trip(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn rounding_is_unbiased() {
        // Average many independent quantizations: must converge to input.
        let grad = [0.3f32, -0.7, 0.1, 0.9];
        let mut acc = vec![0.0f64; grad.len()];
        let trials = 20_000;
        let mut c = Qsgd::new(2, 42);
        for _ in 0..trials {
            let rt = c.round_trip(&grad);
            for (a, v) in acc.iter_mut().zip(&rt) {
                *a += *v as f64;
            }
        }
        for (a, &g) in acc.iter().zip(&grad) {
            let mean = a / trials as f64;
            assert!((mean - g as f64).abs() < 0.02, "E[decode] = {mean} vs {g}");
        }
    }

    #[test]
    fn levels_bounded_by_s() {
        let mut c = Qsgd::new(3, 1);
        let p = c.compress(&[10.0, -10.0, 0.01]);
        match p {
            Payload::QuantizedBuckets { levels, .. } => {
                assert!(levels.iter().all(|&l| l.abs() <= 3));
            }
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn preserves_signs() {
        let mut c = Qsgd::new(8, 2);
        let rt = c.round_trip(&[5.0, -5.0]);
        assert!(rt[0] >= 0.0);
        assert!(rt[1] <= 0.0);
    }

    #[test]
    fn bucketing_bounds_relative_error_on_large_tensors() {
        // Without bucketing a 64k-element tensor quantized at s=4 against
        // its global norm is mostly zeros; with 512-element buckets the
        // relative error stays bounded.
        use acp_tensor::vecops::relative_error;
        use acp_tensor::{Matrix, SeedableStdNormal};
        let grad = Matrix::random_std_normal(1, 1 << 16, 3).into_vec();
        let mut bucketed = Qsgd::new(4, 1);
        let rt_b = bucketed.round_trip(&grad);
        let err_b = relative_error(&grad, &rt_b);
        let mut global = Qsgd::with_bucket(4, grad.len(), 1);
        let rt_g = global.round_trip(&grad);
        let err_g = relative_error(&grad, &rt_g);
        assert!(err_b < 2.0, "bucketed error {err_b}");
        assert!(err_g > 2.0 * err_b, "global {err_g} vs bucketed {err_b}");
    }

    #[test]
    fn multi_bucket_scales_are_per_chunk() {
        let mut c = Qsgd::with_bucket(4, 2, 0);
        // Two buckets with very different magnitudes.
        let p = c.compress(&[100.0, 100.0, 0.001, 0.001]);
        match &p {
            Payload::QuantizedBuckets { scales, .. } => {
                assert_eq!(scales.len(), 2);
                assert!(scales[0] > 100.0 && scales[1] < 0.01);
            }
            _ => panic!("wrong payload"),
        }
        let mut out = vec![0.0; 4];
        c.decompress(&p, &mut out);
        // The small bucket is not flushed to zero.
        assert!(out[2].abs() > 1e-4 || out[3].abs() > 1e-4);
    }

    #[test]
    #[should_panic(expected = "levels must be positive")]
    fn zero_levels_panics() {
        Qsgd::new(0, 0);
    }
}
