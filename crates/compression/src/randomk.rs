//! Random-k sparsification (Stich et al., NeurIPS 2018).
//!
//! Selects `k` uniformly random coordinates per step. All workers derive the
//! selection from a shared seed and step counter, so the coordinates agree
//! across ranks — which makes Random-k payloads *additive* (unlike Top-k)
//! even though the paper groups both under all-gather aggregation. Included
//! as the baseline the paper cites when noting Top-k converges better in
//! practice.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::compressor::Compressor;
use crate::payload::Payload;

/// Random-k sparsifying compressor with rank-agreed coordinates.
///
/// # Examples
///
/// ```
/// use acp_compression::{Compressor, RandomK};
///
/// let mut a = RandomK::new(2, 7);
/// let mut b = RandomK::new(2, 7);
/// let ga = a.compress(&[1.0, 2.0, 3.0, 4.0]);
/// let gb = b.compress(&[5.0, 6.0, 7.0, 8.0]);
/// // Same seed and step: both workers picked the same coordinates.
/// if let (acp_compression::Payload::Sparse { indices: ia, .. },
///         acp_compression::Payload::Sparse { indices: ib, .. }) = (&ga, &gb) {
///     assert_eq!(ia, ib);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RandomK {
    k: usize,
    seed: u64,
    step: u64,
}

impl RandomK {
    /// Creates a Random-k compressor keeping `k` coordinates; `seed` must be
    /// shared by all ranks for coordinate agreement.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        RandomK { k, seed, step: 0 }
    }

    /// The configured number of coordinates.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current step counter (advances on every [`Compressor::compress`]).
    pub fn step(&self) -> u64 {
        self.step
    }

    fn coordinates(&self, n: usize, step: u64) -> Vec<u32> {
        let k = self.k.min(n);
        // Derive a fresh stream per step so coordinates change over time but
        // agree across ranks.
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ step.wrapping_mul(0x9E3779B97F4A7C15));
        let mut all: Vec<u32> = (0..n as u32).collect();
        let (picked, _) = all.partial_shuffle(&mut rng, k);
        let mut idx = picked.to_vec();
        idx.sort_unstable();
        idx
    }
}

impl Compressor for RandomK {
    fn name(&self) -> &'static str {
        "randomk"
    }

    fn compress(&mut self, grad: &[f32]) -> Payload {
        let indices = self.coordinates(grad.len(), self.step);
        self.step += 1;
        let values = indices.iter().map(|&i| grad[i as usize]).collect();
        Payload::Sparse {
            indices,
            values,
            len: grad.len(),
        }
    }

    fn decompress(&self, payload: &Payload, out: &mut [f32]) {
        match payload {
            Payload::Sparse {
                indices,
                values,
                len,
            } => {
                assert_eq!(out.len(), *len, "output length mismatch");
                out.fill(0.0);
                for (&i, &v) in indices.iter().zip(values) {
                    out[i as usize] = v;
                }
            }
            // allow_verify(reason: contract panic on payload-kind mismatch, pinned by tests)
            _ => panic!("RandomK expects Payload::Sparse"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_step_same_coordinates() {
        let a = RandomK::new(5, 42).coordinates(100, 3);
        let b = RandomK::new(5, 42).coordinates(100, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn coordinates_change_across_steps() {
        let c = RandomK::new(5, 42);
        assert_ne!(c.coordinates(1000, 0), c.coordinates(1000, 1));
    }

    #[test]
    fn coordinates_are_unique_and_sorted() {
        let idx = RandomK::new(50, 9).coordinates(200, 0);
        assert_eq!(idx.len(), 50);
        for w in idx.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn step_advances_on_compress() {
        let mut c = RandomK::new(2, 1);
        assert_eq!(c.step(), 0);
        c.compress(&[1.0, 2.0, 3.0]);
        assert_eq!(c.step(), 1);
    }

    #[test]
    fn round_trip_keeps_selected_values() {
        let mut c = RandomK::new(3, 5);
        let grad = [1.0, 2.0, 3.0, 4.0];
        let p = c.compress(&grad);
        let mut out = vec![0.0; 4];
        c.decompress(&p, &mut out);
        // Selected coordinates preserved, others zero.
        let kept: usize = out.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(kept, 3);
        for (o, g) in out.iter().zip(&grad) {
            assert!(*o == 0.0 || o == g);
        }
    }

    #[test]
    fn k_capped_at_length() {
        let mut c = RandomK::new(10, 0);
        let rt = c.round_trip(&[1.0, 2.0]);
        assert_eq!(rt, vec![1.0, 2.0]);
    }
}
