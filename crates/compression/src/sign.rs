//! Sign-SGD with majority vote (Bernstein et al., ICML 2018).
//!
//! Each worker transmits only the signs of its gradient, bit-packed 32 to a
//! word — the 32× compression ratio of Table I. Signs are not additive
//! (+1 ⊕ +1 overflows the alphabet), so aggregation uses all-gather followed
//! by an element-wise **majority vote** across workers, exactly the scheme
//! the paper evaluates.

use crate::compressor::Compressor;
use crate::kernels;
use crate::payload::Payload;

/// Sign-SGD compressor.
///
/// With [`SignSgd::scaled`] the payload carries the mean absolute gradient
/// as a magnitude scale (the 1-bit-SGD-style variant that converges without
/// tuning the learning rate down); with plain signs the decode produces ±1.
///
/// # Examples
///
/// ```
/// use acp_compression::{Compressor, SignSgd};
///
/// let mut c = SignSgd::plain();
/// let rt = c.round_trip(&[0.3, -0.7, 0.0]);
/// assert_eq!(rt, vec![1.0, -1.0, 1.0]); // zero maps to +1
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignSgd {
    scaled: bool,
}

impl SignSgd {
    /// Pure sign compressor — decoded elements are ±1.
    pub fn plain() -> Self {
        SignSgd { scaled: false }
    }

    /// Magnitude-scaled variant — decoded elements are ±mean(|g|).
    pub fn scaled() -> Self {
        SignSgd { scaled: true }
    }

    /// Whether this instance scales decoded signs by the mean magnitude.
    pub fn is_scaled(&self) -> bool {
        self.scaled
    }

    /// Bit-packs the signs of `grad` (1 = non-negative).
    pub fn pack(grad: &[f32]) -> Vec<u32> {
        kernels::pack_signs(grad)
    }

    /// Reads the sign bit for element `i` from packed `words`.
    pub fn sign_at(words: &[u32], i: usize) -> f32 {
        if words[i / 32] >> (i % 32) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }

    /// Majority vote across `world_size` gathered payloads.
    ///
    /// `gathered` is the rank-order concatenation of every worker's packed
    /// words (as produced by an all-gather of [`Payload::Signs`] words);
    /// `scales` holds each worker's magnitude scale. The result for element
    /// `i` is `sign(Σ_w sign_w(i)) · mean(scales)`, the majority-vote rule
    /// of Bernstein et al. Ties (even world size) resolve to +1.
    ///
    /// # Panics
    ///
    /// Panics if `gathered.len()` is not `world_size` times the packed
    /// length for `len` elements, or `scales.len() != world_size`.
    pub fn majority_vote(
        gathered: &[u32],
        scales: &[f32],
        len: usize,
        world_size: usize,
        out: &mut [f32],
    ) {
        kernels::majority_vote_into(gathered, scales, len, world_size, out);
    }
}

impl Compressor for SignSgd {
    fn name(&self) -> &'static str {
        if self.scaled {
            "signsgd-scaled"
        } else {
            "signsgd"
        }
    }

    fn compress(&mut self, grad: &[f32]) -> Payload {
        let scale = if self.scaled && !grad.is_empty() {
            grad.iter().map(|g| g.abs()).sum::<f32>() / grad.len() as f32
        } else {
            1.0
        };
        Payload::Signs {
            words: Self::pack(grad),
            len: grad.len(),
            scale,
        }
    }

    fn decompress(&self, payload: &Payload, out: &mut [f32]) {
        match payload {
            Payload::Signs { words, len, scale } => {
                assert_eq!(out.len(), *len, "output length mismatch");
                kernels::unpack_signs_into(words, *scale, out);
            }
            // allow_verify(reason: contract panic on payload-kind mismatch, pinned by tests)
            _ => panic!("SignSgd expects Payload::Signs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        // IEEE: -0.0 >= 0.0 is true, so both zeros map to +1.
        let grad = [0.5, -0.25, 3.0, -0.0, 0.0, -7.0, 1e-9];
        let words = SignSgd::pack(&grad);
        let expect = [1.0, -1.0, 1.0, 1.0, 1.0, -1.0, 1.0];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(SignSgd::sign_at(&words, i), e, "element {i}");
        }
    }

    #[test]
    fn compression_ratio_is_32x() {
        let mut c = SignSgd::plain();
        let grad = vec![1.0f32; 4096];
        let p = c.compress(&grad);
        // 16384 bytes dense vs 512 + 8 header.
        assert!(p.compression_ratio() > 31.0);
    }

    #[test]
    fn scaled_variant_preserves_mean_magnitude() {
        let mut c = SignSgd::scaled();
        let grad = [2.0, -4.0, 6.0, -8.0];
        let rt = c.round_trip(&grad);
        assert_eq!(rt, vec![5.0, -5.0, 5.0, -5.0]);
    }

    #[test]
    fn majority_vote_three_workers() {
        let grads = [
            vec![1.0f32, -1.0, 1.0],
            vec![1.0f32, 1.0, -1.0],
            vec![-1.0f32, -1.0, -1.0],
        ];
        let words_per_rank = 1;
        let mut gathered = Vec::new();
        let mut scales = Vec::new();
        for g in &grads {
            gathered.extend(SignSgd::pack(g));
            scales.push(1.0);
        }
        assert_eq!(gathered.len(), 3 * words_per_rank);
        let mut out = vec![0.0; 3];
        SignSgd::majority_vote(&gathered, &scales, 3, 3, &mut out);
        assert_eq!(out, vec![1.0, -1.0, -1.0]);
    }

    #[test]
    fn majority_vote_tie_resolves_positive() {
        let gathered = [SignSgd::pack(&[1.0]), SignSgd::pack(&[-1.0])].concat();
        let mut out = vec![0.0; 1];
        SignSgd::majority_vote(&gathered, &[1.0, 1.0], 1, 2, &mut out);
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn majority_vote_averages_scales() {
        let gathered = [SignSgd::pack(&[1.0]), SignSgd::pack(&[1.0])].concat();
        let mut out = vec![0.0; 1];
        SignSgd::majority_vote(&gathered, &[2.0, 4.0], 1, 2, &mut out);
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn non_multiple_of_32_lengths() {
        let grad: Vec<f32> = (0..45)
            .map(|i| if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let mut c = SignSgd::plain();
        let rt = c.round_trip(&grad);
        for (i, v) in rt.iter().enumerate() {
            assert_eq!(*v, if i % 3 == 0 { -1.0 } else { 1.0 });
        }
    }

    #[test]
    fn tail_word_bits_round_trip_at_every_offset() {
        // Every length around the 32-bit word boundaries: the tail word
        // must carry exactly `len % 32` live bits and round-trip them.
        for len in [1usize, 5, 31, 32, 33, 63, 64, 65, 95, 96, 97] {
            let grad: Vec<f32> = (0..len)
                .map(|i| if (i * 7 + len) % 5 < 2 { -1.0 } else { 1.0 })
                .collect();
            let words = SignSgd::pack(&grad);
            assert_eq!(words.len(), len.div_ceil(32), "len {len}");
            // Unused tail bits stay zero (wire determinism).
            if len % 32 != 0 {
                let tail = words[len / 32];
                assert_eq!(tail >> (len % 32), 0, "tail garbage at len {len}");
            }
            let mut c = SignSgd::plain();
            let rt = c.round_trip(&grad);
            assert_eq!(rt, grad, "len {len}");
        }
    }

    #[test]
    fn tail_word_majority_vote_matches_scalar_reference() {
        use crate::kernels;
        for len in [33usize, 45, 65, 97] {
            for world in 2usize..=5 {
                let mut gathered = Vec::new();
                for w in 0..world {
                    let grad: Vec<f32> = (0..len)
                        .map(|i| if (i + w) % 3 == 0 { -1.0 } else { 1.0 })
                        .collect();
                    gathered.extend(SignSgd::pack(&grad));
                }
                let scales = vec![1.0f32; world];
                let mut fast = vec![0.0f32; len];
                let mut slow = vec![0.0f32; len];
                SignSgd::majority_vote(&gathered, &scales, len, world, &mut fast);
                kernels::reference::majority_vote_into(&gathered, &scales, len, world, &mut slow);
                assert_eq!(fast, slow, "len {len} world {world}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "expects Payload::Signs")]
    fn wrong_payload_panics() {
        let c = SignSgd::plain();
        let mut out = vec![0.0; 1];
        c.decompress(&Payload::Dense(vec![1.0]), &mut out);
    }
}
