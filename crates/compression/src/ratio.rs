//! Compression-ratio calculators behind Table I.
//!
//! The ratios combine a model's parameter shapes (supplied by `acp-models`
//! as [`MatrixShape`]s) with each method's encoding. Vector-shaped
//! parameters are transmitted uncompressed by the low-rank methods, which
//! is why Power-SGD's model-level ratio (67× for ResNet-50 at rank 4) is
//! far below its per-matrix ratio.

use acp_tensor::MatrixShape;

/// Sign-SGD's model-level compression ratio: 1 bit per element ⇒ 32×.
pub fn sign_sgd_ratio() -> f64 {
    32.0
}

/// Top-k's model-level compression ratio at selection density `density`
/// (e.g. `0.001` for 0.1%).
///
/// Transmits `k` values and `k` indices, so the ratio is `1 / (2·density)`
/// — the paper's optimistic "1000×" counts values only; both conventions
/// are used in the literature, and [`topk_ratio_values_only`] provides the
/// paper's.
///
/// # Panics
///
/// Panics if `density` is not in `(0, 1]`.
pub fn topk_ratio(density: f64) -> f64 {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    1.0 / (2.0 * density)
}

/// Top-k ratio counting transmitted values only (the paper's convention:
/// 0.1% density ⇒ 1000×).
///
/// # Panics
///
/// Panics if `density` is not in `(0, 1]`.
pub fn topk_ratio_values_only(density: f64) -> f64 {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    1.0 / density
}

/// Power-SGD / ACP-SGD model-level compression ratio at rank `rank` over
/// the given parameter shapes.
///
/// Matrix-shaped parameters of `n × m` send `(n + m)·r` elements (both
/// factors); vectors are sent uncompressed. ACP-SGD sends one factor per
/// step — its *amortized per-step* traffic is half this, which
/// [`acp_sgd_per_step_elements`] exposes — but the information transmitted
/// per model update matches Power-SGD, so Table I reports one ratio.
pub fn low_rank_ratio<I>(shapes: I, rank: usize) -> f64
where
    I: IntoIterator<Item = MatrixShape>,
{
    let mut dense = 0usize;
    let mut compressed = 0usize;
    for shape in shapes {
        dense += shape.numel();
        compressed += match shape.low_rank_numel(rank) {
            Some((p, q)) => p + q,
            None => shape.numel(),
        };
    }
    dense as f64 / compressed.max(1) as f64
}

/// Elements a Power-SGD worker transmits per iteration (both factors plus
/// uncompressed vectors).
pub fn power_sgd_per_step_elements<I>(shapes: I, rank: usize) -> usize
where
    I: IntoIterator<Item = MatrixShape>,
{
    shapes
        .into_iter()
        .map(|s| match s.low_rank_numel(rank) {
            Some((p, q)) => p + q,
            None => s.numel(),
        })
        .sum()
}

/// Elements an ACP-SGD worker transmits per iteration, amortized over a
/// P-step and a Q-step: `((n + m)·r)/2` per matrix plus uncompressed
/// vectors — half of Power-SGD's factor traffic.
pub fn acp_sgd_per_step_elements<I>(shapes: I, rank: usize) -> f64
where
    I: IntoIterator<Item = MatrixShape>,
{
    shapes
        .into_iter()
        .map(|s| match s.low_rank_numel(rank) {
            Some((p, q)) => (p + q) as f64 / 2.0,
            None => s.numel() as f64,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_is_32x() {
        assert_eq!(sign_sgd_ratio(), 32.0);
    }

    #[test]
    fn topk_conventions() {
        assert_eq!(topk_ratio(0.001), 500.0);
        assert_eq!(topk_ratio_values_only(0.001), 1000.0);
    }

    #[test]
    fn low_rank_ratio_pure_matrix() {
        // 1000 x 1000 at rank 4: 1e6 / 8000 = 125x.
        let shapes = [MatrixShape::Matrix {
            rows: 1000,
            cols: 1000,
        }];
        assert!((low_rank_ratio(shapes, 4) - 125.0).abs() < 1e-9);
    }

    #[test]
    fn vectors_dilute_the_ratio() {
        let shapes = [
            MatrixShape::Matrix {
                rows: 1000,
                cols: 1000,
            },
            MatrixShape::Vector { len: 100_000 },
        ];
        let r = low_rank_ratio(shapes, 4);
        // 1.1e6 dense vs 8000 + 100000 = 108000: ≈ 10.2x, well below 125x.
        assert!(r < 15.0 && r > 5.0, "ratio {r}");
    }

    #[test]
    fn acp_per_step_is_half_of_power_for_matrices() {
        let shapes = [MatrixShape::Matrix { rows: 64, cols: 64 }];
        let power = power_sgd_per_step_elements(shapes, 4) as f64;
        let acp = acp_sgd_per_step_elements(shapes, 4);
        assert_eq!(acp, power / 2.0);
    }

    #[test]
    fn vectors_not_halved_for_acp() {
        let shapes = [MatrixShape::Vector { len: 100 }];
        assert_eq!(acp_sgd_per_step_elements(shapes, 4), 100.0);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn bad_density_panics() {
        topk_ratio(0.0);
    }
}
