//! Structured errors for the fallible compressor entry points.

use std::fmt;

use acp_tensor::MatrixError;

/// Error returned by the fallible low-rank compressor entry points
/// (`try_compute_p`, `try_compress`, `try_finish`, …).
///
/// The infallible legacy methods panic with exactly the [`fmt::Display`]
/// rendering of these variants, so the two surfaces stay consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// A matrix multiplication inside the compressor was fed incompatible
    /// dimensions.
    Matrix(MatrixError),
    /// A state-machine method was called out of protocol order.
    Phase {
        /// The protocol violation, e.g. `"compute_p called out of order"`.
        what: &'static str,
    },
    /// A gradient or aggregated factor arrived with the wrong shape.
    Shape {
        /// What was mis-shaped, e.g. `"gradient shape changed"`.
        what: &'static str,
        /// The shape the state machine was constructed for.
        expected: (usize, usize),
        /// The shape actually supplied.
        actual: (usize, usize),
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Matrix(e) => write!(f, "{e}"),
            CompressError::Phase { what } => write!(f, "{what}"),
            CompressError::Shape {
                what,
                expected,
                actual,
            } => write!(
                f,
                "{what}: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
        }
    }
}

impl std::error::Error for CompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for CompressError {
    fn from(e: MatrixError) -> Self {
        CompressError::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_legacy_panic_messages() {
        let phase = CompressError::Phase {
            what: "compute_p called out of order",
        };
        assert_eq!(phase.to_string(), "compute_p called out of order");
        let shape = CompressError::Shape {
            what: "gradient shape changed",
            expected: (4, 4),
            actual: (4, 5),
        };
        assert_eq!(
            shape.to_string(),
            "gradient shape changed: expected 4x4, got 4x5"
        );
        let m = CompressError::from(MatrixError::DimMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (2, 3),
        });
        assert!(m.to_string().contains("matmul"));
        assert!(std::error::Error::source(&m).is_some());
    }
}
