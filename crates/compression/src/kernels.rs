//! Vectorizable, pool-parallel inner loops for the compressor hot paths.
//!
//! Three rules shape everything in this module:
//!
//! 1. **Branchless inner loops.** Sign packing, majority voting and
//!    quantization are rewritten as straight-line mask/select arithmetic so
//!    the compiler can autovectorize them (`std::simd` is not available on
//!    stable; hand-tiled loops over fixed-width blocks get the same codegen).
//! 2. **Bitwise identity.** Every kernel produces exactly the bytes of the
//!    retained scalar implementation in [`mod@reference`] — including for
//!    `-0.0`, infinities and NaN inputs where the scalar code had defined
//!    behaviour. Reductions that feed floating-point results (bucket norms,
//!    scale means) stay strictly sequential. The `kernel_identity` proptests
//!    pin this across odd lengths and world sizes 2–8.
//! 3. **Fixed partitioning.** Pool parallelism only ever splits *disjoint
//!    output ranges* with a fixed boundary rule; no parallel folds exist, so
//!    overlapped execution is bitwise-identical to blocking execution.
//!
//! Top-k ordering uses the monotone bit trick: for any non-negative float
//! (and `|g|` is one, apart from NaN), the IEEE-754 bit pattern ordered as
//! an unsigned integer equals the numeric order, and NaN payloads sort
//! deterministically *above* infinity. [`abs_key`] is therefore a total
//! order on magnitudes — the fix for the NaN-unsafe `partial_cmp`
//! comparators that could make ranks disagree on selected indices.

use acp_tensor::pool::{chunks_for, global_for};

/// Total-order sort key for `|g|`: strips the sign bit and compares the
/// remaining bits as an integer. Equal to `f32::total_cmp` on `g.abs()`,
/// with NaNs ordered deterministically above every finite value and `±0.0`
/// mapping to the same key.
#[inline]
pub fn abs_key(g: f32) -> u32 {
    g.to_bits() & 0x7fff_ffff
}

/// Fills `keys[i] = abs_key(grad[i])` (pool-parallel for large inputs).
pub fn abs_keys(grad: &[f32]) -> Vec<u32> {
    let mut keys = vec![0u32; grad.len()];
    let pool = global_for(grad.len());
    let chunks = chunks_for(pool, grad.len());
    pool.for_each_unit_chunk_mut(&mut keys, 1, chunks, |start, piece| {
        let n = piece.len();
        for (k, &g) in piece.iter_mut().zip(&grad[start..start + n]) {
            *k = abs_key(g);
        }
    });
    keys
}

/// Indices of the `k` largest-magnitude elements, ascending.
///
/// Magnitudes are compared through [`abs_key`], so selection is a total
/// order: ties keep the unstable-partition behaviour of the scalar
/// reference, and NaN elements rank above everything instead of poisoning
/// the comparator. Selection is partition-bound, so this matches rather
/// than beats the scalar reference's throughput — the kernel's point is
/// the total order, and the comparator sequence is identical to the
/// reference's, so both return the same set even at tie boundaries.
pub fn select_topk(grad: &[f32], k: usize) -> Vec<u32> {
    let k = k.min(grad.len());
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u32> = (0..grad.len() as u32).collect();
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        abs_key(grad[b as usize]).cmp(&abs_key(grad[a as usize]))
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Bit-packs signs of one ≤32-element block (bit `j` = 1 when
/// `block[j] >= 0.0`, so `-0.0` packs as positive and NaN as negative,
/// matching the scalar reference).
#[inline]
fn pack_word(block: &[f32]) -> u32 {
    let mut bits = 0u32;
    if let Ok(arr) = <&[f32; 32]>::try_from(block) {
        // Fixed-width block: branchless compare-mask-shift, autovectorizes.
        for (j, &g) in arr.iter().enumerate() {
            bits |= u32::from(g >= 0.0) << j;
        }
    } else {
        for (j, &g) in block.iter().enumerate() {
            bits |= u32::from(g >= 0.0) << j;
        }
    }
    bits
}

/// Bit-packs the signs of `grad`, 32 per word; unused tail bits are zero.
///
/// # Panics
///
/// Panics if `words.len() != grad.len().div_ceil(32)`.
pub fn pack_signs_into(grad: &[f32], words: &mut [u32]) {
    let len = grad.len();
    assert_eq!(words.len(), len.div_ceil(32), "packed length mismatch");
    let pool = global_for(len);
    let chunks = chunks_for(pool, len);
    pool.for_each_unit_chunk_mut(words, 1, chunks, |w0, piece| {
        for (wi, w) in piece.iter_mut().enumerate() {
            let start = (w0 + wi) * 32;
            let end = (start + 32).min(len);
            *w = pack_word(&grad[start..end]);
        }
    });
}

/// Allocating convenience wrapper over [`pack_signs_into`].
pub fn pack_signs(grad: &[f32]) -> Vec<u32> {
    let mut words = vec![0u32; grad.len().div_ceil(32)];
    pack_signs_into(grad, &mut words);
    words
}

/// Expands packed sign words into `out[i] = ±1.0 * scale`, word-driven
/// (one load and a branchless select per element instead of the scalar
/// div/mod/branch per element).
///
/// # Panics
///
/// Panics if `words` is shorter than `out.len().div_ceil(32)`.
pub fn unpack_signs_into(words: &[u32], scale: f32, out: &mut [f32]) {
    let len = out.len();
    assert!(words.len() >= len.div_ceil(32), "packed length mismatch");
    let pool = global_for(len);
    let chunks = chunks_for(pool, len);
    let main = len - len % 32;
    pool.for_each_unit_chunk_mut(&mut out[..main], 32, chunks, |u0, piece| {
        for (ui, ochunk) in piece.chunks_exact_mut(32).enumerate() {
            let w = words[u0 + ui];
            for (j, o) in ochunk.iter_mut().enumerate() {
                // Same arithmetic as the scalar `sign_at(..) * scale`.
                let s = if w >> j & 1 == 1 { 1.0f32 } else { -1.0 };
                *o = s * scale;
            }
        }
    });
    for (i, o) in out.iter_mut().enumerate().skip(main) {
        let s = if words[i / 32] >> (i % 32) & 1 == 1 {
            1.0f32
        } else {
            -1.0
        };
        *o = s * scale;
    }
}

/// Highest rank count the bit-sliced vote kernel supports; larger worlds
/// fall back to [`reference::majority_vote_into`].
const MAX_CSA_WORLD: usize = 255;

/// Bit-sliced majority vote over one packed word position.
///
/// Accumulates the per-bit-position popcount across ranks into eight
/// carry-save bit planes (32 independent 8-bit counters in bitwise
/// arithmetic), then compares every counter against `threshold` with a
/// bitwise borrow chain. Returns a word whose bit `j` is 1 iff at least
/// `threshold` ranks voted positive at position `j`.
#[inline]
fn vote_word(gathered: &[u32], wpr: usize, world_size: usize, wi: usize, threshold: u32) -> u32 {
    let mut planes = [0u32; 8];
    for w in 0..world_size {
        let mut carry = gathered[w * wpr + wi];
        for p in planes.iter_mut() {
            if carry == 0 {
                break;
            }
            let t = *p & carry;
            *p ^= carry;
            carry = t;
        }
    }
    // Borrow chain of (count - threshold) per bit position; a final borrow
    // means count < threshold.
    let mut borrow = 0u32;
    for (b, &p) in planes.iter().enumerate() {
        let t = if threshold >> b & 1 == 1 { !0u32 } else { 0 };
        borrow = (!p & t) | (!(p ^ t) & borrow);
    }
    !borrow
}

/// Majority vote across `world_size` gathered sign payloads — the
/// bit-sliced counterpart of [`reference::majority_vote_into`], producing
/// identical bytes: element `i` becomes `mean(scales)` when at least half
/// the ranks (ties included) voted positive, `-mean(scales)` otherwise.
///
/// # Panics
///
/// Panics if `gathered.len()` is not `world_size` times the packed length
/// for `len` elements, `scales.len() != world_size`, or `out.len() != len`.
pub fn majority_vote_into(
    gathered: &[u32],
    scales: &[f32],
    len: usize,
    world_size: usize,
    out: &mut [f32],
) {
    if world_size > MAX_CSA_WORLD {
        return reference::majority_vote_into(gathered, scales, len, world_size, out);
    }
    let wpr = len.div_ceil(32);
    assert_eq!(gathered.len(), wpr * world_size, "gathered length mismatch");
    assert_eq!(scales.len(), world_size, "scales length mismatch");
    assert_eq!(out.len(), len, "output length mismatch");
    // Sequential sum: byte-identical to the scalar reference.
    let mean_scale = scales.iter().sum::<f32>() / world_size as f32;
    // `vote >= 0` ⟺ positives ≥ ceil(world/2) = world − world/2.
    let threshold = (world_size - world_size / 2) as u32;
    let mut voted = vec![0u32; wpr];
    let pool = global_for(len * world_size.max(1));
    let chunks = chunks_for(pool, len);
    pool.for_each_unit_chunk_mut(&mut voted, 1, chunks, |w0, piece| {
        for (wi, v) in piece.iter_mut().enumerate() {
            *v = vote_word(gathered, wpr, world_size, w0 + wi, threshold);
        }
    });
    let main = len - len % 32;
    pool.for_each_unit_chunk_mut(&mut out[..main], 32, chunks, |u0, piece| {
        for (ui, ochunk) in piece.chunks_exact_mut(32).enumerate() {
            let w = voted[u0 + ui];
            for (j, o) in ochunk.iter_mut().enumerate() {
                *o = if w >> j & 1 == 1 {
                    mean_scale
                } else {
                    -mean_scale
                };
            }
        }
    });
    for (i, o) in out.iter_mut().enumerate().skip(main) {
        *o = if voted[i / 32] >> (i % 32) & 1 == 1 {
            mean_scale
        } else {
            -mean_scale
        };
    }
}

/// Stochastically quantizes one bucket: `out[i]` is the signed level of
/// `chunk[i]` against `norm` with `levels` steps per sign, using the
/// pre-drawn uniforms in `rand` (one per element, drawn in element order so
/// the RNG stream matches the scalar reference exactly).
///
/// The caller has already handled the `norm == 0` bucket.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn quantize_chunk_into(chunk: &[f32], norm: f32, levels: u8, rand: &[f32], out: &mut [i8]) {
    assert_eq!(chunk.len(), rand.len(), "rand length mismatch");
    assert_eq!(chunk.len(), out.len(), "output length mismatch");
    let s = levels as f32;
    let max = levels as i32;
    for ((o, &g), &r) in out.iter_mut().zip(chunk).zip(rand) {
        let x = g.abs() / norm * s; // in [0, s]
        let floor = x.floor();
        let frac = x - floor;
        let level = (floor as i32 + i32::from(r < frac)).min(max);
        *o = if g < 0.0 { -(level as i8) } else { level as i8 };
    }
}

/// Dequantizes levels into `out[i] = levels[i] / s * scale`, pool-parallel
/// for large payloads.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn dequantize_into(levels: &[i8], num_levels: u8, scale: f32, out: &mut [f32]) {
    assert_eq!(out.len(), levels.len(), "output length mismatch");
    let s = num_levels as f32;
    let pool = global_for(levels.len());
    let chunks = chunks_for(pool, levels.len());
    pool.for_each_unit_chunk_mut(out, 1, chunks, |start, piece| {
        let n = piece.len();
        for (o, &l) in piece.iter_mut().zip(&levels[start..start + n]) {
            *o = l as f32 / s * scale;
        }
    });
}

/// The retained scalar reference implementations.
///
/// These are the pre-vectorization loops, kept as the byte-identity oracle
/// for the kernels above and as the scalar baseline the criterion benches
/// (`BENCH_kernels.json`) measure speedups against. Do not "optimize" them.
pub mod reference {
    /// Scalar sign packing: one branch per element.
    pub fn pack_signs(grad: &[f32]) -> Vec<u32> {
        let mut words = vec![0u32; grad.len().div_ceil(32)];
        for (i, &g) in grad.iter().enumerate() {
            if g >= 0.0 {
                words[i / 32] |= 1 << (i % 32);
            }
        }
        words
    }

    /// Scalar sign expansion: div/mod/branch per element.
    pub fn unpack_signs_into(words: &[u32], scale: f32, out: &mut [f32]) {
        for (i, o) in out.iter_mut().enumerate() {
            let s = if words[i / 32] >> (i % 32) & 1 == 1 {
                1.0f32
            } else {
                -1.0
            };
            *o = s * scale;
        }
    }

    /// Scalar majority vote: a rank-loop with a signed counter per element.
    ///
    /// # Panics
    ///
    /// Panics on the same length mismatches as the vectorized kernel.
    pub fn majority_vote_into(
        gathered: &[u32],
        scales: &[f32],
        len: usize,
        world_size: usize,
        out: &mut [f32],
    ) {
        let words_per_rank = len.div_ceil(32);
        assert_eq!(
            gathered.len(),
            words_per_rank * world_size,
            "gathered length mismatch"
        );
        assert_eq!(scales.len(), world_size, "scales length mismatch");
        assert_eq!(out.len(), len, "output length mismatch");
        let mean_scale = scales.iter().sum::<f32>() / world_size as f32;
        for (i, o) in out.iter_mut().enumerate() {
            let mut vote = 0i32;
            for w in 0..world_size {
                let word = gathered[w * words_per_rank + i / 32];
                vote += if word >> (i % 32) & 1 == 1 { 1 } else { -1 };
            }
            *o = if vote >= 0 { mean_scale } else { -mean_scale };
        }
    }

    /// Scalar stochastic quantization of one bucket (uniforms pre-drawn in
    /// element order, exactly like the vectorized kernel).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    pub fn quantize_chunk_into(chunk: &[f32], norm: f32, levels: u8, rand: &[f32], out: &mut [i8]) {
        assert_eq!(chunk.len(), rand.len(), "rand length mismatch");
        assert_eq!(chunk.len(), out.len(), "output length mismatch");
        let s = levels as f32;
        for ((o, &g), &r) in out.iter_mut().zip(chunk).zip(rand) {
            let x = g.abs() / norm * s;
            let floor = x.floor();
            let frac = x - floor;
            let level = floor as i32 + i32::from(r < frac);
            let level = level.min(levels as i32);
            *o = if g < 0.0 { -(level as i8) } else { level as i8 };
        }
    }

    /// Scalar dequantization.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    pub fn dequantize_into(levels: &[i8], num_levels: u8, scale: f32, out: &mut [f32]) {
        assert_eq!(out.len(), levels.len(), "output length mismatch");
        let s = num_levels as f32;
        for (o, &l) in out.iter_mut().zip(levels) {
            *o = l as f32 / s * scale;
        }
    }

    /// Scalar top-k selection over the same total magnitude order as
    /// [`super::select_topk`] (`total_cmp` on `|g|`).
    pub fn select_topk(grad: &[f32], k: usize) -> Vec<u32> {
        let k = k.min(grad.len());
        if k == 0 {
            return Vec::new();
        }
        let mut idx: Vec<u32> = (0..grad.len() as u32).collect();
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            grad[b as usize].abs().total_cmp(&grad[a as usize].abs())
        });
        idx.truncate(k);
        idx.sort_unstable();
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic sign-varied data with the awkward values mixed in.
    fn awkward(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                match state % 11 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f32::NAN,
                    3 => f32::INFINITY,
                    4 => f32::NEG_INFINITY,
                    _ => (state as f32 / u32::MAX as f32 - 0.5) * 20.0,
                }
            })
            .collect()
    }

    #[test]
    fn pack_matches_reference_across_odd_lengths() {
        for len in [0, 1, 31, 32, 33, 45, 63, 64, 65, 100, 1023] {
            let grad = awkward(len, len as u32 + 1);
            assert_eq!(pack_signs(&grad), reference::pack_signs(&grad), "len {len}");
        }
    }

    #[test]
    fn unpack_matches_reference_across_odd_lengths() {
        for len in [1usize, 31, 32, 33, 45, 97, 256, 300] {
            let grad = awkward(len, 7 * len as u32);
            let words = reference::pack_signs(&grad);
            let mut fast = vec![0.0f32; len];
            let mut slow = vec![0.0f32; len];
            unpack_signs_into(&words, 0.75, &mut fast);
            reference::unpack_signs_into(&words, 0.75, &mut slow);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&fast), bits(&slow), "len {len}");
        }
    }

    #[test]
    fn vote_matches_reference_worlds_2_to_8() {
        for world in 2usize..=8 {
            for len in [1usize, 31, 33, 64, 65, 100] {
                let wpr = len.div_ceil(32);
                let mut gathered = Vec::with_capacity(world * wpr);
                let mut scales = Vec::with_capacity(world);
                for w in 0..world {
                    let grad = awkward(len, (w * 31 + len) as u32 + 3);
                    gathered.extend(reference::pack_signs(&grad));
                    scales.push(0.25 + w as f32);
                }
                let mut fast = vec![0.0f32; len];
                let mut slow = vec![0.0f32; len];
                majority_vote_into(&gathered, &scales, len, world, &mut fast);
                reference::majority_vote_into(&gathered, &scales, len, world, &mut slow);
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&fast), bits(&slow), "world {world} len {len}");
            }
        }
    }

    #[test]
    fn vote_word_counts_exactly() {
        // Exhaustive per-position check at a word boundary: every
        // positive-count from 0..=world against every threshold.
        for world in 1usize..=9 {
            for positives in 0..=world {
                let mut gathered = Vec::new();
                for w in 0..world {
                    gathered.push(if w < positives { 1u32 } else { 0 });
                }
                let threshold = (world - world / 2) as u32;
                let bit = vote_word(&gathered, 1, world, 0, threshold) & 1;
                let expected = u32::from(positives >= world - world / 2);
                assert_eq!(bit, expected, "world {world} positives {positives}");
            }
        }
    }

    #[test]
    fn quantize_matches_reference() {
        for len in [1usize, 33, 64, 511, 512, 513] {
            let chunk = awkward(len, 17 + len as u32);
            let rand: Vec<f32> = (0..len).map(|i| (i as f32 * 0.137) % 1.0).collect();
            let norm = chunk
                .iter()
                .map(|g| if g.is_finite() { g * g } else { 1.0 })
                .sum::<f32>()
                .sqrt()
                .max(1e-3);
            let mut fast = vec![0i8; len];
            let mut slow = vec![0i8; len];
            quantize_chunk_into(&chunk, norm, 4, &rand, &mut fast);
            reference::quantize_chunk_into(&chunk, norm, 4, &rand, &mut slow);
            assert_eq!(fast, slow, "len {len}");
        }
    }

    #[test]
    fn dequantize_matches_reference() {
        let levels: Vec<i8> = (0..1000).map(|i| ((i * 7) % 9 - 4) as i8).collect();
        let mut fast = vec![0.0f32; levels.len()];
        let mut slow = vec![0.0f32; levels.len()];
        dequantize_into(&levels, 4, 0.37, &mut fast);
        reference::dequantize_into(&levels, 4, 0.37, &mut slow);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn select_topk_matches_reference_with_nans() {
        for len in [1usize, 10, 64, 333] {
            let grad = awkward(len, 23 + len as u32);
            for k in [1usize, 2, len / 2 + 1, len] {
                assert_eq!(
                    select_topk(&grad, k),
                    reference::select_topk(&grad, k),
                    "len {len} k {k}"
                );
            }
        }
    }

    #[test]
    fn abs_key_orders_like_total_cmp_on_abs() {
        let vals = [
            0.0f32,
            -0.0,
            1.0e-40, // subnormal
            -1.0e-40,
            0.5,
            -0.5,
            1.0,
            f32::MAX,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    abs_key(a).cmp(&abs_key(b)),
                    a.abs().total_cmp(&b.abs()),
                    "{a} vs {b}"
                );
            }
        }
    }
}
