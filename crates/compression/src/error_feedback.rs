//! Error feedback (EF) for biased compressors (Seide et al. 2014;
//! Karimireddy et al., ICML 2019).
//!
//! Biased compressors (Sign, Top-k, low-rank) drop part of the gradient
//! every step; error feedback accumulates what was dropped and re-injects
//! it into the next step's gradient, which restores convergence (the
//! paper's Fig. 7 ablation). This module provides the residual bookkeeping
//! as a wrapper usable with any [`Compressor`]; the low-rank state machines
//! in [`crate::powersgd`] and [`crate::acp`] carry their own matrix-shaped
//! residuals following Algorithm 2.

use crate::compressor::Compressor;
use crate::payload::Payload;

/// Wraps a [`Compressor`] with an error-feedback residual.
///
/// On each call the residual is added to the incoming gradient before
/// compression, and updated to the part of the corrected gradient the
/// compressed payload fails to represent:
///
/// ```text
/// g'  = g + e
/// c   = compress(g')
/// e  ← g' − decompress(c)
/// ```
///
/// # Examples
///
/// ```
/// use acp_compression::{Compressor, ErrorFeedback, TopK};
///
/// let mut ef = ErrorFeedback::new(TopK::new(1));
/// // First step drops the small element…
/// ef.compress(&[1.0, 0.4]);
/// // …which is fed back; after enough steps everything is transmitted.
/// let p = ef.compress(&[1.0, 0.4]);
/// # let _ = p;
/// assert!(ef.residual_norm() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ErrorFeedback<C> {
    inner: C,
    residual: Vec<f32>,
}

impl<C: Compressor> ErrorFeedback<C> {
    /// Wraps `inner` with a fresh (zero) residual.
    pub fn new(inner: C) -> Self {
        ErrorFeedback {
            inner,
            residual: Vec::new(),
        }
    }

    /// Borrows the wrapped compressor.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped compressor.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// L2 norm of the current residual (0 before the first compression).
    pub fn residual_norm(&self) -> f32 {
        self.residual.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Resets the residual to zero.
    pub fn reset(&mut self) {
        self.residual.fill(0.0);
    }
}

impl<C: Compressor> Compressor for ErrorFeedback<C> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn compress(&mut self, grad: &[f32]) -> Payload {
        if self.residual.len() != grad.len() {
            self.residual = vec![0.0; grad.len()];
        }
        // g' = g + e
        let corrected: Vec<f32> = grad
            .iter()
            .zip(&self.residual)
            .map(|(g, e)| g + e)
            .collect();
        let payload = self.inner.compress(&corrected);
        // e <- g' - decompress(c)
        let mut approx = vec![0.0; grad.len()];
        self.inner.decompress(&payload, &mut approx);
        for ((e, c), a) in self.residual.iter_mut().zip(&corrected).zip(&approx) {
            *e = c - a;
        }
        payload
    }

    fn decompress(&self, payload: &Payload, out: &mut [f32]) {
        self.inner.decompress(payload, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sign::SignSgd;
    use crate::topk::TopK;

    #[test]
    fn residual_captures_dropped_mass() {
        let mut ef = ErrorFeedback::new(TopK::new(1));
        ef.compress(&[3.0, 1.0]);
        // Top-1 keeps 3.0; residual = [0, 1.0].
        assert!((ef.residual_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn feedback_eventually_transmits_small_elements() {
        // A constant gradient where one coordinate is always dominated:
        // without EF the small coordinate is never sent; with EF its
        // residual accumulates until it wins the Top-1 selection.
        let mut ef = ErrorFeedback::new(TopK::new(1));
        let grad = [1.0f32, 0.4];
        let mut transmitted_small = false;
        for _ in 0..10 {
            let p = ef.compress(&grad);
            if let Payload::Sparse { indices, .. } = &p {
                if indices.contains(&1) {
                    transmitted_small = true;
                }
            }
        }
        assert!(
            transmitted_small,
            "EF never let the small coordinate through"
        );
    }

    #[test]
    fn without_feedback_small_element_starves() {
        let mut c = TopK::new(1);
        let grad = [1.0f32, 0.4];
        for _ in 0..10 {
            let p = c.compress(&grad);
            if let Payload::Sparse { indices, .. } = &p {
                assert_eq!(indices, &vec![0u32]);
            }
        }
    }

    #[test]
    fn cumulative_transmission_tracks_true_sum() {
        // Over T steps, sum of decompressed payloads + final residual must
        // equal the sum of true gradients exactly (EF bookkeeping identity).
        let mut ef = ErrorFeedback::new(TopK::new(2));
        let grads = [
            vec![0.5f32, -1.0, 0.25, 2.0],
            vec![1.5f32, 0.3, -0.75, 0.1],
            vec![-0.2f32, 0.8, 0.6, -0.4],
        ];
        let mut sent_sum = vec![0.0f32; 4];
        let mut true_sum = [0.0f32; 4];
        for g in &grads {
            let p = ef.compress(g);
            let mut dec = vec![0.0; 4];
            ef.decompress(&p, &mut dec);
            for i in 0..4 {
                sent_sum[i] += dec[i];
                true_sum[i] += g[i];
            }
        }
        // true_sum = sent_sum + residual
        let residual: Vec<f32> = true_sum.iter().zip(&sent_sum).map(|(t, s)| t - s).collect();
        let res_norm: f32 = residual.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((res_norm - ef.residual_norm()).abs() < 1e-5);
    }

    #[test]
    fn reset_clears_residual() {
        let mut ef = ErrorFeedback::new(SignSgd::scaled());
        ef.compress(&[1.0, -2.0, 3.0]);
        assert!(ef.residual_norm() > 0.0);
        ef.reset();
        assert_eq!(ef.residual_norm(), 0.0);
    }

    #[test]
    fn residual_resizes_with_gradient() {
        let mut ef = ErrorFeedback::new(TopK::new(1));
        ef.compress(&[1.0, 2.0]);
        ef.compress(&[1.0, 2.0, 3.0, 4.0]);
        // No panic: residual resized; norm reflects new shape.
        assert!(ef.residual_norm() >= 0.0);
    }
}
