//! ACP-SGD: alternate compressed Power-SGD — the paper's contribution
//! (Algorithms 1–2).
//!
//! Instead of computing and aggregating *both* low-rank factors every
//! iteration, ACP-SGD alternates: odd steps compress the gradient into `P`
//! (reusing the previous `Q`), even steps into `Q` (reusing the previous
//! aggregated `P`):
//!
//! ```text
//! odd t:  Q_t ← orthogonalize(Q_{t−1})        even t: P_t ← orthogonalize(P_{t−1})
//!         P_t ← (M + E) Q_t                           Q_t ← (M + E)ᵀ P_t
//!         E  ← (M + E) − P_t Q_tᵀ                     E  ← (M + E) − P_t Q_tᵀ
//!         P_t ← all-reduce(P_t)                       Q_t ← all-reduce(Q_t)
//!         M̂  ← P̂_t Q_tᵀ                               M̂  ← P_t Q̂_tᵀ
//! ```
//!
//! Two consecutive ACP-SGD steps perform one full power iteration, so the
//! approximation quality tracks Power-SGD (the gradient changes slowly
//! between steps — query reuse). The system consequences are the point:
//!
//! * **one** all-reduce per step instead of two — half the communication;
//! * **one** matmul + **one** orthogonalization — half the compression
//!   compute;
//! * the all-reduce depends on nothing downstream — *non-blocking*, so
//!   wait-free back-propagation and tensor fusion apply exactly as in
//!   S-SGD.

use acp_tensor::{Matrix, OrthoMethod, SeedableStdNormal};

use serde::{Deserialize, Serialize};

use crate::error::CompressError;

/// Salt xor-ed into the seed for `P₀` so it is decorrelated from `Q₀`.
const P_SEED_SALT: u64 = 0xAC9_57D;

/// Configuration for [`AcpSgd`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcpSgdConfig {
    /// Rank `r` of the factors.
    pub rank: usize,
    /// Maintain the error-feedback residual (Algorithm 2); disabling it
    /// reproduces the poor convergence of Fig. 7.
    pub error_feedback: bool,
    /// Reuse the previous factor as the power-iteration query; disabling
    /// draws a fresh random query each step (Fig. 7 ablation).
    pub reuse: bool,
    /// Orthogonalization kernel.
    #[serde(skip)]
    pub ortho: OrthoMethod,
    /// Seed for the rank-shared random initialization of `P₀`, `Q₀`.
    pub seed: u64,
}

impl Default for AcpSgdConfig {
    fn default() -> Self {
        AcpSgdConfig {
            rank: 4,
            error_feedback: true,
            reuse: true,
            ortho: OrthoMethod::GramSchmidt,
            seed: 42,
        }
    }
}

/// Which factor a step transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FactorSide {
    /// The `n × r` left factor (odd steps).
    P,
    /// The `m × r` right factor (even steps).
    Q,
}

/// Per-gradient-matrix ACP-SGD compression state.
///
/// Protocol per step: [`AcpSgd::compress`] returns the factor to all-reduce
/// (with mean); [`AcpSgd::finish`] consumes the aggregated factor and
/// returns the decompressed gradient. Exactly one collective per step.
///
/// # Examples
///
/// ```
/// use acp_compression::acp::{AcpSgd, AcpSgdConfig, FactorSide};
/// use acp_tensor::{Matrix, SeedableStdNormal};
///
/// let grad = Matrix::random_std_normal(10, 6, 2);
/// let mut acp = AcpSgd::new(10, 6, AcpSgdConfig { rank: 2, ..Default::default() });
/// assert_eq!(acp.next_side(), FactorSide::P);
/// let p = acp.compress(&grad);
/// assert_eq!((p.rows(), p.cols()), (10, 2));
/// let approx = acp.finish(p); // world size 1: all-reduce = identity
/// assert_eq!(acp.next_side(), FactorSide::Q);
/// # let _ = approx;
/// ```
#[derive(Debug, Clone)]
pub struct AcpSgd {
    n: usize,
    m: usize,
    rank: usize,
    cfg: AcpSgdConfig,
    /// Left factor from the last P-step (aggregated, consistent across
    /// ranks).
    p: Matrix,
    /// Right factor from the last Q-step (aggregated, consistent across
    /// ranks).
    q: Matrix,
    /// Error-feedback residual when enabled.
    error: Option<Matrix>,
    /// Completed steps; step `t = step + 1` is odd ⇒ P side.
    step: u64,
    /// Orthogonalized query cached between compress and finish.
    query: Option<Matrix>,
    mid_step: bool,
}

impl AcpSgd {
    /// Creates the state for an `n × m` gradient matrix.
    ///
    /// `P₀` and `Q₀` are drawn from seeded standard-normal streams so all
    /// ranks agree without a broadcast; `E₀ = 0`.
    ///
    /// # Panics
    ///
    /// Panics if any of `n`, `m` or `cfg.rank` is zero.
    pub fn new(n: usize, m: usize, cfg: AcpSgdConfig) -> Self {
        assert!(n > 0 && m > 0, "gradient matrix must be non-empty");
        assert!(cfg.rank > 0, "rank must be positive");
        let rank = cfg.rank.min(n).min(m);
        let p = Matrix::random_std_normal(n, rank, cfg.seed ^ P_SEED_SALT);
        let q = Matrix::random_std_normal(m, rank, cfg.seed);
        let error = cfg.error_feedback.then(|| Matrix::zeros(n, m));
        AcpSgd {
            n,
            m,
            rank,
            cfg,
            p,
            q,
            error,
            step: 0,
            query: None,
            mid_step: false,
        }
    }

    /// Effective rank (requested rank clamped to the matrix dimensions).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of completed compression steps.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Which factor the *next* [`AcpSgd::compress`] will produce.
    pub fn next_side(&self) -> FactorSide {
        if self.step.is_multiple_of(2) {
            FactorSide::P
        } else {
            FactorSide::Q
        }
    }

    /// Frobenius norm of the error-feedback residual (0 when EF disabled).
    pub fn error_norm(&self) -> f32 {
        self.error.as_ref().map_or(0.0, Matrix::frobenius_norm)
    }

    /// Compresses `grad` into this step's factor (`P` on odd steps, `Q` on
    /// even steps), updating the error residual. The returned factor must
    /// be all-reduced (mean) and passed to [`AcpSgd::finish`].
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape differs from construction or
    /// [`AcpSgd::finish`] for the previous step was skipped.
    pub fn compress(&mut self, grad: &Matrix) -> Matrix {
        // allow_verify(reason: legacy infallible surface, panics with the try_ error text)
        self.try_compress(grad).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AcpSgd::compress`]: returns a structured error instead of
    /// panicking on phase or shape violations.
    ///
    /// # Errors
    ///
    /// [`CompressError::Phase`] when the previous step was not finished,
    /// [`CompressError::Shape`] when the gradient shape differs from
    /// construction, [`CompressError::Matrix`] if an inner multiply is fed
    /// incompatible dimensions.
    #[must_use = "the result carries the computation; dropping it discards the round"]
    pub fn try_compress(&mut self, grad: &Matrix) -> Result<Matrix, CompressError> {
        if self.mid_step {
            return Err(CompressError::Phase {
                what: "compress called before finishing the previous step",
            });
        }
        if (grad.rows(), grad.cols()) != (self.n, self.m) {
            return Err(CompressError::Shape {
                what: "gradient shape changed",
                expected: (self.n, self.m),
                actual: (grad.rows(), grad.cols()),
            });
        }
        let corrected = match &self.error {
            Some(e) => grad + e,
            None => grad.clone(),
        };
        let side = self.next_side();
        let (factor, query) = match side {
            FactorSide::P => {
                // Q_t = orthogonalize(Q_{t-1}); P_t = (M+E) Q_t.
                let mut query = if self.cfg.reuse {
                    self.q.clone()
                } else {
                    Matrix::random_std_normal(
                        self.m,
                        self.rank,
                        self.cfg.seed ^ (self.step + 1).wrapping_mul(0x9E37),
                    )
                };
                self.cfg.ortho.apply(&mut query);
                let p = corrected.try_matmul(&query)?;
                (p, query)
            }
            FactorSide::Q => {
                // P_t = orthogonalize(P_{t-1}); Q_t = (M+E)ᵀ P_t.
                let mut query = if self.cfg.reuse {
                    self.p.clone()
                } else {
                    Matrix::random_std_normal(
                        self.n,
                        self.rank,
                        self.cfg.seed ^ (self.step + 1).wrapping_mul(0x5BD1),
                    )
                };
                self.cfg.ortho.apply(&mut query);
                let q = corrected.try_matmul_tn(&query)?;
                (q, query)
            }
        };
        if self.error.is_some() {
            // E ← (M + E) − P_t Q_tᵀ with the *local* factor, so transmitted
            // mean + local residuals account for the full gradient mass.
            let approx = match side {
                FactorSide::P => factor.try_matmul_nt(&query)?,
                FactorSide::Q => query.try_matmul_nt(&factor)?,
            };
            let mut e = corrected;
            e -= &approx;
            self.error = Some(e);
        }
        self.query = Some(query);
        self.mid_step = true;
        Ok(factor)
    }

    /// Consumes the aggregated factor and returns the decompressed gradient
    /// `M̂`. The aggregated factor is retained as the next step's query.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`AcpSgd::compress`] or with a
    /// wrongly shaped factor.
    pub fn finish(&mut self, factor_reduced: Matrix) -> Matrix {
        // allow_verify(reason: legacy infallible surface, panics with the try_ error text)
        self.try_finish(factor_reduced)
            // allow_verify(reason: same legacy surface as above)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AcpSgd::finish`]: returns a structured error instead of
    /// panicking on phase or shape violations. On error the cached query is
    /// retained, so a wrongly shaped aggregate can be retried.
    ///
    /// # Errors
    ///
    /// [`CompressError::Phase`] when called without a preceding
    /// [`AcpSgd::try_compress`], [`CompressError::Shape`] when
    /// `factor_reduced` has the wrong shape, [`CompressError::Matrix`] if
    /// the reconstruction multiply is fed incompatible dimensions.
    #[must_use = "the result carries the computation; dropping it discards the round"]
    pub fn try_finish(&mut self, factor_reduced: Matrix) -> Result<Matrix, CompressError> {
        if !self.mid_step {
            return Err(CompressError::Phase {
                what: "finish called without compress",
            });
        }
        let side = self.next_side();
        let expected = match side {
            FactorSide::P => (self.n, self.rank),
            FactorSide::Q => (self.m, self.rank),
        };
        if (factor_reduced.rows(), factor_reduced.cols()) != expected {
            return Err(CompressError::Shape {
                what: match side {
                    FactorSide::P => "aggregated P has the wrong shape",
                    FactorSide::Q => "aggregated Q has the wrong shape",
                },
                expected,
                actual: (factor_reduced.rows(), factor_reduced.cols()),
            });
        }
        let query = match self.query.take() {
            Some(q) => q,
            None => {
                return Err(CompressError::Phase {
                    what: "query cached by compress",
                })
            }
        };
        let approx = match side {
            FactorSide::P => {
                let approx = factor_reduced.try_matmul_nt(&query)?;
                self.p = factor_reduced;
                self.q = query;
                approx
            }
            FactorSide::Q => {
                let approx = query.try_matmul_nt(&factor_reduced)?;
                self.q = factor_reduced;
                self.p = query;
                approx
            }
        };
        self.step += 1;
        self.mid_step = false;
        Ok(approx)
    }

    /// FLOPs of one compression step — Table II / §IV-A: one matmul
    /// (`2 n m r`) plus one orthogonalization (`O(((n+m)/2) r²)` amortized
    /// over sides) plus the error-feedback reconstruction — roughly half of
    /// [`crate::powersgd::PowerSgd::compress_flops`].
    pub fn compress_flops(&self) -> u64 {
        let (n, m, r) = (self.n as u64, self.m as u64, self.rank as u64);
        let matmul = 2 * n * m * r;
        // The orthogonalized side alternates: amortized (n+m)/2 rows.
        let ortho = (n + m) * r * r;
        let ef = if self.cfg.error_feedback {
            2 * n * m * r
        } else {
            0
        };
        matmul + ortho + ef
    }

    /// Elements transmitted per step: `n·r` on P-steps, `m·r` on Q-steps —
    /// amortized `(n + m) r / 2`, half of Power-SGD.
    pub fn transmitted_elements(&self) -> usize {
        match self.next_side() {
            FactorSide::P => self.n * self.rank,
            FactorSide::Q => self.m * self.rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_tensor::vecops::relative_error;

    fn single_worker_step(acp: &mut AcpSgd, grad: &Matrix) -> Matrix {
        let f = acp.compress(grad);
        acp.finish(f)
    }

    fn low_rank_matrix(n: usize, m: usize, rank: usize, seed: u64) -> Matrix {
        let a = Matrix::random_std_normal(n, rank, seed);
        let b = Matrix::random_std_normal(m, rank, seed + 1);
        a.matmul_nt(&b)
    }

    #[test]
    fn alternates_p_and_q() {
        let grad = Matrix::random_std_normal(10, 7, 1);
        let mut acp = AcpSgd::new(
            10,
            7,
            AcpSgdConfig {
                rank: 3,
                ..Default::default()
            },
        );
        assert_eq!(acp.next_side(), FactorSide::P);
        let f1 = acp.compress(&grad);
        assert_eq!((f1.rows(), f1.cols()), (10, 3));
        acp.finish(f1);
        assert_eq!(acp.next_side(), FactorSide::Q);
        let f2 = acp.compress(&grad);
        assert_eq!((f2.rows(), f2.cols()), (7, 3));
        acp.finish(f2);
        assert_eq!(acp.next_side(), FactorSide::P);
    }

    #[test]
    fn recovers_low_rank_matrix_after_iterations() {
        // Two ACP steps = one full power iteration; rank-2 truth at rank 2
        // must be recovered exactly once the iterated subspace locks on.
        // (EF off: error feedback trades per-step fidelity for cumulative
        // fidelity, which error_feedback_identity_holds verifies.)
        let truth = low_rank_matrix(20, 15, 2, 5);
        let cfg = AcpSgdConfig {
            rank: 2,
            error_feedback: false,
            ..Default::default()
        };
        let mut acp = AcpSgd::new(20, 15, cfg);
        let mut approx = Matrix::zeros(20, 15);
        for _ in 0..6 {
            approx = single_worker_step(&mut acp, &truth);
        }
        let err = relative_error(truth.as_slice(), approx.as_slice());
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn error_feedback_residual_shrinks_on_fixed_gradient() {
        // With EF the per-step approximation also improves over time (the
        // residual mass is re-injected and progressively transmitted).
        let truth = low_rank_matrix(20, 15, 2, 5);
        let mut acp = AcpSgd::new(
            20,
            15,
            AcpSgdConfig {
                rank: 2,
                ..Default::default()
            },
        );
        let mut early = 0.0;
        let mut late = 0.0;
        for step in 0..40 {
            let approx = single_worker_step(&mut acp, &truth);
            let err = relative_error(truth.as_slice(), approx.as_slice());
            if step == 4 {
                early = err;
            }
            if step == 39 {
                late = err;
            }
        }
        assert!(
            late < early,
            "late error {late} should beat early error {early}"
        );
    }

    #[test]
    fn error_feedback_identity_holds() {
        // M + E_{t-1} = M̂_t + E_t exactly on a single worker.
        let grad = Matrix::random_std_normal(12, 9, 8);
        let mut acp = AcpSgd::new(
            12,
            9,
            AcpSgdConfig {
                rank: 2,
                ..Default::default()
            },
        );
        let mut prev_err = Matrix::zeros(12, 9);
        for _ in 0..5 {
            let before = &grad + &prev_err;
            let approx = single_worker_step(&mut acp, &grad);
            let expected_e = &before - &approx;
            assert!(
                (expected_e.frobenius_norm() - acp.error_norm()).abs() < 1e-3,
                "EF identity violated"
            );
            prev_err = expected_e;
        }
    }

    #[test]
    fn tracks_power_sgd_on_fixed_matrix() {
        // On a static gradient, ACP-SGD's approximation quality after 2k
        // steps matches Power-SGD's after k steps (same number of power
        // iterations).
        use crate::powersgd::{PowerSgd, PowerSgdConfig};
        let truth = Matrix::random_std_normal(30, 20, 3);
        let k = 4;
        let mut ps = PowerSgd::new(
            30,
            20,
            PowerSgdConfig {
                rank: 4,
                ..Default::default()
            },
        );
        let mut ps_approx = Matrix::zeros(30, 20);
        for _ in 0..k {
            let p = ps.compute_p(&truth);
            let q = ps.compute_q(p);
            ps_approx = ps.finish(q);
        }
        let mut acp = AcpSgd::new(
            30,
            20,
            AcpSgdConfig {
                rank: 4,
                ..Default::default()
            },
        );
        let mut acp_approx = Matrix::zeros(30, 20);
        for _ in 0..2 * k {
            acp_approx = single_worker_step(&mut acp, &truth);
        }
        let ps_err = relative_error(truth.as_slice(), ps_approx.as_slice());
        let acp_err = relative_error(truth.as_slice(), acp_approx.as_slice());
        assert!(
            acp_err < ps_err * 1.5 + 0.05,
            "ACP error {acp_err} far worse than Power-SGD {ps_err}"
        );
    }

    #[test]
    fn transmitted_elements_halved_vs_powersgd() {
        use crate::powersgd::{PowerSgd, PowerSgdConfig};
        let acp = AcpSgd::new(
            100,
            60,
            AcpSgdConfig {
                rank: 4,
                ..Default::default()
            },
        );
        let ps = PowerSgd::new(
            100,
            60,
            PowerSgdConfig {
                rank: 4,
                ..Default::default()
            },
        );
        // P step: 400 vs Power-SGD's 640 per step; amortized over P+Q steps
        // ACP transmits (100+60)*4/2 = 320 = half of 640.
        assert_eq!(acp.transmitted_elements(), 400);
        assert_eq!(ps.transmitted_elements(), 640);
    }

    #[test]
    fn compress_flops_about_half_of_powersgd() {
        use crate::powersgd::{PowerSgd, PowerSgdConfig};
        let acp = AcpSgd::new(
            512,
            512,
            AcpSgdConfig {
                rank: 16,
                ..Default::default()
            },
        );
        let ps = PowerSgd::new(
            512,
            512,
            PowerSgdConfig {
                rank: 16,
                ..Default::default()
            },
        );
        let ratio = ps.compress_flops() as f64 / acp.compress_flops() as f64;
        assert!((1.3..=1.7).contains(&ratio), "flops ratio {ratio}");
    }

    #[test]
    fn initial_factors_agree_across_ranks() {
        let a = AcpSgd::new(10, 8, AcpSgdConfig::default());
        let b = AcpSgd::new(10, 8, AcpSgdConfig::default());
        assert_eq!(a.p, b.p);
        assert_eq!(a.q, b.q);
    }

    #[test]
    fn rank_clamps_to_dimensions() {
        let acp = AcpSgd::new(
            3,
            5,
            AcpSgdConfig {
                rank: 64,
                ..Default::default()
            },
        );
        assert_eq!(acp.rank(), 3);
    }

    #[test]
    #[should_panic(expected = "before finishing")]
    fn double_compress_panics() {
        let grad = Matrix::zeros(4, 4);
        let mut acp = AcpSgd::new(4, 4, AcpSgdConfig::default());
        acp.compress(&grad);
        acp.compress(&grad);
    }

    #[test]
    #[should_panic(expected = "without compress")]
    fn finish_without_compress_panics() {
        let mut acp = AcpSgd::new(4, 4, AcpSgdConfig::default());
        acp.finish(Matrix::zeros(4, 4));
    }

    #[test]
    fn try_surface_reports_structured_errors_and_recovers() {
        use crate::error::CompressError;
        let grad = Matrix::zeros(4, 4);
        let mut acp = AcpSgd::new(4, 4, AcpSgdConfig::default());
        assert_eq!(
            acp.try_finish(Matrix::zeros(4, 4)),
            Err(CompressError::Phase {
                what: "finish called without compress",
            })
        );
        let f = acp.try_compress(&grad).unwrap();
        assert_eq!(
            acp.try_compress(&grad),
            Err(CompressError::Phase {
                what: "compress called before finishing the previous step",
            })
        );
        // A wrongly shaped aggregate is rejected without losing the query.
        assert!(matches!(
            acp.try_finish(Matrix::zeros(2, 2)),
            Err(CompressError::Shape {
                what: "aggregated P has the wrong shape",
                ..
            })
        ));
        assert!(acp.try_finish(f).is_ok());
        assert_eq!(acp.next_side(), FactorSide::Q);
    }
}
