//! Top-k sparsification (Lin et al. 2018; Shi et al., MLSys 2021).
//!
//! Transmits only the `k` largest-magnitude gradient elements with their
//! coordinates — the up-to-1000× compression of Table I. Sparse selections
//! from different workers have different coordinates, so the payloads are
//! not additive and aggregation uses all-gather + scatter-add.
//!
//! Two selection kernels are provided, mirroring the paper's discussion
//! (§III, footnote 2): exact selection (`select_nth`-based, the reference),
//! and **multiple-sampling threshold estimation** — sample the magnitude
//! distribution, binary-search a threshold that passes ≈`k` elements, then
//! sweep once. The paper notes exact Top-k is computationally inefficient on
//! GPUs and uses the sampling variant; the ablation bench
//! `ablation_topk_selection` compares both.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::compressor::Compressor;
use crate::kernels;
use crate::payload::Payload;

/// Which selection kernel [`TopK`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopKSelection {
    /// Exact k-largest-by-magnitude selection.
    #[default]
    Exact,
    /// Sampled threshold estimation with one correction pass (the paper's
    /// "multiple sampling" Top-k). Returns *approximately* `k` elements,
    /// capped at `k`.
    Sampled,
}

/// Top-k sparsifying compressor.
///
/// # Examples
///
/// ```
/// use acp_compression::{Compressor, TopK};
///
/// let mut c = TopK::new(2);
/// let p = c.compress(&[0.1, -5.0, 0.2, 3.0]);
/// let mut out = vec![0.0; 4];
/// c.decompress(&p, &mut out);
/// assert_eq!(out, vec![0.0, -5.0, 0.0, 3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    selection: TopKSelection,
    rng: ChaCha8Rng,
}

impl TopK {
    /// Exact Top-k keeping `k` elements.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        Self::with_selection(k, TopKSelection::Exact, 0)
    }

    /// Top-k with an explicit selection kernel; `seed` feeds the sampling
    /// RNG (unused by [`TopKSelection::Exact`]).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn with_selection(k: usize, selection: TopKSelection, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        use rand::SeedableRng;
        TopK {
            k,
            selection,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The configured number of elements to keep.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured selection kernel.
    pub fn selection(&self) -> TopKSelection {
        self.selection
    }

    /// Exact selection: indices of the `k` largest |g|.
    ///
    /// Magnitudes are compared through the total order of
    /// [`kernels::abs_key`] (equivalent to `total_cmp` on `|g|`), so NaN
    /// elements rank deterministically above everything instead of making
    /// the comparator intransitive — with the old `partial_cmp(..)
    /// .unwrap_or(Equal)` comparator, ranks seeing the same gradient in a
    /// different memory rotation could select *different* indices.
    fn select_exact(&self, grad: &[f32]) -> Vec<u32> {
        kernels::select_topk(grad, self.k)
    }

    /// Sampled-threshold selection: estimate the k-th magnitude from a
    /// random sample, take everything above it, cap at `k`.
    fn select_sampled(&mut self, grad: &[f32]) -> Vec<u32> {
        let n = grad.len();
        let k = self.k.min(n);
        if k == n {
            return (0..n as u32).collect();
        }
        // Sample max(1000, 1%) magnitude keys (see `kernels::abs_key`: the
        // integer key order equals `total_cmp` on |g|, so NaNs cannot
        // poison the quantile estimate).
        let sample_size = (n / 100).max(1000).min(n);
        let mut sample: Vec<u32> = if sample_size == n {
            grad.iter().map(|&g| kernels::abs_key(g)).collect()
        } else {
            (0..sample_size)
                .map(|_| kernels::abs_key(grad[self.rng.gen_range(0..n)]))
                .collect()
        };
        // The sample quantile matching a k/n tail.
        let tail = ((k as f64 / n as f64) * sample_size as f64).ceil() as usize;
        let tail = tail.clamp(1, sample_size);
        sample.select_nth_unstable_by(tail - 1, |a, b| b.cmp(a));
        let threshold = sample[tail - 1];
        // One sweep collecting everything >= threshold, capped at k.
        let mut idx: Vec<u32> = Vec::with_capacity(k + k / 4);
        for (i, &g) in grad.iter().enumerate() {
            if kernels::abs_key(g) >= threshold {
                idx.push(i as u32);
            }
        }
        if idx.len() > k {
            // Overshoot: keep the k largest among the candidates (cheap —
            // the candidate set is already ≈ k).
            let keys = kernels::abs_keys(grad);
            idx.select_nth_unstable_by(k - 1, |&a, &b| keys[b as usize].cmp(&keys[a as usize]));
            idx.truncate(k);
            idx.sort_unstable();
        }
        idx
    }

    /// Scatter-adds `world_size` gathered sparse payloads into a dense
    /// average.
    ///
    /// `indices`/`values` are the rank-order concatenations produced by
    /// all-gathering each worker's arrays (each contributing `per_rank`
    /// entries); the result is `(1/world_size) Σ_w sparse_w`, matching the
    /// gradient averaging of S-SGD.
    ///
    /// # Panics
    ///
    /// Panics if array lengths disagree or an index is out of bounds.
    pub fn scatter_average(indices: &[u32], values: &[f32], world_size: usize, out: &mut [f32]) {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        out.fill(0.0);
        let inv = 1.0 / world_size as f32;
        for (&i, &v) in indices.iter().zip(values) {
            out[i as usize] += v * inv;
        }
    }
}

impl Compressor for TopK {
    fn name(&self) -> &'static str {
        match self.selection {
            TopKSelection::Exact => "topk",
            TopKSelection::Sampled => "topk-sampled",
        }
    }

    fn compress(&mut self, grad: &[f32]) -> Payload {
        let indices = match self.selection {
            TopKSelection::Exact => self.select_exact(grad),
            TopKSelection::Sampled => self.select_sampled(grad),
        };
        let values = indices.iter().map(|&i| grad[i as usize]).collect();
        Payload::Sparse {
            indices,
            values,
            len: grad.len(),
        }
    }

    fn decompress(&self, payload: &Payload, out: &mut [f32]) {
        match payload {
            Payload::Sparse {
                indices,
                values,
                len,
            } => {
                assert_eq!(out.len(), *len, "output length mismatch");
                out.fill(0.0);
                for (&i, &v) in indices.iter().zip(values) {
                    out[i as usize] = v;
                }
            }
            // allow_verify(reason: contract panic on payload-kind mismatch, pinned by tests)
            _ => panic!("TopK expects Payload::Sparse"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_keeps_largest_magnitudes() {
        let mut c = TopK::new(3);
        let p = c.compress(&[1.0, -10.0, 2.0, 0.5, 9.0, -3.0]);
        match &p {
            Payload::Sparse {
                indices,
                values,
                len,
            } => {
                assert_eq!(*len, 6);
                assert_eq!(indices, &vec![1, 4, 5]);
                assert_eq!(values, &vec![-10.0, 9.0, -3.0]);
            }
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn k_larger_than_input_keeps_all() {
        let mut c = TopK::new(10);
        let grad = [3.0, -1.0];
        let rt = c.round_trip(&grad);
        assert_eq!(rt, grad.to_vec());
    }

    #[test]
    fn sampled_selection_is_close_to_exact() {
        use acp_tensor::rng::seeded_rng;
        use rand::Rng;
        let mut rng = seeded_rng(11);
        let grad: Vec<f32> = (0..50_000).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let k = 500;
        let mut exact = TopK::new(k);
        let mut sampled = TopK::with_selection(k, TopKSelection::Sampled, 3);
        let pe = exact.compress(&grad);
        let ps = sampled.compress(&grad);
        let (ne, ns) = match (&pe, &ps) {
            (Payload::Sparse { values: ve, .. }, Payload::Sparse { values: vs, .. }) => {
                (ve.len(), vs.len())
            }
            _ => panic!("wrong payloads"),
        };
        assert_eq!(ne, k);
        // Sampled returns approximately k (within 40%) and never more than k.
        assert!(ns <= k);
        assert!(ns > k / 4, "sampled kept only {ns} of {k}");
        // Energy captured by sampled selection close to exact.
        let energy = |p: &Payload| match p {
            Payload::Sparse { values, .. } => values.iter().map(|v| v * v).sum::<f32>(),
            _ => 0.0,
        };
        assert!(energy(&ps) > 0.5 * energy(&pe));
    }

    #[test]
    fn scatter_average_merges_overlapping_coordinates() {
        // worker 0 selects {0: 4.0, 2: 2.0}; worker 1 selects {0: 2.0, 3: 6.0}.
        let indices = [0u32, 2, 0, 3];
        let values = [4.0f32, 2.0, 2.0, 6.0];
        let mut out = vec![0.0; 4];
        TopK::scatter_average(&indices, &values, 2, &mut out);
        assert_eq!(out, vec![3.0, 0.0, 1.0, 3.0]);
    }

    #[test]
    fn compression_ratio_scales_with_k() {
        let mut c = TopK::new(10);
        let grad = vec![1.0f32; 10_000];
        let p = c.compress(&grad);
        // 10k floats = 40000 bytes vs 10*(4+4)+4 = 84 bytes ≈ 476x.
        assert!(p.compression_ratio() > 400.0);
    }

    #[test]
    fn decompress_zeroes_unselected() {
        let mut c = TopK::new(1);
        let mut out = vec![7.0; 3];
        let p = c.compress(&[0.0, 5.0, 0.0]);
        c.decompress(&p, &mut out);
        assert_eq!(out, vec![0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        TopK::new(0);
    }

    /// Regression test for the NaN-unsafe comparator: with the old
    /// `partial_cmp(..).unwrap_or(Equal)` ordering, a NaN compared `Equal`
    /// to every element, so `select_nth_unstable_by` could include or
    /// exclude it depending on memory layout — ranks scanning the same
    /// logical gradient in different element orders selected *different*
    /// coordinate sets and diverged. The total-order key makes NaN rank
    /// above everything, deterministically, in every layout.
    #[test]
    fn nan_selection_is_layout_invariant() {
        // LCG-generated dataset empirically verified to make the old
        // comparator select different value sets across rotations
        // (n = 124, four NaNs, k = 11).
        let mut state: u32 = 1;
        let mut lcg = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            state
        };
        let n = 16 + (lcg() as usize % 240);
        let nan_count = 1 + lcg() as usize % 4;
        let k = 1 + lcg() as usize % (n / 2);
        let mut base: Vec<f32> = (0..n).map(|_| (lcg() % 1000) as f32 / 100.0).collect();
        for _ in 0..nan_count {
            let p = lcg() as usize % n;
            base[p] = f32::NAN;
        }
        // Selected multiset of value bits must be identical for every
        // rotation of the same data (a proxy for per-rank layout skew).
        let canonical: Option<Vec<u32>> = None;
        let mut canonical = canonical;
        for rot in 0..base.len() {
            let mut rotated = base.clone();
            rotated.rotate_left(rot);
            let mut c = TopK::new(k);
            let p = c.compress(&rotated);
            let mut picked: Vec<u32> = match &p {
                Payload::Sparse { values, .. } => values.iter().map(|v| v.to_bits()).collect(),
                _ => panic!("wrong payload"),
            };
            picked.sort_unstable();
            match &canonical {
                None => canonical = Some(picked),
                Some(want) => assert_eq!(&picked, want, "rotation {rot} diverged"),
            }
        }
        // And the NaN itself is always selected: it ranks above +inf.
        let sel = canonical.unwrap();
        assert!(
            sel.iter().any(|b| f32::from_bits(*b).is_nan()),
            "NaN must rank above every finite magnitude"
        );
    }

    #[test]
    fn sampled_selection_tolerates_nans() {
        // The sampled threshold path must also stay deterministic and
        // terminate with NaNs present (the old float comparator could
        // return garbage quantiles).
        let mut grad: Vec<f32> = (0..5000).map(|i| (i % 97) as f32 / 97.0).collect();
        grad[123] = f32::NAN;
        grad[4321] = f32::NAN;
        let mut a = TopK::with_selection(50, TopKSelection::Sampled, 9);
        let mut b = TopK::with_selection(50, TopKSelection::Sampled, 9);
        let pa = a.compress(&grad);
        let pb = b.compress(&grad);
        match (&pa, &pb) {
            (Payload::Sparse { indices: ia, .. }, Payload::Sparse { indices: ib, .. }) => {
                assert_eq!(ia, ib);
                assert!(!ia.is_empty());
            }
            _ => panic!("wrong payloads"),
        }
    }
}
