//! The [`Compressor`] trait implemented by the one-shot element-wise
//! methods (Sign-SGD, Top-k, Random-k, QSGD, TernGrad).

use crate::payload::Payload;

/// A one-shot gradient compressor: dense gradient in, [`Payload`] out.
///
/// Implementations may be stateful (e.g. seeded RNG streams, sampling
/// state); all are deterministic given their construction seed, so every
/// worker replays the same random choices where the algorithm requires it
/// (Random-k coordinate agreement).
///
/// The low-rank methods (Power-SGD, ACP-SGD) are *not* `Compressor`s — their
/// compression interleaves with communication and lives in
/// [`crate::powersgd`] and [`crate::acp`] as explicit state machines.
pub trait Compressor: Send {
    /// Short method name used in experiment output (e.g. `"signsgd"`).
    fn name(&self) -> &'static str;

    /// Compresses a dense gradient.
    fn compress(&mut self, grad: &[f32]) -> Payload;

    /// Reconstructs a dense gradient from `payload` into `out`
    /// (overwriting it).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the payload's dense length or the
    /// payload variant is not one this compressor produces.
    fn decompress(&self, payload: &Payload, out: &mut [f32]);

    /// Convenience: compress then immediately decompress, returning the
    /// round-tripped gradient (what this worker's contribution looks like
    /// after lossy compression).
    fn round_trip(&mut self, grad: &[f32]) -> Vec<f32> {
        let payload = self.compress(grad);
        let mut out = vec![0.0; grad.len()];
        self.decompress(&payload, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A do-nothing compressor to exercise the default method.
    struct Identity;

    impl Compressor for Identity {
        fn name(&self) -> &'static str {
            "identity"
        }

        fn compress(&mut self, grad: &[f32]) -> Payload {
            Payload::Dense(grad.to_vec())
        }

        fn decompress(&self, payload: &Payload, out: &mut [f32]) {
            match payload {
                Payload::Dense(v) => out.copy_from_slice(v),
                _ => panic!("identity compressor expects dense payloads"),
            }
        }
    }

    #[test]
    fn round_trip_default_method() {
        let mut c = Identity;
        let grad = vec![1.0, -2.0, 3.0];
        assert_eq!(c.round_trip(&grad), grad);
        assert_eq!(c.name(), "identity");
    }
}
