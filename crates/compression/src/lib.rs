//! Gradient compression algorithms for distributed deep learning.
//!
//! Implements every compression method the paper evaluates or proposes:
//!
//! | Method | Module | Category | Aggregation |
//! |---|---|---|---|
//! | Sign-SGD (majority vote) | [`sign`] | quantization (32×) | all-gather |
//! | QSGD | [`qsgd`] | quantization | all-gather |
//! | TernGrad | [`terngrad`] | quantization | all-gather |
//! | Top-k SGD | [`topk`] | sparsification (up to 1000×) | all-gather |
//! | Random-k SGD | [`randomk`] | sparsification | all-gather |
//! | Power-SGD | [`powersgd`] | low-rank | 2 × all-reduce (blocking) |
//! | **ACP-SGD** | [`acp`] | low-rank | 1 × all-reduce (non-blocking) |
//!
//! The one-shot element-wise methods implement the [`Compressor`] trait and
//! produce self-describing [`Payload`]s with byte-accurate wire accounting
//! (the numbers behind Tables I–II). The low-rank methods are *stepwise*
//! state machines ([`powersgd::PowerSgd`], [`acp::AcpSgd`]) whose explicit
//! `compress → (collective) → finish` phases let a distributed optimizer
//! interleave real communication exactly where the paper's Algorithms 1–2
//! place it.
//!
//! # Examples
//!
//! One step of ACP-SGD on a single worker (the all-reduce is an identity):
//!
//! ```
//! use acp_compression::acp::{AcpSgd, AcpSgdConfig};
//! use acp_tensor::{Matrix, SeedableStdNormal};
//!
//! let grad = Matrix::random_std_normal(16, 8, 1);
//! let mut acp = AcpSgd::new(16, 8, AcpSgdConfig { rank: 4, ..Default::default() });
//! let factor = acp.compress(&grad);         // P on odd steps, Q on even
//! let approx = acp.finish(factor.clone());  // world size 1: reduce = identity
//! assert_eq!(approx.rows(), 16);
//! assert_eq!(approx.cols(), 8);
//! ```

#![warn(missing_docs)]

pub mod acp;
pub mod compressor;
pub mod error;
pub mod error_feedback;
pub mod kernels;
pub mod payload;
pub mod powersgd;
pub mod qsgd;
pub mod randomk;
pub mod ratio;
pub mod sign;
pub mod terngrad;
pub mod topk;

pub use compressor::Compressor;
pub use error::CompressError;
pub use error_feedback::ErrorFeedback;
pub use payload::Payload;
pub use randomk::RandomK;
pub use sign::SignSgd;
pub use topk::{TopK, TopKSelection};
