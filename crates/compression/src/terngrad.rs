//! TernGrad ternary quantization (Wen et al., NeurIPS 2017).
//!
//! Quantizes each element to {−1, 0, +1} scaled by the maximum magnitude,
//! keeping the element with probability |g| / max|g| — an unbiased ternary
//! variant of QSGD that the paper lists among the quantization baselines.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::compressor::Compressor;
use crate::payload::Payload;

/// TernGrad ternary compressor.
///
/// # Examples
///
/// ```
/// use acp_compression::{Compressor, terngrad::TernGrad};
///
/// let mut c = TernGrad::new(0);
/// let rt = c.round_trip(&[1.0, -2.0, 0.0]);
/// // Every decoded element is in {-2, 0, +2} (scale = max |g| = 2).
/// assert!(rt.iter().all(|v| v.abs() == 2.0 || *v == 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct TernGrad {
    rng: ChaCha8Rng,
}

impl TernGrad {
    /// Creates a TernGrad compressor with the given rounding seed.
    pub fn new(seed: u64) -> Self {
        TernGrad {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Compressor for TernGrad {
    fn name(&self) -> &'static str {
        "terngrad"
    }

    fn compress(&mut self, grad: &[f32]) -> Payload {
        let max = grad.iter().fold(0.0f32, |m, g| m.max(g.abs()));
        let mut levels = Vec::with_capacity(grad.len());
        if max == 0.0 {
            levels.resize(grad.len(), 0i8);
            return Payload::Quantized {
                levels,
                num_levels: 1,
                scale: 0.0,
            };
        }
        for &g in grad {
            let keep = self.rng.gen::<f32>() < g.abs() / max;
            levels.push(if !keep {
                0
            } else if g < 0.0 {
                -1
            } else {
                1
            });
        }
        Payload::Quantized {
            levels,
            num_levels: 1,
            scale: max,
        }
    }

    fn decompress(&self, payload: &Payload, out: &mut [f32]) {
        match payload {
            Payload::Quantized {
                levels,
                num_levels: 1,
                scale,
            } => {
                assert_eq!(out.len(), levels.len(), "output length mismatch");
                for (o, &l) in out.iter_mut().zip(levels) {
                    *o = l as f32 * scale;
                }
            }
            // allow_verify(reason: contract panic on payload-kind mismatch, pinned by tests)
            _ => panic!("TernGrad expects ternary Payload::Quantized"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_alphabet() {
        let mut c = TernGrad::new(3);
        let p = c.compress(&[0.5, -0.9, 0.1, 0.0]);
        match &p {
            Payload::Quantized {
                levels,
                num_levels,
                scale,
            } => {
                assert_eq!(*num_levels, 1);
                assert!((*scale - 0.9).abs() < 1e-6);
                assert!(levels.iter().all(|&l| l == -1 || l == 0 || l == 1));
            }
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn max_magnitude_element_always_kept() {
        // keep-probability is |g| / max = 1 for the max element.
        for seed in 0..20 {
            let mut c = TernGrad::new(seed);
            let rt = c.round_trip(&[0.1, 3.0, -0.1]);
            assert_eq!(rt[1], 3.0, "seed {seed}");
        }
    }

    #[test]
    fn unbiased_in_expectation() {
        let grad = [0.4f32, -0.8, 0.2];
        let mut acc = [0.0f64; 3];
        let trials = 30_000;
        let mut c = TernGrad::new(123);
        for _ in 0..trials {
            let rt = c.round_trip(&grad);
            for (a, v) in acc.iter_mut().zip(&rt) {
                *a += *v as f64;
            }
        }
        for (a, &g) in acc.iter().zip(&grad) {
            let mean = a / trials as f64;
            assert!((mean - g as f64).abs() < 0.02, "E = {mean} vs {g}");
        }
    }

    #[test]
    fn zero_gradient_stays_zero() {
        let mut c = TernGrad::new(0);
        assert_eq!(c.round_trip(&[0.0; 4]), vec![0.0; 4]);
    }
}
