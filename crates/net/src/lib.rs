//! `acp-net` — a real TCP collectives backend for ACP-SGD.
//!
//! Implements [`acp_collectives::Communicator`] over `std::net`
//! sockets so the training stack runs across OS processes (and, with a
//! non-loopback peer list, across hosts). The design follows one rule:
//! **the transport is the only thing that changes**. All collective
//! algorithms live in [`acp_collectives::ring`], generic over the
//! point-to-point [`Transport`](acp_collectives::Transport) trait, so the
//! TCP backend is bit-exact with the in-process
//! [`ThreadCommunicator`](acp_collectives::ThreadCommunicator) by
//! construction — the floating-point reduction order is literally the same
//! code.
//!
//! The crate adds what a real network demands and threads cannot fake:
//!
//! * [`frame`] — length-prefixed wire framing with a handshake frame and
//!   allocation caps;
//! * [`TcpCommunicator`] — ring or full-mesh wiring, connection
//!   establishment with bounded exponential-backoff retry
//!   ([`RetryPolicy`]), per-operation deadlines surfacing as
//!   [`CommError::Timeout`](acp_collectives::CommError::Timeout), and
//!   one-shot link re-establishment after a drop;
//! * [`FaultInjector`] — deterministic delay / drop-then-reconnect /
//!   straggler faults, configurable from the environment, so the failure
//!   paths are exercised by tests instead of trusted;
//! * [`launch_local`] — a local process launcher using `ACP_NET_*`
//!   environment variables as the rendezvous protocol.
//!
//! Telemetry uses the same `acp-telemetry` keys as the thread backend
//! (`comm.bytes_sent` counts payload bytes only), so recorded wire volume
//! reconciles against the paper's Table II cost model regardless of
//! transport.
//!
//! # Example
//!
//! In-process smoke test over real loopback sockets:
//!
//! ```
//! use acp_collectives::{Communicator, ReduceOp};
//!
//! let sums = acp_net::run_local(4, |mut comm| {
//!     let mut buf = vec![comm.rank_id().as_usize() as f32; 3];
//!     comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
//!     buf[0]
//! });
//! assert_eq!(sums, vec![6.0; 4]); // 0 + 1 + 2 + 3
//! ```

pub mod fault;
pub mod frame;
pub mod launch;
pub mod tcp;

pub use fault::FaultInjector;
pub use launch::{
    launch_local, launch_local_grouped, worker_from_env, LocalGroup, ENV_BASE_PORT, ENV_GROUPS,
    ENV_RANK, ENV_WORLD_SIZE,
};
#[allow(deprecated)]
pub use tcp::Topology; // allow_verify(reason = "deprecated re-export")
pub use tcp::{run_local, run_local_with, RetryPolicy, TcpCommunicator, TcpConfig, Wiring};
