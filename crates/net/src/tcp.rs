//! The TCP transport: link wiring, retry, deadlines, reconnect, reform.
//!
//! A [`TcpCommunicator`] is one rank's endpoint of a multi-process group.
//! Every rank owns a listener; links are wired either as a **ring** (each
//! rank connects to its successor and accepts from its predecessor — all
//! the trait's collectives are ring algorithms, so two links suffice) or
//! as a **full mesh** (every pair connected once — required for the
//! butterfly collectives, for two-level
//! [`Topology`](acp_collectives::Topology) arrangements, and for elastic
//! membership reform). The *logical* arrangement of the group — flat ring
//! vs. hierarchical ring-of-rings — is [`TcpConfig::topology`], distinct
//! from the socket-level [`Wiring`].
//!
//! Fault semantics:
//!
//! * connection establishment retries with bounded exponential backoff
//!   ([`RetryPolicy`]) and surfaces [`CommError::Timeout`] when exhausted;
//! * every receive is bounded by [`TcpConfig::op_deadline`] — a dead or
//!   straggling peer produces [`CommError::Timeout`], never a hang;
//! * a link that breaks mid-collective is re-established once per
//!   operation (connector side re-connects, acceptor side re-accepts and
//!   re-validates the hello handshake); a second failure surfaces as
//!   [`CommError::PeerDisconnected`] / [`CommError::Io`];
//! * injected drops ([`FaultInjector::drop_every`]) deliberately close a
//!   connector-role link at a frame boundary and ride the same
//!   reconnect path, so the retry machinery is exercised by tests rather
//!   than trusted;
//! * a peer whose *listener* has also vanished is declared departed: the
//!   observer broadcasts an abort control frame to every live link and
//!   surfaces [`CommError::MembershipChanged`], and the abort cascades
//!   rank to rank so no survivor waits out the full op deadline.
//!
//! After a [`CommError::MembershipChanged`] the group is recoverable on
//! full-mesh wiring: every survivor calls `reform()`, which drains stale
//! frames behind a per-link reform barrier (TCP FIFO makes this sound),
//! re-derives ranks over the sorted survivors, falls back to a flat
//! topology, and cross-checks the post-reform schedule digest. After any
//! *other* error a communicator's collective state is undefined (a peer
//! may have partially progressed); callers should tear the group down.

use std::collections::BTreeSet;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acp_collectives::nonblocking::execute_collective;
use acp_collectives::ring::{self, Transport, WireMsg};
use acp_collectives::schedule::{self, membership_param, OpKind, ScheduleCell, ScheduleTracer};
use acp_collectives::topology::{Membership, RankId, Topology as GroupTopology, TopologyError};
use acp_collectives::{
    CollectiveOp, CollectiveResult, CommError, CommWorker, Communicator, PendingOp, ReduceOp,
    ScheduleSnapshot, TopkMode, VerifyMode, WorkerTransport,
};
use acp_telemetry::{keys, noop, RecorderHandle};

use crate::fault::FaultInjector;
use crate::frame::{read_frame, write_frame, write_msg, Frame, MsgRef};

/// Bounded exponential backoff for connection establishment (and
/// re-establishment after a drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum connect attempts before giving up.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Per-attempt TCP connect timeout.
    pub attempt_timeout: Duration,
    /// Per-peer wall-clock budget for one dial: retrying continues until
    /// *both* `max_attempts` is exhausted *and* this much time has passed
    /// since the first attempt on that peer. A refused connection returns
    /// in microseconds, so a purely count-based policy can burn every
    /// attempt long before a slow peer's listener binds — under many
    /// concurrent groups (or a loaded aggregation service) that turned
    /// startup skew into spurious `Io` errors. `Duration::ZERO` restores
    /// the attempts-only behaviour.
    pub dial_budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 20,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            attempt_timeout: Duration::from_secs(2),
            dial_budget: Duration::from_secs(10),
        }
    }
}

/// How the ranks' sockets are wired together (distinct from the group's
/// logical [`Topology`](acp_collectives::Topology), which picks the
/// collective schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Wiring {
    /// Two links per rank: connect to the successor, accept from the
    /// predecessor. Supports every [`Communicator`] collective (they are
    /// all ring algorithms); `O(p)` sockets in total.
    #[default]
    Ring,
    /// One link per pair (`O(p²)` sockets): additionally supports the
    /// butterfly collectives (gTop-k sparse all-reduce, recursive
    /// doubling), direct point-to-point exchange, two-level topologies
    /// (whose intra/cross neighbours are not ring successors) and
    /// membership reform (whose post-reform neighbours are arbitrary).
    FullMesh,
}

/// Former name of [`Wiring`], kept one release for callers that predate
/// the topology-aware API (where `Topology` now names the *logical*
/// arrangement, [`acp_collectives::Topology`]).
#[deprecated(since = "0.2.0", note = "renamed to `Wiring`")]
pub type Topology = Wiring;

/// Rank value carried by probe hellos: a liveness probe dials a peer's
/// listener just to see whether it is still bound, then hangs up. Accept
/// loops discard these.
const PROBE_RANK: u32 = u32::MAX;

/// Configuration of one rank's [`TcpCommunicator`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This rank in `[0, world_size)`.
    pub rank: usize,
    /// Number of ranks in the group.
    pub world_size: usize,
    /// Listener address of every rank, indexed by rank.
    pub peers: Vec<SocketAddr>,
    /// Socket-level link wiring.
    pub wiring: Wiring,
    /// Logical group arrangement: a flat ring or a two-level
    /// ring-of-rings (see [`acp_collectives::Topology`]). Two-level
    /// arrangements require [`Wiring::FullMesh`] and must agree with
    /// `world_size`.
    pub topology: GroupTopology,
    /// Connection-establishment retry policy.
    pub retry: RetryPolicy,
    /// Deadline applied to every blocking receive (and to link
    /// re-establishment); `Duration::ZERO` disables the deadline.
    pub op_deadline: Duration,
    /// Fault plan (inert by default).
    pub fault: FaultInjector,
    /// Collective-schedule verification mode (see
    /// [`acp_collectives::schedule`]). [`TcpConfig::local`] reads it from
    /// the `ACP_VERIFY_SCHEDULE` environment variable, so multi-process
    /// launches inherit the launcher's setting; all ranks of a group must
    /// agree on it.
    pub verify: VerifyMode,
}

impl TcpConfig {
    /// A loopback group: rank `i` listens on `127.0.0.1:(base_port + i)`.
    ///
    /// # Panics
    ///
    /// Panics if `world_size == 0`, `rank >= world_size`, or the port
    /// range overflows `u16`.
    pub fn local(rank: usize, world_size: usize, base_port: u16) -> Self {
        assert!(world_size > 0, "world_size must be positive");
        assert!(rank < world_size, "rank {rank} >= world size {world_size}");
        let peers = (0..world_size)
            .map(|i| {
                let port = base_port
                    .checked_add(i as u16)
                    // allow_verify(reason = "documented panic of a config constructor; no group exists yet")
                    .expect("port range overflows u16");
                SocketAddr::from(([127, 0, 0, 1], port))
            })
            .collect();
        TcpConfig {
            rank,
            world_size,
            peers,
            wiring: Wiring::Ring,
            topology: GroupTopology::flat(world_size),
            retry: RetryPolicy::default(),
            op_deadline: Duration::from_secs(30),
            fault: FaultInjector::none(),
            verify: VerifyMode::from_env(),
        }
    }

    /// Sets the socket-level link wiring.
    #[must_use]
    pub fn with_wiring(mut self, wiring: Wiring) -> Self {
        self.wiring = wiring;
        self
    }

    /// Former name of [`TcpConfig::with_wiring`].
    #[deprecated(since = "0.2.0", note = "renamed to `with_wiring`")]
    #[must_use]
    pub fn with_topology(self, wiring: Wiring) -> Self {
        self.with_wiring(wiring)
    }

    /// Arranges the group as `groups` rings of `world_size / groups`
    /// ranks each (the hierarchical ring-of-rings schedule) and upgrades
    /// the wiring to [`Wiring::FullMesh`], which two-level neighbour
    /// patterns require.
    ///
    /// # Errors
    ///
    /// Returns the structured [`TopologyError`] when the group spec is
    /// inconsistent (zero groups, or `groups` does not divide
    /// `world_size`) — never panics, so launchers can surface the bad
    /// spec to the operator.
    pub fn with_groups(mut self, groups: usize) -> Result<Self, TopologyError> {
        self.topology = GroupTopology::grouped(self.world_size, groups)?;
        if !self.topology.is_flat() {
            self.wiring = Wiring::FullMesh;
        }
        Ok(self)
    }

    /// Sets the per-receive deadline (`Duration::ZERO` disables it).
    #[must_use]
    pub fn with_op_deadline(mut self, deadline: Duration) -> Self {
        self.op_deadline = deadline;
        self
    }

    /// Sets the connection retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultInjector) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the schedule-verification mode.
    #[must_use]
    pub fn with_verify(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }
}

/// Which side of a link this rank is; determines who re-establishes a
/// broken connection (connector dials again, acceptor re-accepts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkRole {
    /// This rank dialed the peer's listener.
    Connector,
    /// This rank accepted the peer's dial on its own listener.
    Acceptor,
}

/// One established connection to a peer rank.
#[derive(Debug)]
struct Link {
    peer: usize,
    role: LinkRole,
    stream: TcpStream,
}

/// The wired-up links of one rank.
#[derive(Debug)]
enum Links {
    /// `world_size == 1`: no links, collectives are identities.
    Single,
    /// Ring: a dedicated outgoing link to the successor and incoming link
    /// from the predecessor (distinct sockets even when they are the same
    /// peer, i.e. `world_size == 2`).
    Ring {
        /// Link to `(rank + 1) % p`; all sends go here.
        out: Link,
        /// Link from `(rank − 1) % p`; all receives come from here.
        inn: Link,
    },
    /// Full mesh: one duplex link per peer, indexed by physical rank
    /// (`None` at our own slot, and at departed peers after a reform).
    Mesh(Vec<Option<Link>>),
}

fn timeout_ms(started: Instant) -> u64 {
    started.elapsed().as_millis().max(1) as u64
}

/// Maps an I/O failure to a structured [`CommError`].
fn map_io(op: &'static str, started: Instant, e: &io::Error) -> CommError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => CommError::Timeout {
            op,
            waited_ms: timeout_ms(started),
        },
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => CommError::PeerDisconnected,
        _ => CommError::Io(format!("{op}: {e}")),
    }
}

/// Whether an I/O error means "the link is gone" (worth one reconnect
/// attempt) as opposed to a timeout or a protocol problem.
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
    )
}

fn configure_stream(stream: &TcpStream, op_deadline: Duration) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let t = if op_deadline.is_zero() {
        None
    } else {
        Some(op_deadline)
    };
    stream.set_read_timeout(t)?;
    stream.set_write_timeout(t)?;
    Ok(())
}

/// Dials `addr` with bounded exponential backoff. The retry budget is
/// **per peer**: each call gets the full `max_attempts` *and* the full
/// `dial_budget` wall-clock window, so a peer that comes up late is not
/// penalised for attempts spent (instantly, on connection-refused) against
/// an earlier peer in the same establishment pass.
fn connect_with_retry(
    addr: &SocketAddr,
    retry: &RetryPolicy,
    op_deadline: Duration,
) -> Result<TcpStream, CommError> {
    let started = Instant::now();
    let min_attempts = retry.max_attempts.max(1);
    let mut backoff = retry.initial_backoff;
    let mut last_err: Option<io::Error> = None;
    let mut attempt: u32 = 0;
    while attempt < min_attempts || started.elapsed() < retry.dial_budget {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(retry.max_backoff);
        }
        attempt = attempt.saturating_add(1);
        match TcpStream::connect_timeout(addr, retry.attempt_timeout) {
            Ok(stream) => {
                configure_stream(&stream, op_deadline)
                    .map_err(|e| map_io("configure", started, &e))?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    match last_err {
        Some(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(CommError::Timeout {
                op: "connect",
                waited_ms: timeout_ms(started),
            })
        }
        Some(e) => Err(CommError::Io(format!(
            "connect to {addr} failed after {attempt} attempts over {}ms: {e}",
            started.elapsed().as_millis()
        ))),
        None => unreachable!("at least one connect attempt is made"),
    }
}

/// Accepts one connection, polling until `deadline`.
fn accept_with_deadline(listener: &TcpListener, deadline: Instant) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    let result = loop {
        match listener.accept() {
            Ok((stream, _)) => break Ok(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    break Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no incoming connection before the deadline",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => break Err(e),
        }
    };
    listener.set_nonblocking(false)?;
    let stream = result?;
    stream.set_nonblocking(false)?;
    Ok(stream)
}

/// Reads the hello handshake off a fresh stream and checks the peer rank.
fn expect_hello(stream: &mut TcpStream, expected: Option<usize>) -> Result<usize, CommError> {
    let started = Instant::now();
    match read_frame(stream) {
        Ok(Frame::Hello(rank)) => {
            let rank = rank as usize;
            if let Some(expected) = expected {
                if rank != expected {
                    return Err(CommError::Io(format!(
                        "hello from rank {rank}, expected rank {expected}"
                    )));
                }
            }
            Ok(rank)
        }
        Ok(other) => Err(CommError::Io(format!(
            "expected hello handshake, got {other:?}"
        ))),
        Err(e) => Err(map_io("hello", started, &e)),
    }
}

fn send_hello(stream: &mut TcpStream, rank: usize) -> Result<(), CommError> {
    let started = Instant::now();
    write_frame(stream, &Frame::Hello(rank as u32)).map_err(|e| map_io("hello", started, &e))
}

/// A multi-process TCP endpoint implementing [`Communicator`].
///
/// Runs the *same* generic ring algorithms as
/// [`acp_collectives::ThreadCommunicator`] (see [`acp_collectives::ring`]),
/// so results are bit-exact across backends. Telemetry flows through the
/// same recorder keys, so wire bytes reconcile against the Table II cost
/// model regardless of transport.
pub struct TcpCommunicator {
    /// Virtual rank: position in the sorted survivor list. Equal to the
    /// physical rank until a reform.
    rank: usize,
    /// Physical rank: stable index into the peer list.
    physical: usize,
    world_size: usize,
    wiring: Wiring,
    topology: GroupTopology,
    membership: Membership,
    /// The socket transport; `Some` until the comm worker takes it.
    inner: Option<TcpTransport>,
    /// Per-rank comm worker, spawned lazily by the first dispatched
    /// operation; once running, every collective (blocking included)
    /// routes through it so submission order stays FIFO-total.
    worker: Option<CommWorker>,
    /// Shared with the transport so `bytes_sent` stays readable after the
    /// transport moves into the worker thread.
    bytes_sent: Arc<AtomicU64>,
    /// Schedule-trace state, shared with the transport's tracer so
    /// [`Communicator::schedule`] stays readable after the transport moves
    /// into the worker thread.
    schedule: Arc<ScheduleCell>,
    verify: VerifyMode,
    recorder: RecorderHandle,
}

/// The socket transport state of one rank. Lives inside the
/// [`TcpCommunicator`] until a comm worker is spawned, then moves into the
/// worker thread; collectives run the same ring algorithms on it either
/// way.
struct TcpTransport {
    /// Physical rank: stable index into `peers`, never remapped.
    rank: usize,
    /// Virtual rank: position of `rank` in the sorted `members` list.
    virtual_rank: usize,
    peers: Vec<SocketAddr>,
    wiring: Wiring,
    /// Logical group arrangement; falls back to flat after a reform.
    topology: GroupTopology,
    /// Membership epoch, bumped by every reform.
    epoch: u64,
    /// Sorted physical ranks of the current members (the virtual→physical
    /// map).
    members: Vec<usize>,
    /// Physical ranks observed dead (listener gone, or named by a peer's
    /// abort broadcast).
    departed: BTreeSet<usize>,
    retry: RetryPolicy,
    op_deadline: Duration,
    fault: FaultInjector,
    listener: TcpListener,
    links: Links,
    /// Frames sent so far — drives the deterministic drop injector.
    frames_sent: u64,
    /// Collectives started so far — drives the exit-after crash injector.
    ops_started: u64,
    bytes_sent: Arc<AtomicU64>,
    recorder: RecorderHandle,
    /// Collective-schedule recorder (see [`acp_collectives::schedule`]);
    /// in cross-check mode it also tags outgoing frames and verifies
    /// incoming ones at delivery.
    tracer: ScheduleTracer,
}

impl std::fmt::Debug for TcpCommunicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCommunicator")
            .field("rank", &self.rank)
            .field("world_size", &self.world_size)
            .field("wiring", &self.wiring)
            .field("topology", &self.topology)
            .field("epoch", &self.membership.epoch())
            .field("bytes_sent", &self.bytes_sent.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl TcpCommunicator {
    /// Binds this rank's listener and wires up the group.
    ///
    /// Blocks until every link is established (all ranks must be started
    /// within the retry budget) and returns structured errors — never
    /// hangs past the configured deadlines.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Io`] if the listener cannot bind and
    /// [`CommError::Timeout`] if peers do not appear in time.
    pub fn connect(cfg: TcpConfig) -> Result<Self, CommError> {
        let addr = cfg.peers[cfg.rank];
        let started = Instant::now();
        let mut backoff = cfg.retry.initial_backoff;
        let mut listener = None;
        // Rebinding a recently used port can hit TIME_WAIT; retry like a
        // connection.
        for attempt in 0..cfg.retry.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.retry.max_backoff);
            }
            match TcpListener::bind(addr) {
                Ok(l) => {
                    listener = Some(l);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::AddrInUse => continue,
                Err(e) => return Err(map_io("bind", started, &e)),
            }
        }
        let listener =
            listener.ok_or_else(|| CommError::Io(format!("bind {addr}: address still in use")))?;
        Self::with_listener(cfg, listener)
    }

    /// Wires up the group over an already bound listener (used by tests
    /// that pre-bind on ephemeral ports to avoid collisions).
    ///
    /// # Errors
    ///
    /// As for [`TcpCommunicator::connect`].
    pub fn with_listener(cfg: TcpConfig, listener: TcpListener) -> Result<Self, CommError> {
        let TcpConfig {
            rank,
            world_size,
            peers,
            wiring,
            topology,
            retry,
            op_deadline,
            fault,
            verify,
        } = cfg;
        if world_size == 0 || rank >= world_size || peers.len() != world_size {
            return Err(CommError::InvalidRank { rank, world_size });
        }
        if topology.world_size() != world_size {
            return Err(CommError::Io(format!(
                "topology {topology} does not cover world size {world_size}"
            )));
        }
        if !topology.is_flat() && wiring != Wiring::FullMesh {
            return Err(CommError::Io(format!(
                "two-level topology {topology} requires full-mesh wiring \
                 (intra/cross neighbours are not ring successors)"
            )));
        }
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let schedule = Arc::new(ScheduleCell::default());
        let mut tracer = ScheduleTracer::new(verify, Arc::clone(&schedule));
        // Same convention as the thread backend: a two-level group records
        // its arrangement as schedule op 0 (flat groups record nothing),
        // so flat and hierarchical runs can never digest-collide.
        if !topology.is_flat() {
            tracer.begin_op(OpKind::Topology, world_size as u64, topology.fingerprint());
        }
        let mut transport = TcpTransport {
            rank,
            virtual_rank: rank,
            peers,
            wiring,
            topology,
            epoch: 0,
            members: (0..world_size).collect(),
            departed: BTreeSet::new(),
            retry,
            op_deadline,
            fault,
            listener,
            links: Links::Single,
            frames_sent: 0,
            ops_started: 0,
            bytes_sent: Arc::clone(&bytes_sent),
            recorder: noop(),
            tracer,
        };
        transport.links = transport.establish()?;
        Ok(TcpCommunicator {
            rank,
            physical: rank,
            world_size,
            wiring,
            topology,
            membership: Membership::initial(world_size),
            inner: Some(transport),
            worker: None,
            bytes_sent,
            schedule,
            verify,
            recorder: noop(),
        })
    }

    /// This worker's rank in `[0, world_size)`.
    #[deprecated(
        since = "0.2.0",
        note = "use `rank_id()` (see `acp_collectives::RankId`)"
    )]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the group.
    #[deprecated(
        since = "0.2.0",
        note = "use `topology().world_size()` or `membership().world_size()`"
    )]
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// This worker's virtual rank: its position in the sorted member
    /// list, equal to the physical rank until a reform.
    pub fn rank_id(&self) -> RankId {
        RankId(self.rank)
    }

    /// The group's logical arrangement (flat after a reform).
    pub fn topology(&self) -> GroupTopology {
        self.topology
    }

    /// The current membership view: epoch plus sorted physical ranks.
    pub fn membership(&self) -> Membership {
        self.membership.clone()
    }

    /// Rebuilds the group around the surviving ranks after a
    /// [`CommError::MembershipChanged`]: every survivor must call this.
    /// Stale frames are drained behind a per-link reform barrier, ranks
    /// are re-derived over the sorted survivors, the topology falls back
    /// to a flat ring, and the post-reform schedule digest is
    /// cross-checked across survivors before the new membership is
    /// returned. Idempotent when nobody has departed.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Io`] on ring wiring (reform needs the full
    /// mesh), when a survivor disagrees on the post-reform schedule
    /// digest, or when the barrier cannot be completed; a further
    /// departure during the reform surfaces as another
    /// [`CommError::MembershipChanged`].
    pub fn reform(&mut self) -> Result<Membership, CommError> {
        let membership = match (&self.worker, self.inner.as_mut()) {
            (Some(worker), _) => worker.reform()?,
            (None, Some(transport)) => transport.reform()?,
            (None, None) => return Err(CommError::WorkerPanicked),
        };
        self.membership = membership.clone();
        self.world_size = membership.world_size();
        self.topology = GroupTopology::flat(self.world_size);
        self.rank = membership
            .virtual_rank_of(self.physical)
            .ok_or_else(|| CommError::Io("this rank is not among the survivors".to_string()))?
            .as_usize();
        Ok(membership)
    }

    /// Runs one collective to completion: inline on the transport before
    /// a worker exists, or as submit-and-wait once one is running (so a
    /// blocking call can never overtake dispatched operations).
    fn run_op(&mut self, op: CollectiveOp) -> Result<CollectiveResult, CommError> {
        match (&self.worker, self.inner.as_mut()) {
            (Some(worker), _) => worker.submit(op).wait(),
            (None, Some(transport)) => execute_collective(transport, op),
            // Unreachable: the transport only leaves when a worker spawns.
            (None, None) => Err(CommError::WorkerPanicked),
        }
    }

    /// Spawns the comm worker on first use, moving the transport into it.
    fn ensure_worker(&mut self) -> &CommWorker {
        if self.worker.is_none() {
            let transport = self
                .inner
                .take()
                // allow_verify(reason = "struct invariant: inner is Some until the worker takes it, and this branch only runs when worker is None")
                .expect("transport is present until the worker takes it");
            self.worker = Some(CommWorker::spawn(transport));
        }
        // allow_verify(reason = "assigned Some on the line above when absent")
        self.worker.as_ref().expect("worker just spawned")
    }
}

impl TcpTransport {
    /// The deadline used for link establishment: generous enough for the
    /// whole retry schedule, but never unbounded.
    fn establish_deadline(&self) -> Instant {
        let budget = if self.op_deadline.is_zero() {
            Duration::from_secs(30)
        } else {
            self.op_deadline
        };
        Instant::now() + budget
    }

    fn dial(&self, peer: usize) -> Result<Link, CommError> {
        let mut stream = connect_with_retry(&self.peers[peer], &self.retry, self.op_deadline)?;
        send_hello(&mut stream, self.rank)?;
        Ok(Link {
            peer,
            role: LinkRole::Connector,
            stream,
        })
    }

    fn accept_from(&self, expected: Option<usize>) -> Result<Link, CommError> {
        let started = Instant::now();
        // Liveness probes dial the listener just to check it is bound,
        // announce themselves with the probe sentinel and hang up; skip
        // them and keep accepting.
        loop {
            let mut stream = accept_with_deadline(&self.listener, self.establish_deadline())
                .map_err(|e| map_io("accept", started, &e))?;
            configure_stream(&stream, self.op_deadline)
                .map_err(|e| map_io("accept", started, &e))?;
            match expect_hello(&mut stream, None)? {
                peer if peer == PROBE_RANK as usize => continue,
                peer => {
                    if let Some(expected) = expected {
                        if peer != expected {
                            return Err(CommError::Io(format!(
                                "hello from rank {peer}, expected rank {expected}"
                            )));
                        }
                    }
                    return Ok(Link {
                        peer,
                        role: LinkRole::Acceptor,
                        stream,
                    });
                }
            }
        }
    }

    fn establish(&mut self) -> Result<Links, CommError> {
        let p = self.peers.len();
        let r = self.rank;
        if p == 1 {
            return Ok(Links::Single);
        }
        match self.wiring {
            Wiring::Ring => {
                // Connect to the successor first: `connect` completes at
                // the kernel level as soon as the peer's listener is bound
                // (the backlog holds it), so no rank blocks another's
                // dial and the cycle cannot deadlock.
                let next = (r + 1) % p;
                let prev = (r + p - 1) % p;
                let out = self.dial(next)?;
                let inn = self.accept_from(Some(prev))?;
                Ok(Links::Ring { out, inn })
            }
            Wiring::FullMesh => {
                let mut links: Vec<Option<Link>> = (0..p).map(|_| None).collect();
                // Deterministic pair orientation: the higher rank dials.
                for (q, slot) in links.iter_mut().enumerate().take(r) {
                    *slot = Some(self.dial(q)?);
                }
                for _ in r + 1..p {
                    let link = self.accept_from(None)?;
                    let peer = link.peer;
                    if peer <= r || peer >= p || links[peer].is_some() {
                        return Err(CommError::Io(format!(
                            "unexpected hello from rank {peer} during mesh establishment"
                        )));
                    }
                    links[peer] = Some(link);
                }
                Ok(Links::Mesh(links))
            }
        }
    }

    /// Deliberately closes a connector-role link and reconnects — the
    /// drop-injection path, also used to recover from send failures.
    fn reconnect(
        peers: &[SocketAddr],
        retry: &RetryPolicy,
        op_deadline: Duration,
        rank: usize,
        link: &mut Link,
    ) -> Result<(), CommError> {
        debug_assert_eq!(link.role, LinkRole::Connector);
        let _ = link.stream.shutdown(Shutdown::Both);
        let mut stream = connect_with_retry(&peers[link.peer], retry, op_deadline)?;
        send_hello(&mut stream, rank)?;
        link.stream = stream;
        Ok(())
    }

    /// Re-accepts a broken acceptor-role link (the peer reconnects after
    /// an injected drop) and re-validates the handshake.
    fn reaccept(
        listener: &TcpListener,
        op_deadline: Duration,
        link: &mut Link,
    ) -> Result<(), CommError> {
        debug_assert_eq!(link.role, LinkRole::Acceptor);
        let _ = link.stream.shutdown(Shutdown::Both);
        let started = Instant::now();
        let budget = if op_deadline.is_zero() {
            Duration::from_secs(30)
        } else {
            op_deadline
        };
        let deadline = Instant::now() + budget;
        loop {
            let mut stream = accept_with_deadline(listener, deadline)
                .map_err(|e| map_io("re-accept", started, &e))?;
            configure_stream(&stream, op_deadline).map_err(|e| map_io("re-accept", started, &e))?;
            // A liveness probe may have raced into the backlog; skip it.
            if expect_hello(&mut stream, None)? == PROBE_RANK as usize {
                continue;
            }
            link.stream = stream;
            return Ok(());
        }
    }

    /// Checks whether `phys`'s listener is still bound. A connection
    /// refusal means the process (and its listener) is gone — `true` is
    /// conservative: a live-but-busy peer stays "alive" and flows into
    /// the ordinary timeout path instead.
    fn probe_alive(&self, phys: usize) -> bool {
        match TcpStream::connect_timeout(&self.peers[phys], Duration::from_millis(250)) {
            Ok(mut stream) => {
                // Announce as a probe so accept loops can discard this
                // connection, then hang up.
                let _ = write_frame(&mut stream, &Frame::Hello(PROBE_RANK));
                let _ = stream.shutdown(Shutdown::Both);
                true
            }
            Err(e) => !matches!(e.kind(), io::ErrorKind::ConnectionRefused),
        }
    }

    /// The departed ranks among the current members, in rank order.
    fn departed_members(&self) -> Vec<usize> {
        self.members
            .iter()
            .copied()
            .filter(|m| self.departed.contains(m))
            .collect()
    }

    /// The structured membership error for the current view.
    fn membership_error(&self) -> CommError {
        CommError::MembershipChanged {
            epoch: self.epoch,
            departed: self.departed_members(),
        }
    }

    /// Records `phys` as departed and broadcasts the abort on every live
    /// link (best effort) so peers blocked on healthy links cascade out
    /// of the doomed collective instead of waiting out their deadlines.
    fn note_departed(&mut self, phys: usize) -> CommError {
        if self.departed.insert(phys) {
            let frame = Frame::Abort {
                epoch: self.epoch,
                departed: phys as u32,
            };
            match &mut self.links {
                Links::Single => {}
                Links::Ring { out, inn } => {
                    // Links are duplex: writing on the inbound link
                    // reaches the predecessor even though we never read
                    // from the outbound one.
                    let _ = write_frame(&mut out.stream, &frame);
                    let _ = write_frame(&mut inn.stream, &frame);
                }
                Links::Mesh(links) => {
                    for link in links.iter_mut().flatten() {
                        if link.peer != phys {
                            let _ = write_frame(&mut link.stream, &frame);
                        }
                    }
                }
            }
        }
        self.membership_error()
    }

    /// Converts a link failure to `phys` into either a membership change
    /// (listener gone → departed) or the original error (alive → let the
    /// ordinary recovery/timeout semantics stand).
    fn classify_link_failure(&mut self, phys: usize, err: CommError) -> CommError {
        if self.probe_alive(phys) {
            err
        } else {
            self.note_departed(phys)
        }
    }
}

impl WorkerTransport for TcpTransport {
    fn recorder(&self) -> &RecorderHandle {
        &self.recorder
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Applies the straggler and crash faults at the top of every
    /// collective.
    fn prepare(&mut self) {
        self.ops_started += 1;
        if let Some(n) = self.fault.exit_after {
            if self.ops_started >= n {
                // Injected crash: die at the start of this collective,
                // after the peers have committed to it. Multi-process
                // launches only (documented on `FaultInjector`).
                std::process::exit(0);
            }
        }
        if let Some(delay) = self.fault.straggler_delay {
            std::thread::sleep(delay);
        }
    }

    fn topk_mode(&self) -> TopkMode {
        match self.wiring {
            // Butterfly needs arbitrary pairs — mesh only. On a ring, fall
            // back to the exact gather-and-truncate collective.
            Wiring::FullMesh => TopkMode::Butterfly,
            Wiring::Ring => TopkMode::GatherTruncate,
        }
    }

    fn tracer(&mut self) -> Option<&mut ScheduleTracer> {
        Some(&mut self.tracer)
    }

    fn topology(&self) -> GroupTopology {
        self.topology
    }

    fn membership(&self) -> Membership {
        Membership::from_parts(self.epoch, self.members.clone())
    }

    fn reform(&mut self) -> Result<Membership, CommError> {
        let departed = self.departed_members();
        if departed.is_empty() {
            // Idempotent: nothing changed, nothing to renegotiate.
            return Ok(self.membership());
        }
        if departed.contains(&self.rank) {
            return Err(CommError::Io(
                "this rank was declared departed by its peers".to_string(),
            ));
        }
        let Links::Mesh(links) = &mut self.links else {
            return Err(CommError::Io(
                "membership reform requires full-mesh wiring \
                 (post-reform ring neighbours are arbitrary)"
                    .to_string(),
            ));
        };
        // Close the links to the departed; their slots stay empty.
        for &dead in &departed {
            if let Some(link) = links[dead].take() {
                let _ = link.stream.shutdown(Shutdown::Both);
            }
        }
        self.members.retain(|m| !departed.contains(m));
        self.epoch += 1;
        self.virtual_rank = self
            .members
            .binary_search(&self.rank)
            .map_err(|_| CommError::Io("this rank is not among the survivors".to_string()))?;
        self.topology = GroupTopology::flat(self.members.len());
        // Reform barrier: announce our epoch on every surviving link,
        // then drain each link up to the peer's matching announcement.
        // TCP links are FIFO, so everything read before the marker is a
        // stale pre-reform frame and safely discarded; everything after
        // it belongs to the new epoch.
        let epoch = self.epoch;
        let survivors: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.rank)
            .collect();
        {
            let Links::Mesh(links) = &mut self.links else {
                return Err(CommError::ProtocolMismatch);
            };
            let started = Instant::now();
            for &peer in &survivors {
                let link = links[peer].as_mut().ok_or(CommError::PeerDisconnected)?;
                write_frame(&mut link.stream, &Frame::Reform { epoch })
                    .map_err(|e| map_io("reform", started, &e))?;
            }
        }
        for &peer in &survivors {
            loop {
                let Links::Mesh(links) = &mut self.links else {
                    return Err(CommError::ProtocolMismatch);
                };
                let link = links[peer].as_mut().ok_or(CommError::PeerDisconnected)?;
                let started = Instant::now();
                match read_frame(&mut link.stream) {
                    // Stale pre-reform traffic: payloads of the aborted
                    // collective, probe hellos, last epoch's aborts.
                    Ok(Frame::Msg(_)) | Ok(Frame::Hello(_)) => continue,
                    Ok(Frame::Abort { epoch: e, .. }) if e < epoch => continue,
                    Ok(Frame::Abort { departed, .. }) => {
                        // A further death observed by a peer during the
                        // reform; surface it so the caller can reform
                        // again from the new view.
                        return Err(self.note_departed(departed as usize));
                    }
                    Ok(Frame::Reform { epoch: e }) if e == epoch => break,
                    Ok(Frame::Reform { epoch: e }) => {
                        return Err(CommError::Io(format!(
                            "rank {peer} reformed to epoch {e}, expected {epoch} \
                             (survivor views diverged)"
                        )));
                    }
                    Err(e) if is_disconnect(&e) && !self.probe_alive(peer) => {
                        return Err(self.note_departed(peer));
                    }
                    Err(e) => return Err(map_io("reform", started, &e)),
                }
            }
        }
        // Record the reform as a first-class schedule op, so offline
        // trace replay reproduces the digest chain, then cross-check the
        // digest across survivors: every rank must have seen the same
        // schedule before continuing.
        self.tracer.begin_op(
            OpKind::Reform,
            self.members.len() as u64,
            membership_param(self.epoch, &self.members),
        );
        let digest = self.tracer.digest();
        let halves = [(digest >> 32) as u32, digest as u32];
        let gathered = ring::all_gather_u32(self, &halves)?;
        for (peer_virtual, chunk) in gathered.chunks(2).enumerate() {
            if chunk != halves {
                return Err(CommError::Io(format!(
                    "post-reform schedule digest mismatch: virtual rank {peer_virtual} \
                     disagrees with rank {} (epoch {})",
                    self.virtual_rank, self.epoch
                )));
            }
        }
        Ok(self.membership())
    }
}

/// Which direction a link resolution is for (affects which ring link is
/// selected and the error message).
#[derive(Debug, Clone, Copy)]
enum Dir {
    Send,
    Recv,
}

/// Resolves the link used to reach physical rank `peer`, as a free
/// function over the link table so callers can keep disjoint borrows of
/// the other fields.
fn resolve_link(
    links: &mut Links,
    rank: usize,
    world_size: usize,
    peer: usize,
    dir: Dir,
) -> Result<&mut Link, CommError> {
    let p = world_size;
    if peer >= p || peer == rank {
        return Err(CommError::InvalidRank {
            rank: peer,
            world_size: p,
        });
    }
    match links {
        Links::Single => Err(CommError::InvalidRank {
            rank: peer,
            world_size: p,
        }),
        Links::Ring { out, inn } => {
            // Physical socket wiring, not schedule math: ring wiring keeps
            // exactly one outgoing and one incoming link per process, so
            // the only reachable peers are the physical neighbours.
            let (link, wanted) = match dir {
                // allow_verify(reason = "physical link resolution, not a schedule decision")
                Dir::Send => (out, (rank + 1) % p),
                // allow_verify(reason = "physical link resolution, not a schedule decision")
                Dir::Recv => (inn, (rank + p - 1) % p),
            };
            if peer == wanted {
                Ok(link)
            } else {
                Err(CommError::Io(format!(
                    "rank {peer} unreachable from rank {rank} on ring wiring \
                     (use Wiring::FullMesh for butterfly collectives)"
                )))
            }
        }
        Links::Mesh(links) => links[peer].as_mut().ok_or(CommError::PeerDisconnected),
    }
}

impl TcpTransport {
    /// The zero-copy send path shared by [`Transport::send_to`] and the
    /// borrowed-payload sends: the payload bytes go to the socket vectored,
    /// straight from the caller's storage (bucket buffers, gathered words)
    /// with no intermediate frame buffer or owned copy.
    fn send_view(&mut self, dest: usize, view: MsgRef<'_>) -> Result<(), CommError> {
        if !self.departed_members().is_empty() {
            return Err(self.membership_error());
        }
        let Some(&phys) = self.members.get(dest) else {
            return Err(CommError::InvalidRank {
                rank: dest,
                world_size: self.members.len(),
            });
        };
        if let Some(delay) = self.fault.send_delay {
            std::thread::sleep(delay);
        }
        self.frames_sent += 1;
        let inject_drop = self
            .fault
            .drop_every
            .is_some_and(|n| self.frames_sent.is_multiple_of(n));
        let bytes = view.payload_bytes();
        // Cross-check mode: stamp the frame with this rank's schedule
        // position (tag bytes are framing, not payload — `bytes` above).
        let tag = self.tracer.tag();
        let started = Instant::now();
        // Destructure for disjoint field borrows: the link lives in
        // `links`, while reconnection needs `peers`/`retry`.
        let TcpTransport {
            rank,
            peers,
            retry,
            op_deadline,
            links,
            ..
        } = self;
        let (rank, physical_world, op_deadline) = (*rank, peers.len(), *op_deadline);
        // A wiring error (non-neighbour on a ring) is the caller's
        // mistake, not a link failure — it must not be reclassified as a
        // membership change below.
        let link = resolve_link(links, rank, physical_world, phys, Dir::Send)?;
        let result = (|| -> Result<(), CommError> {
            if inject_drop && link.role == LinkRole::Connector {
                // Drop at a frame boundary and ride the normal reconnect
                // path; the peer sees EOF and re-accepts.
                Self::reconnect(peers, retry, op_deadline, rank, link)?;
            }
            match write_msg(&mut link.stream, tag.as_ref(), view) {
                Ok(()) => Ok(()),
                Err(e) if is_disconnect(&e) && link.role == LinkRole::Connector => {
                    // One reconnect-and-resend attempt; frames are written
                    // atomically, so the failed frame was not partially
                    // consumed by the peer.
                    Self::reconnect(peers, retry, op_deadline, rank, link)?;
                    write_msg(&mut link.stream, tag.as_ref(), view)
                        .map_err(|e| map_io("send", started, &e))
                }
                Err(e) => Err(map_io("send", started, &e)),
            }
        })();
        if let Err(err) = result {
            // A failed send to a vanished peer is a membership change,
            // not an I/O fault; anything else keeps its original error.
            return Err(self.classify_link_failure(phys, err));
        }
        self.bytes_sent.fetch_add(bytes, Ordering::SeqCst);
        if self.recorder.enabled() {
            self.recorder.add(keys::COMM_BYTES_SENT, bytes);
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    // `Transport::rank` is the schedule-facing *virtual* rank; `physical`
    // is the socket-facing slot. The mismatch in field name is deliberate.
    #[allow(clippy::misnamed_getters)]
    fn rank(&self) -> usize {
        self.virtual_rank
    }

    fn world_size(&self) -> usize {
        self.members.len()
    }

    fn send_to(&mut self, dest: usize, msg: WireMsg) -> Result<(), CommError> {
        match &msg {
            WireMsg::F32(v) => self.send_view(dest, MsgRef::F32(v)),
            WireMsg::U32(v) => self.send_view(dest, MsgRef::U32(v)),
            WireMsg::Sparse(i, v) => self.send_view(dest, MsgRef::Sparse(i, v)),
            WireMsg::Token => self.send_view(dest, MsgRef::Token),
            // The transport stamps the schedule tag itself (from the
            // tracer, inside `send_view`); a pre-tagged message is a
            // caller bug, not a sendable payload.
            WireMsg::Tagged(..) => Err(CommError::ProtocolMismatch),
        }
    }

    fn send_f32s(&mut self, dest: usize, payload: &[f32]) -> Result<(), CommError> {
        self.send_view(dest, MsgRef::F32(payload))
    }

    fn send_u32s(&mut self, dest: usize, payload: &[u32]) -> Result<(), CommError> {
        self.send_view(dest, MsgRef::U32(payload))
    }

    fn send_sparse(
        &mut self,
        dest: usize,
        indices: &[u32],
        values: &[f32],
    ) -> Result<(), CommError> {
        self.send_view(dest, MsgRef::Sparse(indices, values))
    }

    fn recv_from(&mut self, src: usize) -> Result<WireMsg, CommError> {
        if !self.departed_members().is_empty() {
            return Err(self.membership_error());
        }
        let Some(&phys) = self.members.get(src) else {
            return Err(CommError::InvalidRank {
                rank: src,
                world_size: self.members.len(),
            });
        };
        let started = Instant::now();
        // One recovery attempt per receive: a broken link is
        // re-established according to our role, then the read is retried.
        let mut recovered = false;
        loop {
            let TcpTransport {
                rank, peers, links, ..
            } = self;
            let (rank, physical_world) = (*rank, peers.len());
            let link = resolve_link(links, rank, physical_world, phys, Dir::Recv)?;
            match read_frame(&mut link.stream) {
                Ok(Frame::Msg(msg)) => {
                    if self.recorder.enabled() {
                        self.recorder
                            .add(keys::COMM_BYTES_RECV, msg.payload_bytes());
                    }
                    // Delivery-time schedule check (see
                    // `acp_collectives::schedule::deliver_checked`); a
                    // mismatch tears this rank down, and its closed
                    // sockets surface to peers within their op deadline.
                    return schedule::deliver_checked(&self.tracer, msg);
                }
                // A stray hello can only follow a reconnect (or probe)
                // that raced our read; consume it and keep reading.
                Ok(Frame::Hello(_)) => continue,
                Ok(Frame::Abort { epoch, departed }) => {
                    if epoch < self.epoch {
                        // Stale abort from before our reform; ignore.
                        continue;
                    }
                    // A peer observed a death we have not seen yet;
                    // propagate the cascade and surface the change.
                    return Err(self.note_departed(departed as usize));
                }
                Ok(Frame::Reform { epoch }) => {
                    // Pre-reform frames are drained inside reform()'s
                    // barrier; meeting one mid-collective means this rank
                    // missed the abort that must precede it (FIFO).
                    return Err(CommError::Io(format!(
                        "peer rank {phys} reformed to epoch {epoch} mid-collective"
                    )));
                }
                Err(e) if is_disconnect(&e) && !recovered => {
                    recovered = true;
                    // A vanished listener means the peer is dead, not
                    // reconnecting — skip recovery and fail structured.
                    if !self.probe_alive(phys) {
                        return Err(self.note_departed(phys));
                    }
                    let TcpTransport {
                        rank,
                        peers,
                        retry,
                        op_deadline,
                        listener,
                        links,
                        ..
                    } = self;
                    let link = resolve_link(links, *rank, peers.len(), phys, Dir::Recv)?;
                    let recovery = match link.role {
                        LinkRole::Acceptor => Self::reaccept(listener, *op_deadline, link),
                        LinkRole::Connector => {
                            Self::reconnect(peers, retry, *op_deadline, *rank, link)
                        }
                    };
                    if let Err(err) = recovery {
                        // The peer died between the probe and the
                        // recovery (exit races the probe's connect):
                        // re-classify rather than leak a raw I/O error.
                        return Err(self.classify_link_failure(phys, err));
                    }
                }
                Err(e) => {
                    let err = map_io("recv", started, &e);
                    // A live peer keeps its timeout/disconnect semantics;
                    // a vanished one is a membership change even when the
                    // first recovery attempt spuriously succeeded.
                    return Err(self.classify_link_failure(phys, err));
                }
            }
        }
    }
}

/// Point-to-point access for callers that drive the transport directly
/// (topology diagnostics, tests). Unavailable once the comm worker owns
/// the transport — use the collective API then.
impl Transport for TcpCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn send_to(&mut self, dest: usize, msg: WireMsg) -> Result<(), CommError> {
        match self.inner.as_mut() {
            Some(transport) => transport.send_to(dest, msg),
            None => Err(CommError::Io(
                "transport is owned by the comm worker; use the collective API".into(),
            )),
        }
    }

    fn recv_from(&mut self, src: usize) -> Result<WireMsg, CommError> {
        match self.inner.as_mut() {
            Some(transport) => transport.recv_from(src),
            None => Err(CommError::Io(
                "transport is owned by the comm worker; use the collective API".into(),
            )),
        }
    }

    fn send_f32s(&mut self, dest: usize, payload: &[f32]) -> Result<(), CommError> {
        match self.inner.as_mut() {
            Some(transport) => transport.send_f32s(dest, payload),
            None => Err(CommError::Io(
                "transport is owned by the comm worker; use the collective API".into(),
            )),
        }
    }

    fn send_u32s(&mut self, dest: usize, payload: &[u32]) -> Result<(), CommError> {
        match self.inner.as_mut() {
            Some(transport) => transport.send_u32s(dest, payload),
            None => Err(CommError::Io(
                "transport is owned by the comm worker; use the collective API".into(),
            )),
        }
    }

    fn send_sparse(
        &mut self,
        dest: usize,
        indices: &[u32],
        values: &[f32],
    ) -> Result<(), CommError> {
        match self.inner.as_mut() {
            Some(transport) => transport.send_sparse(dest, indices, values),
            None => Err(CommError::Io(
                "transport is owned by the comm worker; use the collective API".into(),
            )),
        }
    }
}

impl Communicator for TcpCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn all_reduce(&mut self, buf: &mut [f32], op: ReduceOp) -> Result<(), CommError> {
        let out = self
            .run_op(CollectiveOp::AllReduce {
                // allow_verify(reason = "the comm worker owns op buffers across threads; per-hop sends are zero-copy")
                buf: buf.to_vec(),
                op,
            })?
            .into_f32()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    fn all_gather_f32(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError> {
        self.run_op(CollectiveOp::AllGatherF32 {
            // allow_verify(reason = "the comm worker owns op buffers across threads; per-hop sends are zero-copy")
            send: send.to_vec(),
        })?
        .into_f32()
    }

    fn all_gather_u32(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError> {
        self.run_op(CollectiveOp::AllGatherU32 {
            // allow_verify(reason = "the comm worker owns op buffers across threads; per-hop sends are zero-copy")
            send: send.to_vec(),
        })?
        .into_u32()
    }

    fn broadcast(&mut self, buf: &mut [f32], root: usize) -> Result<(), CommError> {
        let out = self
            .run_op(CollectiveOp::Broadcast {
                // allow_verify(reason = "the comm worker owns op buffers across threads; per-hop sends are zero-copy")
                buf: buf.to_vec(),
                root,
            })?
            .into_f32()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        // Untimed, as in the thread backend: barriers move no payload.
        self.run_op(CollectiveOp::Barrier).map(|_| ())
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::SeqCst)
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = Arc::clone(&recorder);
        match (&self.worker, self.inner.as_mut()) {
            (Some(worker), _) => worker.set_recorder(recorder),
            (None, Some(transport)) => transport.recorder = recorder,
            (None, None) => {}
        }
    }

    fn global_topk(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<(Vec<u32>, Vec<f32>), CommError> {
        self.run_op(CollectiveOp::GlobalTopk {
            // allow_verify(reason = "the comm worker owns op buffers across threads; per-hop sends are zero-copy")
            indices: indices.to_vec(),
            // allow_verify(reason = "the comm worker owns op buffers across threads; per-hop sends are zero-copy")
            values: values.to_vec(),
            k,
        })?
        .into_sparse()
    }

    fn dispatch(&mut self, op: CollectiveOp) -> PendingOp {
        self.ensure_worker().submit(op)
    }

    fn schedule(&self) -> Option<ScheduleSnapshot> {
        Some(
            self.schedule
                .snapshot(self.verify == VerifyMode::CrossCheck),
        )
    }

    fn topology(&self) -> GroupTopology {
        self.topology
    }

    fn membership(&self) -> Membership {
        self.membership.clone()
    }

    fn reform(&mut self) -> Result<Membership, CommError> {
        TcpCommunicator::reform(self)
    }
}

/// Test/bench harness mirroring `ThreadGroup::run`: binds `world_size`
/// listeners on ephemeral loopback ports, wires the group in worker
/// threads (real sockets, one process), and returns the per-rank results.
///
/// # Panics
///
/// Panics if a listener cannot bind, a worker panics, or establishment
/// fails.
pub fn run_local<T, F>(world_size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(TcpCommunicator) -> T + Sync,
{
    run_local_with(world_size, |_rank, cfg| cfg, f)
}

/// [`run_local`] with a per-rank configuration hook (fault plans,
/// deadlines, topology).
///
/// # Panics
///
/// As for [`run_local`]. The hook must not change `rank`, `world_size`
/// or `peers`.
pub fn run_local_with<T, F, G>(world_size: usize, tweak: G, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(TcpCommunicator) -> T + Sync,
    G: Fn(usize, TcpConfig) -> TcpConfig + Sync,
{
    assert!(world_size > 0, "world_size must be positive");
    let listeners: Vec<TcpListener> = (0..world_size)
        // allow_verify(reason = "test harness: a bind failure is the caller's test failure")
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral loopback port"))
        .collect();
    let peers: Vec<SocketAddr> = listeners
        .iter()
        // allow_verify(reason = "test harness: bound listeners always report an addr")
        .map(|l| l.local_addr().expect("listener has a local addr"))
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let peers = peers.clone();
                let tweak = &tweak;
                let f = &f;
                scope.spawn(move || {
                    let mut cfg = TcpConfig {
                        rank,
                        world_size,
                        peers,
                        wiring: Wiring::Ring,
                        topology: GroupTopology::flat(world_size),
                        retry: RetryPolicy::default(),
                        op_deadline: Duration::from_secs(20),
                        fault: FaultInjector::none(),
                        verify: VerifyMode::from_env(),
                    };
                    cfg = tweak(rank, cfg);
                    let comm =
                        // allow_verify(reason = "test harness entry point; establishment failures are the caller's test failures")
                        TcpCommunicator::with_listener(cfg, listener).expect("establish group");
                    f(comm)
                })
            })
            .collect();
        handles
            .into_iter()
            // allow_verify(reason = "test harness: propagate worker panics to the calling test")
            .map(|h| h.join().expect("tcp worker panicked"))
            .collect()
    })
}
