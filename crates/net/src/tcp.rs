//! The TCP transport: topology wiring, retry, deadlines, reconnect.
//!
//! A [`TcpCommunicator`] is one rank's endpoint of a multi-process group.
//! Every rank owns a listener; links are wired either as a **ring** (each
//! rank connects to its successor and accepts from its predecessor — all
//! the trait's collectives are ring algorithms, so two links suffice) or
//! as a **full mesh** (every pair connected once — required for the
//! butterfly collectives: recursive doubling and the gTop-k sparse
//! all-reduce).
//!
//! Fault semantics:
//!
//! * connection establishment retries with bounded exponential backoff
//!   ([`RetryPolicy`]) and surfaces [`CommError::Timeout`] when exhausted;
//! * every receive is bounded by [`TcpConfig::op_deadline`] — a dead or
//!   straggling peer produces [`CommError::Timeout`], never a hang;
//! * a link that breaks mid-collective is re-established once per
//!   operation (connector side re-connects, acceptor side re-accepts and
//!   re-validates the hello handshake); a second failure surfaces as
//!   [`CommError::PeerDisconnected`] / [`CommError::Io`];
//! * injected drops ([`FaultInjector::drop_every`]) deliberately close a
//!   connector-role link at a frame boundary and ride the same
//!   reconnect path, so the retry machinery is exercised by tests rather
//!   than trusted.
//!
//! After any error a communicator's collective state is undefined (a peer
//! may have partially progressed); callers should tear the group down.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acp_collectives::nonblocking::execute_collective;
use acp_collectives::ring::{Transport, WireMsg};
use acp_collectives::schedule::{self, ScheduleCell, ScheduleTracer};
use acp_collectives::{
    CollectiveOp, CollectiveResult, CommError, CommWorker, Communicator, PendingOp, ReduceOp,
    ScheduleSnapshot, TopkMode, VerifyMode, WorkerTransport,
};
use acp_telemetry::{keys, noop, RecorderHandle};

use crate::fault::FaultInjector;
use crate::frame::{read_frame, write_frame, Frame};

/// Bounded exponential backoff for connection establishment (and
/// re-establishment after a drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum connect attempts before giving up.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Per-attempt TCP connect timeout.
    pub attempt_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 20,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            attempt_timeout: Duration::from_secs(2),
        }
    }
}

/// How the ranks are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Two links per rank: connect to the successor, accept from the
    /// predecessor. Supports every [`Communicator`] collective (they are
    /// all ring algorithms); `O(p)` sockets in total.
    #[default]
    Ring,
    /// One link per pair (`O(p²)` sockets): additionally supports the
    /// butterfly collectives (gTop-k sparse all-reduce, recursive
    /// doubling) and direct point-to-point exchange.
    FullMesh,
}

/// Configuration of one rank's [`TcpCommunicator`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This rank in `[0, world_size)`.
    pub rank: usize,
    /// Number of ranks in the group.
    pub world_size: usize,
    /// Listener address of every rank, indexed by rank.
    pub peers: Vec<SocketAddr>,
    /// Link wiring.
    pub topology: Topology,
    /// Connection-establishment retry policy.
    pub retry: RetryPolicy,
    /// Deadline applied to every blocking receive (and to link
    /// re-establishment); `Duration::ZERO` disables the deadline.
    pub op_deadline: Duration,
    /// Fault plan (inert by default).
    pub fault: FaultInjector,
    /// Collective-schedule verification mode (see
    /// [`acp_collectives::schedule`]). [`TcpConfig::local`] reads it from
    /// the `ACP_VERIFY_SCHEDULE` environment variable, so multi-process
    /// launches inherit the launcher's setting; all ranks of a group must
    /// agree on it.
    pub verify: VerifyMode,
}

impl TcpConfig {
    /// A loopback group: rank `i` listens on `127.0.0.1:(base_port + i)`.
    ///
    /// # Panics
    ///
    /// Panics if `world_size == 0`, `rank >= world_size`, or the port
    /// range overflows `u16`.
    pub fn local(rank: usize, world_size: usize, base_port: u16) -> Self {
        assert!(world_size > 0, "world_size must be positive");
        assert!(rank < world_size, "rank {rank} >= world size {world_size}");
        let peers = (0..world_size)
            .map(|i| {
                let port = base_port
                    .checked_add(i as u16)
                    // allow_verify(reason = "documented panic of a config constructor; no group exists yet")
                    .expect("port range overflows u16");
                SocketAddr::from(([127, 0, 0, 1], port))
            })
            .collect();
        TcpConfig {
            rank,
            world_size,
            peers,
            topology: Topology::Ring,
            retry: RetryPolicy::default(),
            op_deadline: Duration::from_secs(30),
            fault: FaultInjector::none(),
            verify: VerifyMode::from_env(),
        }
    }

    /// Sets the link wiring.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the per-receive deadline (`Duration::ZERO` disables it).
    pub fn with_op_deadline(mut self, deadline: Duration) -> Self {
        self.op_deadline = deadline;
        self
    }

    /// Sets the connection retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the fault plan.
    pub fn with_fault(mut self, fault: FaultInjector) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the schedule-verification mode.
    pub fn with_verify(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }
}

/// Which side of a link this rank is; determines who re-establishes a
/// broken connection (connector dials again, acceptor re-accepts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkRole {
    /// This rank dialed the peer's listener.
    Connector,
    /// This rank accepted the peer's dial on its own listener.
    Acceptor,
}

/// One established connection to a peer rank.
#[derive(Debug)]
struct Link {
    peer: usize,
    role: LinkRole,
    stream: TcpStream,
}

/// The wired-up links of one rank.
#[derive(Debug)]
enum Wiring {
    /// `world_size == 1`: no links, collectives are identities.
    Single,
    /// Ring: a dedicated outgoing link to the successor and incoming link
    /// from the predecessor (distinct sockets even when they are the same
    /// peer, i.e. `world_size == 2`).
    Ring {
        /// Link to `(rank + 1) % p`; all sends go here.
        out: Link,
        /// Link from `(rank − 1) % p`; all receives come from here.
        inn: Link,
    },
    /// Full mesh: one duplex link per peer, indexed by rank (`None` at
    /// our own slot).
    Mesh(Vec<Option<Link>>),
}

fn timeout_ms(started: Instant) -> u64 {
    started.elapsed().as_millis().max(1) as u64
}

/// Maps an I/O failure to a structured [`CommError`].
fn map_io(op: &'static str, started: Instant, e: &io::Error) -> CommError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => CommError::Timeout {
            op,
            waited_ms: timeout_ms(started),
        },
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => CommError::PeerDisconnected,
        _ => CommError::Io(format!("{op}: {e}")),
    }
}

/// Whether an I/O error means "the link is gone" (worth one reconnect
/// attempt) as opposed to a timeout or a protocol problem.
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
    )
}

fn configure_stream(stream: &TcpStream, op_deadline: Duration) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let t = if op_deadline.is_zero() {
        None
    } else {
        Some(op_deadline)
    };
    stream.set_read_timeout(t)?;
    stream.set_write_timeout(t)?;
    Ok(())
}

/// Dials `addr` with bounded exponential backoff.
fn connect_with_retry(
    addr: &SocketAddr,
    retry: &RetryPolicy,
    op_deadline: Duration,
) -> Result<TcpStream, CommError> {
    let started = Instant::now();
    let mut backoff = retry.initial_backoff;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..retry.max_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(retry.max_backoff);
        }
        match TcpStream::connect_timeout(addr, retry.attempt_timeout) {
            Ok(stream) => {
                configure_stream(&stream, op_deadline)
                    .map_err(|e| map_io("configure", started, &e))?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    match last_err {
        Some(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(CommError::Timeout {
                op: "connect",
                waited_ms: timeout_ms(started),
            })
        }
        Some(e) => Err(CommError::Io(format!(
            "connect to {addr} failed after {} attempts: {e}",
            retry.max_attempts.max(1)
        ))),
        None => unreachable!("at least one connect attempt is made"),
    }
}

/// Accepts one connection, polling until `deadline`.
fn accept_with_deadline(listener: &TcpListener, deadline: Instant) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    let result = loop {
        match listener.accept() {
            Ok((stream, _)) => break Ok(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    break Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no incoming connection before the deadline",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => break Err(e),
        }
    };
    listener.set_nonblocking(false)?;
    let stream = result?;
    stream.set_nonblocking(false)?;
    Ok(stream)
}

/// Reads the hello handshake off a fresh stream and checks the peer rank.
fn expect_hello(stream: &mut TcpStream, expected: Option<usize>) -> Result<usize, CommError> {
    let started = Instant::now();
    match read_frame(stream) {
        Ok(Frame::Hello(rank)) => {
            let rank = rank as usize;
            if let Some(expected) = expected {
                if rank != expected {
                    return Err(CommError::Io(format!(
                        "hello from rank {rank}, expected rank {expected}"
                    )));
                }
            }
            Ok(rank)
        }
        Ok(other) => Err(CommError::Io(format!(
            "expected hello handshake, got {other:?}"
        ))),
        Err(e) => Err(map_io("hello", started, &e)),
    }
}

fn send_hello(stream: &mut TcpStream, rank: usize) -> Result<(), CommError> {
    let started = Instant::now();
    write_frame(stream, &Frame::Hello(rank as u32)).map_err(|e| map_io("hello", started, &e))
}

/// A multi-process TCP endpoint implementing [`Communicator`].
///
/// Runs the *same* generic ring algorithms as
/// [`acp_collectives::ThreadCommunicator`] (see [`acp_collectives::ring`]),
/// so results are bit-exact across backends. Telemetry flows through the
/// same recorder keys, so wire bytes reconcile against the Table II cost
/// model regardless of transport.
pub struct TcpCommunicator {
    rank: usize,
    world_size: usize,
    topology: Topology,
    /// The socket transport; `Some` until the comm worker takes it.
    inner: Option<TcpTransport>,
    /// Per-rank comm worker, spawned lazily by the first dispatched
    /// operation; once running, every collective (blocking included)
    /// routes through it so submission order stays FIFO-total.
    worker: Option<CommWorker>,
    /// Shared with the transport so `bytes_sent` stays readable after the
    /// transport moves into the worker thread.
    bytes_sent: Arc<AtomicU64>,
    /// Schedule-trace state, shared with the transport's tracer so
    /// [`Communicator::schedule`] stays readable after the transport moves
    /// into the worker thread.
    schedule: Arc<ScheduleCell>,
    verify: VerifyMode,
    recorder: RecorderHandle,
}

/// The socket transport state of one rank. Lives inside the
/// [`TcpCommunicator`] until a comm worker is spawned, then moves into the
/// worker thread; collectives run the same ring algorithms on it either
/// way.
struct TcpTransport {
    rank: usize,
    world_size: usize,
    peers: Vec<SocketAddr>,
    topology: Topology,
    retry: RetryPolicy,
    op_deadline: Duration,
    fault: FaultInjector,
    listener: TcpListener,
    wiring: Wiring,
    /// Frames sent so far — drives the deterministic drop injector.
    frames_sent: u64,
    bytes_sent: Arc<AtomicU64>,
    recorder: RecorderHandle,
    /// Collective-schedule recorder (see [`acp_collectives::schedule`]);
    /// in cross-check mode it also tags outgoing frames and verifies
    /// incoming ones at delivery.
    tracer: ScheduleTracer,
}

impl std::fmt::Debug for TcpCommunicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCommunicator")
            .field("rank", &self.rank)
            .field("world_size", &self.world_size)
            .field("topology", &self.topology)
            .field("bytes_sent", &self.bytes_sent.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl TcpCommunicator {
    /// Binds this rank's listener and wires up the group.
    ///
    /// Blocks until every link is established (all ranks must be started
    /// within the retry budget) and returns structured errors — never
    /// hangs past the configured deadlines.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Io`] if the listener cannot bind and
    /// [`CommError::Timeout`] if peers do not appear in time.
    pub fn connect(cfg: TcpConfig) -> Result<Self, CommError> {
        let addr = cfg.peers[cfg.rank];
        let started = Instant::now();
        let mut backoff = cfg.retry.initial_backoff;
        let mut listener = None;
        // Rebinding a recently used port can hit TIME_WAIT; retry like a
        // connection.
        for attempt in 0..cfg.retry.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.retry.max_backoff);
            }
            match TcpListener::bind(addr) {
                Ok(l) => {
                    listener = Some(l);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::AddrInUse => continue,
                Err(e) => return Err(map_io("bind", started, &e)),
            }
        }
        let listener =
            listener.ok_or_else(|| CommError::Io(format!("bind {addr}: address still in use")))?;
        Self::with_listener(cfg, listener)
    }

    /// Wires up the group over an already bound listener (used by tests
    /// that pre-bind on ephemeral ports to avoid collisions).
    ///
    /// # Errors
    ///
    /// As for [`TcpCommunicator::connect`].
    pub fn with_listener(cfg: TcpConfig, listener: TcpListener) -> Result<Self, CommError> {
        let TcpConfig {
            rank,
            world_size,
            peers,
            topology,
            retry,
            op_deadline,
            fault,
            verify,
        } = cfg;
        if world_size == 0 || rank >= world_size || peers.len() != world_size {
            return Err(CommError::InvalidRank { rank, world_size });
        }
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let schedule = Arc::new(ScheduleCell::default());
        let mut transport = TcpTransport {
            rank,
            world_size,
            peers,
            topology,
            retry,
            op_deadline,
            fault,
            listener,
            wiring: Wiring::Single,
            frames_sent: 0,
            bytes_sent: Arc::clone(&bytes_sent),
            recorder: noop(),
            tracer: ScheduleTracer::new(verify, Arc::clone(&schedule)),
        };
        transport.wiring = transport.establish()?;
        Ok(TcpCommunicator {
            rank,
            world_size,
            topology,
            inner: Some(transport),
            worker: None,
            bytes_sent,
            schedule,
            verify,
            recorder: noop(),
        })
    }

    /// This worker's rank in `[0, world_size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the group.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Runs one collective to completion: inline on the transport before
    /// a worker exists, or as submit-and-wait once one is running (so a
    /// blocking call can never overtake dispatched operations).
    fn run_op(&mut self, op: CollectiveOp) -> Result<CollectiveResult, CommError> {
        match (&self.worker, self.inner.as_mut()) {
            (Some(worker), _) => worker.submit(op).wait(),
            (None, Some(transport)) => execute_collective(transport, op),
            // Unreachable: the transport only leaves when a worker spawns.
            (None, None) => Err(CommError::WorkerPanicked),
        }
    }

    /// Spawns the comm worker on first use, moving the transport into it.
    fn ensure_worker(&mut self) -> &CommWorker {
        if self.worker.is_none() {
            let transport = self
                .inner
                .take()
                // allow_verify(reason = "struct invariant: inner is Some until the worker takes it, and this branch only runs when worker is None")
                .expect("transport is present until the worker takes it");
            self.worker = Some(CommWorker::spawn(transport));
        }
        // allow_verify(reason = "assigned Some on the line above when absent")
        self.worker.as_ref().expect("worker just spawned")
    }
}

impl TcpTransport {
    /// The deadline used for link establishment: generous enough for the
    /// whole retry schedule, but never unbounded.
    fn establish_deadline(&self) -> Instant {
        let budget = if self.op_deadline.is_zero() {
            Duration::from_secs(30)
        } else {
            self.op_deadline
        };
        Instant::now() + budget
    }

    fn dial(&self, peer: usize) -> Result<Link, CommError> {
        let mut stream = connect_with_retry(&self.peers[peer], &self.retry, self.op_deadline)?;
        send_hello(&mut stream, self.rank)?;
        Ok(Link {
            peer,
            role: LinkRole::Connector,
            stream,
        })
    }

    fn accept_from(&self, expected: Option<usize>) -> Result<Link, CommError> {
        let started = Instant::now();
        let mut stream = accept_with_deadline(&self.listener, self.establish_deadline())
            .map_err(|e| map_io("accept", started, &e))?;
        configure_stream(&stream, self.op_deadline).map_err(|e| map_io("accept", started, &e))?;
        let peer = expect_hello(&mut stream, expected)?;
        Ok(Link {
            peer,
            role: LinkRole::Acceptor,
            stream,
        })
    }

    fn establish(&mut self) -> Result<Wiring, CommError> {
        let p = self.world_size;
        let r = self.rank;
        if p == 1 {
            return Ok(Wiring::Single);
        }
        match self.topology {
            Topology::Ring => {
                // Connect to the successor first: `connect` completes at
                // the kernel level as soon as the peer's listener is bound
                // (the backlog holds it), so no rank blocks another's
                // dial and the cycle cannot deadlock.
                let next = (r + 1) % p;
                let prev = (r + p - 1) % p;
                let out = self.dial(next)?;
                let inn = self.accept_from(Some(prev))?;
                Ok(Wiring::Ring { out, inn })
            }
            Topology::FullMesh => {
                let mut links: Vec<Option<Link>> = (0..p).map(|_| None).collect();
                // Deterministic pair orientation: the higher rank dials.
                for (q, slot) in links.iter_mut().enumerate().take(r) {
                    *slot = Some(self.dial(q)?);
                }
                for _ in r + 1..p {
                    let link = self.accept_from(None)?;
                    let peer = link.peer;
                    if peer <= r || peer >= p || links[peer].is_some() {
                        return Err(CommError::Io(format!(
                            "unexpected hello from rank {peer} during mesh establishment"
                        )));
                    }
                    links[peer] = Some(link);
                }
                Ok(Wiring::Mesh(links))
            }
        }
    }

    /// Deliberately closes a connector-role link and reconnects — the
    /// drop-injection path, also used to recover from send failures.
    fn reconnect(
        peers: &[SocketAddr],
        retry: &RetryPolicy,
        op_deadline: Duration,
        rank: usize,
        link: &mut Link,
    ) -> Result<(), CommError> {
        debug_assert_eq!(link.role, LinkRole::Connector);
        let _ = link.stream.shutdown(Shutdown::Both);
        let mut stream = connect_with_retry(&peers[link.peer], retry, op_deadline)?;
        send_hello(&mut stream, rank)?;
        link.stream = stream;
        Ok(())
    }

    /// Re-accepts a broken acceptor-role link (the peer reconnects after
    /// an injected drop) and re-validates the handshake.
    fn reaccept(
        listener: &TcpListener,
        op_deadline: Duration,
        link: &mut Link,
    ) -> Result<(), CommError> {
        debug_assert_eq!(link.role, LinkRole::Acceptor);
        let _ = link.stream.shutdown(Shutdown::Both);
        let started = Instant::now();
        let budget = if op_deadline.is_zero() {
            Duration::from_secs(30)
        } else {
            op_deadline
        };
        let mut stream = accept_with_deadline(listener, Instant::now() + budget)
            .map_err(|e| map_io("re-accept", started, &e))?;
        configure_stream(&stream, op_deadline).map_err(|e| map_io("re-accept", started, &e))?;
        expect_hello(&mut stream, Some(link.peer))?;
        link.stream = stream;
        Ok(())
    }
}

impl WorkerTransport for TcpTransport {
    fn recorder(&self) -> &RecorderHandle {
        &self.recorder
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Applies the straggler fault at the top of every collective.
    fn prepare(&mut self) {
        if let Some(delay) = self.fault.straggler_delay {
            std::thread::sleep(delay);
        }
    }

    fn topk_mode(&self) -> TopkMode {
        match self.topology {
            // Butterfly needs arbitrary pairs — mesh only. On a ring, fall
            // back to the exact gather-and-truncate collective.
            Topology::FullMesh => TopkMode::Butterfly,
            Topology::Ring => TopkMode::GatherTruncate,
        }
    }

    fn tracer(&mut self) -> Option<&mut ScheduleTracer> {
        Some(&mut self.tracer)
    }
}

/// Which direction a link resolution is for (affects which ring link is
/// selected and the error message).
#[derive(Debug, Clone, Copy)]
enum Dir {
    Send,
    Recv,
}

/// Resolves the link used to reach `peer`, as a free function over the
/// wiring so callers can keep disjoint borrows of the other fields.
fn resolve_link(
    wiring: &mut Wiring,
    rank: usize,
    world_size: usize,
    peer: usize,
    dir: Dir,
) -> Result<&mut Link, CommError> {
    let p = world_size;
    if peer >= p || peer == rank {
        return Err(CommError::InvalidRank {
            rank: peer,
            world_size: p,
        });
    }
    match wiring {
        Wiring::Single => Err(CommError::InvalidRank {
            rank: peer,
            world_size: p,
        }),
        Wiring::Ring { out, inn } => {
            let (link, wanted) = match dir {
                Dir::Send => (out, (rank + 1) % p),
                Dir::Recv => (inn, (rank + p - 1) % p),
            };
            if peer == wanted {
                Ok(link)
            } else {
                Err(CommError::Io(format!(
                    "rank {peer} unreachable from rank {rank} on ring topology \
                     (use Topology::FullMesh for butterfly collectives)"
                )))
            }
        }
        Wiring::Mesh(links) => links[peer].as_mut().ok_or(CommError::PeerDisconnected),
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn send_to(&mut self, dest: usize, msg: WireMsg) -> Result<(), CommError> {
        if let Some(delay) = self.fault.send_delay {
            std::thread::sleep(delay);
        }
        self.frames_sent += 1;
        let inject_drop = self
            .fault
            .drop_every
            .is_some_and(|n| self.frames_sent.is_multiple_of(n));
        let bytes = msg.payload_bytes();
        // Cross-check mode: stamp the frame with this rank's schedule
        // position (tag bytes are framing, not payload — `bytes` above).
        let msg = match self.tracer.tag() {
            Some(tag) => WireMsg::Tagged(tag, Box::new(msg)),
            None => msg,
        };
        let frame = Frame::Msg(msg);
        let started = Instant::now();
        // Destructure for disjoint field borrows: the link lives in
        // `wiring`, while reconnection needs `peers`/`retry`.
        let TcpTransport {
            rank,
            world_size,
            peers,
            retry,
            op_deadline,
            wiring,
            ..
        } = self;
        let (rank, world_size, op_deadline) = (*rank, *world_size, *op_deadline);
        let link = resolve_link(wiring, rank, world_size, dest, Dir::Send)?;
        if inject_drop && link.role == LinkRole::Connector {
            // Drop at a frame boundary and ride the normal reconnect path;
            // the peer sees EOF and re-accepts.
            Self::reconnect(peers, retry, op_deadline, rank, link)?;
        }
        match write_frame(&mut link.stream, &frame) {
            Ok(()) => {}
            Err(e) if is_disconnect(&e) && link.role == LinkRole::Connector => {
                // One reconnect-and-resend attempt; frames are written
                // atomically, so the failed frame was not partially
                // consumed by the peer.
                Self::reconnect(peers, retry, op_deadline, rank, link)?;
                write_frame(&mut link.stream, &frame).map_err(|e| map_io("send", started, &e))?;
            }
            Err(e) => return Err(map_io("send", started, &e)),
        }
        self.bytes_sent.fetch_add(bytes, Ordering::SeqCst);
        if self.recorder.enabled() {
            self.recorder.add(keys::COMM_BYTES_SENT, bytes);
        }
        Ok(())
    }

    fn recv_from(&mut self, src: usize) -> Result<WireMsg, CommError> {
        let started = Instant::now();
        // One recovery attempt per receive: a broken link is
        // re-established according to our role, then the read is retried.
        let mut recovered = false;
        loop {
            let TcpTransport {
                rank,
                world_size,
                peers,
                retry,
                op_deadline,
                listener,
                wiring,
                ..
            } = self;
            let (rank, world_size, op_deadline) = (*rank, *world_size, *op_deadline);
            let link = resolve_link(wiring, rank, world_size, src, Dir::Recv)?;
            match read_frame(&mut link.stream) {
                Ok(Frame::Msg(msg)) => {
                    if self.recorder.enabled() {
                        self.recorder
                            .add(keys::COMM_BYTES_RECV, msg.payload_bytes());
                    }
                    // Delivery-time schedule check (see
                    // `acp_collectives::schedule::deliver_checked`); a
                    // mismatch tears this rank down, and its closed
                    // sockets surface to peers within their op deadline.
                    return schedule::deliver_checked(&self.tracer, msg);
                }
                // A stray hello can only follow a reconnect that raced our
                // read; consume it and keep reading.
                Ok(Frame::Hello(_)) => continue,
                Err(e) if is_disconnect(&e) && !recovered => {
                    recovered = true;
                    match link.role {
                        LinkRole::Acceptor => Self::reaccept(listener, op_deadline, link)?,
                        LinkRole::Connector => {
                            Self::reconnect(peers, retry, op_deadline, rank, link)?;
                        }
                    }
                }
                Err(e) => return Err(map_io("recv", started, &e)),
            }
        }
    }
}

/// Point-to-point access for callers that drive the transport directly
/// (topology diagnostics, tests). Unavailable once the comm worker owns
/// the transport — use the collective API then.
impl Transport for TcpCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn send_to(&mut self, dest: usize, msg: WireMsg) -> Result<(), CommError> {
        match self.inner.as_mut() {
            Some(transport) => transport.send_to(dest, msg),
            None => Err(CommError::Io(
                "transport is owned by the comm worker; use the collective API".into(),
            )),
        }
    }

    fn recv_from(&mut self, src: usize) -> Result<WireMsg, CommError> {
        match self.inner.as_mut() {
            Some(transport) => transport.recv_from(src),
            None => Err(CommError::Io(
                "transport is owned by the comm worker; use the collective API".into(),
            )),
        }
    }
}

impl Communicator for TcpCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world_size
    }

    fn all_reduce(&mut self, buf: &mut [f32], op: ReduceOp) -> Result<(), CommError> {
        let out = self
            .run_op(CollectiveOp::AllReduce {
                buf: buf.to_vec(),
                op,
            })?
            .into_f32()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    fn all_gather_f32(&mut self, send: &[f32]) -> Result<Vec<f32>, CommError> {
        self.run_op(CollectiveOp::AllGatherF32 {
            send: send.to_vec(),
        })?
        .into_f32()
    }

    fn all_gather_u32(&mut self, send: &[u32]) -> Result<Vec<u32>, CommError> {
        self.run_op(CollectiveOp::AllGatherU32 {
            send: send.to_vec(),
        })?
        .into_u32()
    }

    fn broadcast(&mut self, buf: &mut [f32], root: usize) -> Result<(), CommError> {
        let out = self
            .run_op(CollectiveOp::Broadcast {
                buf: buf.to_vec(),
                root,
            })?
            .into_f32()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        // Untimed, as in the thread backend: barriers move no payload.
        self.run_op(CollectiveOp::Barrier).map(|_| ())
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::SeqCst)
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = Arc::clone(&recorder);
        match (&self.worker, self.inner.as_mut()) {
            (Some(worker), _) => worker.set_recorder(recorder),
            (None, Some(transport)) => transport.recorder = recorder,
            (None, None) => {}
        }
    }

    fn global_topk(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<(Vec<u32>, Vec<f32>), CommError> {
        self.run_op(CollectiveOp::GlobalTopk {
            indices: indices.to_vec(),
            values: values.to_vec(),
            k,
        })?
        .into_sparse()
    }

    fn dispatch(&mut self, op: CollectiveOp) -> PendingOp {
        self.ensure_worker().submit(op)
    }

    fn schedule(&self) -> Option<ScheduleSnapshot> {
        Some(
            self.schedule
                .snapshot(self.verify == VerifyMode::CrossCheck),
        )
    }
}

/// Test/bench harness mirroring `ThreadGroup::run`: binds `world_size`
/// listeners on ephemeral loopback ports, wires the group in worker
/// threads (real sockets, one process), and returns the per-rank results.
///
/// # Panics
///
/// Panics if a listener cannot bind, a worker panics, or establishment
/// fails.
pub fn run_local<T, F>(world_size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(TcpCommunicator) -> T + Sync,
{
    run_local_with(world_size, |_rank, cfg| cfg, f)
}

/// [`run_local`] with a per-rank configuration hook (fault plans,
/// deadlines, topology).
///
/// # Panics
///
/// As for [`run_local`]. The hook must not change `rank`, `world_size`
/// or `peers`.
pub fn run_local_with<T, F, G>(world_size: usize, tweak: G, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(TcpCommunicator) -> T + Sync,
    G: Fn(usize, TcpConfig) -> TcpConfig + Sync,
{
    assert!(world_size > 0, "world_size must be positive");
    let listeners: Vec<TcpListener> = (0..world_size)
        // allow_verify(reason = "test harness: a bind failure is the caller's test failure")
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral loopback port"))
        .collect();
    let peers: Vec<SocketAddr> = listeners
        .iter()
        // allow_verify(reason = "test harness: bound listeners always report an addr")
        .map(|l| l.local_addr().expect("listener has a local addr"))
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let peers = peers.clone();
                let tweak = &tweak;
                let f = &f;
                scope.spawn(move || {
                    let mut cfg = TcpConfig {
                        rank,
                        world_size,
                        peers,
                        topology: Topology::Ring,
                        retry: RetryPolicy::default(),
                        op_deadline: Duration::from_secs(20),
                        fault: FaultInjector::none(),
                        verify: VerifyMode::from_env(),
                    };
                    cfg = tweak(rank, cfg);
                    let comm =
                        // allow_verify(reason = "test harness entry point; establishment failures are the caller's test failures")
                        TcpCommunicator::with_listener(cfg, listener).expect("establish group");
                    f(comm)
                })
            })
            .collect();
        handles
            .into_iter()
            // allow_verify(reason = "test harness: propagate worker panics to the calling test")
            .map(|h| h.join().expect("tcp worker panicked"))
            .collect()
    })
}
