//! Launching a TCP group as real OS processes on one host.
//!
//! The rendezvous protocol is environment variables: [`launch_local`]
//! spawns `world_size` copies of a program with `ACP_NET_RANK`,
//! `ACP_NET_WORLD_SIZE` and `ACP_NET_BASE_PORT` set (plus
//! `ACP_NET_GROUPS` for two-level layouts, see [`launch_local_grouped`]);
//! each child calls [`TcpConfig::from_env`] (via [`worker_from_env`]) to
//! discover its place in the group and connects. Fault plans ride along
//! through the `ACP_NET_FAULT_*` variables (see [`crate::fault`]).

use std::io;
use std::path::Path;
use std::process::{Child, Command, ExitStatus, Stdio};

use crate::fault::FaultInjector;
use crate::tcp::TcpConfig;

/// Rank of this worker, `0..world_size`.
pub const ENV_RANK: &str = "ACP_NET_RANK";
/// Number of workers in the group.
pub const ENV_WORLD_SIZE: &str = "ACP_NET_WORLD_SIZE";
/// Rank 0's listener port; rank `i` listens on `base_port + i`.
pub const ENV_BASE_PORT: &str = "ACP_NET_BASE_PORT";
/// Number of groups in the two-level topology (unset or `1` = flat ring).
/// Must divide the world size; workers reject inconsistent specs with a
/// structured error, not a panic.
pub const ENV_GROUPS: &str = "ACP_NET_GROUPS";

pub(crate) fn parse_env<T: std::str::FromStr>(name: &str) -> Result<Option<T>, String> {
    match std::env::var(name) {
        Ok(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{name}={v} is not a valid value")),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(e) => Err(format!("{name}: {e}")),
    }
}

impl TcpConfig {
    /// Builds this worker's configuration from the `ACP_NET_*` environment
    /// variables, or returns `Ok(None)` when none are set (the process was
    /// not launched as a TCP worker).
    ///
    /// The fault plan is read from the `ACP_NET_FAULT_*` variables and
    /// applied only to the rank they target.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when the variables are
    /// present but inconsistent (unparsable numbers, rank out of range,
    /// or only some of the required variables set).
    pub fn from_env() -> Result<Option<TcpConfig>, String> {
        let rank: Option<usize> = parse_env(ENV_RANK)?;
        let world: Option<usize> = parse_env(ENV_WORLD_SIZE)?;
        let base_port: Option<u16> = parse_env(ENV_BASE_PORT)?;
        let groups: Option<usize> = parse_env(ENV_GROUPS)?;
        let (rank, world) = match (rank, world) {
            (None, None) => return Ok(None),
            (Some(r), Some(w)) => (r, w),
            _ => {
                return Err(format!(
                    "{ENV_RANK} and {ENV_WORLD_SIZE} must be set together"
                ))
            }
        };
        if world == 0 || rank >= world {
            return Err(format!(
                "{ENV_RANK}={rank} out of range for {ENV_WORLD_SIZE}={world}"
            ));
        }
        let base_port = base_port
            .ok_or_else(|| format!("{ENV_BASE_PORT} must be set when {ENV_RANK} is set"))?;
        let mut cfg =
            TcpConfig::local(rank, world, base_port).with_fault(FaultInjector::from_env(rank)?);
        if let Some(groups) = groups {
            cfg = cfg
                .with_groups(groups)
                .map_err(|e| format!("{ENV_GROUPS}={groups}: {e}"))?;
        }
        Ok(Some(cfg))
    }
}

/// Shorthand for [`TcpConfig::from_env`], re-exported at the crate root:
/// returns the worker configuration when this process was spawned by
/// [`launch_local`], `None` when it is the launcher (or a plain run).
///
/// # Errors
///
/// As for [`TcpConfig::from_env`].
pub fn worker_from_env() -> Result<Option<TcpConfig>, String> {
    TcpConfig::from_env()
}

/// The spawned group of worker processes.
#[derive(Debug)]
pub struct LocalGroup {
    children: Vec<Child>,
}

impl LocalGroup {
    /// Waits for every worker and returns `(rank, status)` pairs in rank
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first `wait` failure; remaining children are still
    /// waited on (best effort) so no zombies are left behind.
    pub fn wait(mut self) -> io::Result<Vec<(usize, ExitStatus)>> {
        let mut statuses = Vec::with_capacity(self.children.len());
        let mut first_err = None;
        for (rank, child) in self.children.iter_mut().enumerate() {
            match child.wait() {
                Ok(status) => statuses.push((rank, status)),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(statuses),
        }
    }

    /// Kills every worker that is still running (used on launcher abort).
    pub fn kill(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns `world_size` copies of `program` as local TCP workers.
///
/// Each child receives `args` plus the `ACP_NET_*` rendezvous variables;
/// rank `i` listens on `127.0.0.1:(base_port + i)`. Children inherit
/// stdout/stderr, so a program that prints only on rank 0 behaves like a
/// single-process run.
///
/// # Errors
///
/// If any spawn fails, the already spawned children are killed and the
/// spawn error is returned.
pub fn launch_local(
    program: &Path,
    args: &[String],
    world_size: usize,
    base_port: u16,
) -> io::Result<LocalGroup> {
    launch_local_grouped(program, args, world_size, base_port, 1)
}

/// [`launch_local`] with a two-level group layout: the workers arrange
/// themselves as `groups` rings of `world_size / groups` ranks each
/// (exported to the children via [`ENV_GROUPS`]), wired as a full mesh.
/// `groups == 1` launches a flat ring, identical to [`launch_local`].
///
/// # Errors
///
/// Returns `io::ErrorKind::InvalidInput` (structured, not a panic) when
/// the group spec is inconsistent — `groups == 0` or `groups` not
/// dividing `world_size` — and spawn errors as for [`launch_local`].
pub fn launch_local_grouped(
    program: &Path,
    args: &[String],
    world_size: usize,
    base_port: u16,
    groups: usize,
) -> io::Result<LocalGroup> {
    // Validate the layout before spawning anything: a bad spec should
    // fail the launcher with one clear error, not leave world_size
    // children each discovering the problem on their own.
    acp_collectives::Topology::grouped(world_size, groups)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let mut group = LocalGroup {
        children: Vec::with_capacity(world_size),
    };
    for rank in 0..world_size {
        let spawned = Command::new(program)
            .args(args)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_WORLD_SIZE, world_size.to_string())
            .env(ENV_BASE_PORT, base_port.to_string())
            .env(ENV_GROUPS, groups.to_string())
            .stdin(Stdio::null())
            .spawn();
        match spawned {
            Ok(child) => group.children.push(child),
            Err(e) => {
                group.kill();
                return Err(e);
            }
        }
    }
    Ok(group)
}

// Env-var tests mutate process-global state; sharing one lock across every
// test module that touches `ACP_NET_*` variables (this one and
// `crate::fault`) keeps them from interleaving under the parallel runner.
#[cfg(test)]
pub(crate) mod testenv {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    pub(crate) fn with_env<R>(vars: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved: Vec<(String, Option<String>)> = vars
            .iter()
            .map(|(k, _)| ((*k).to_string(), std::env::var(*k).ok()))
            .collect();
        for (k, v) in vars {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
        let result = f();
        for (k, v) in saved {
            match v {
                Some(v) => std::env::set_var(&k, v),
                None => std::env::remove_var(&k),
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::testenv::with_env;
    use super::*;

    #[test]
    fn absent_env_is_not_a_worker() {
        with_env(
            &[
                (ENV_RANK, None),
                (ENV_WORLD_SIZE, None),
                (ENV_BASE_PORT, None),
            ],
            || {
                assert!(TcpConfig::from_env().unwrap().is_none());
            },
        );
    }

    #[test]
    fn full_env_builds_a_local_config() {
        with_env(
            &[
                (ENV_RANK, Some("2")),
                (ENV_WORLD_SIZE, Some("4")),
                (ENV_BASE_PORT, Some("29500")),
                (ENV_GROUPS, None),
            ],
            || {
                let cfg = TcpConfig::from_env().unwrap().expect("worker env set");
                assert_eq!(cfg.rank, 2);
                assert_eq!(cfg.world_size, 4);
                assert_eq!(cfg.peers.len(), 4);
                assert_eq!(cfg.peers[0].port(), 29500);
                assert_eq!(cfg.peers[3].port(), 29503);
                assert!(!cfg.fault.is_active());
                assert!(cfg.topology.is_flat());
            },
        );
    }

    #[test]
    fn groups_env_builds_a_two_level_config() {
        with_env(
            &[
                (ENV_RANK, Some("1")),
                (ENV_WORLD_SIZE, Some("4")),
                (ENV_BASE_PORT, Some("29500")),
                (ENV_GROUPS, Some("2")),
            ],
            || {
                let cfg = TcpConfig::from_env().unwrap().expect("worker env set");
                assert_eq!(cfg.topology.groups(), 2);
                assert_eq!(cfg.topology.group_size(), 2);
                assert_eq!(cfg.wiring, crate::tcp::Wiring::FullMesh);
            },
        );
    }

    #[test]
    fn inconsistent_groups_env_is_a_structured_error() {
        with_env(
            &[
                (ENV_RANK, Some("0")),
                (ENV_WORLD_SIZE, Some("4")),
                (ENV_BASE_PORT, Some("29500")),
                (ENV_GROUPS, Some("3")),
            ],
            || {
                let err = TcpConfig::from_env().unwrap_err();
                assert!(
                    err.contains("ACP_NET_GROUPS=3"),
                    "error should name the bad setting: {err}"
                );
            },
        );
    }

    #[test]
    fn partial_env_is_an_error() {
        with_env(
            &[
                (ENV_RANK, Some("0")),
                (ENV_WORLD_SIZE, None),
                (ENV_BASE_PORT, None),
            ],
            || {
                assert!(TcpConfig::from_env().is_err());
            },
        );
    }

    #[test]
    fn out_of_range_rank_is_an_error() {
        with_env(
            &[
                (ENV_RANK, Some("4")),
                (ENV_WORLD_SIZE, Some("4")),
                (ENV_BASE_PORT, Some("29500")),
            ],
            || {
                assert!(TcpConfig::from_env().is_err());
            },
        );
    }
}
