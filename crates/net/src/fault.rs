//! Deterministic fault injection for the TCP backend.
//!
//! Three independent knobs, all off by default:
//!
//! * **delay** — sleep before every frame send: models a slow link and
//!   shifts latencies without changing results;
//! * **drop** — before every `n`-th frame, deliberately close the link and
//!   reconnect before sending: exercises the retry / re-accept path end to
//!   end (the receiver sees EOF mid-collective and must recover);
//! * **straggler** — sleep once at the *start* of every collective:
//!   models a slow rank, the failure mode that dominates synchronous SGD
//!   at scale.
//!
//! Configure in code via the builders, or via environment variables for
//! multi-process runs launched with [`crate::launch::launch_local`]:
//!
//! | variable | meaning |
//! |---|---|
//! | `ACP_NET_FAULT_RANK` | apply faults only on this rank (default: all) |
//! | `ACP_NET_FAULT_DELAY_US` | per-frame send delay, microseconds |
//! | `ACP_NET_FAULT_DROP_EVERY` | close + reconnect before every n-th frame |
//! | `ACP_NET_FAULT_STRAGGLER_US` | per-collective delay, microseconds |

use std::time::Duration;

/// Fault plan applied by a [`crate::TcpCommunicator`]. See the module docs
/// for the semantics of each knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjector {
    /// Sleep this long before every frame send.
    pub send_delay: Option<Duration>,
    /// Close the link and reconnect before every `n`-th frame send
    /// (connector-role links only; see [`crate::TcpCommunicator`] docs).
    pub drop_every: Option<u64>,
    /// Sleep this long at the start of every collective call.
    pub straggler_delay: Option<Duration>,
}

impl FaultInjector {
    /// A plan with every fault disabled.
    pub fn none() -> Self {
        FaultInjector::default()
    }

    /// Enables the per-frame send delay.
    pub fn with_send_delay(mut self, delay: Duration) -> Self {
        self.send_delay = Some(delay);
        self
    }

    /// Enables drop-then-reconnect before every `n`-th frame.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_drop_every(mut self, n: u64) -> Self {
        assert!(n > 0, "drop_every must be at least 1");
        self.drop_every = Some(n);
        self
    }

    /// Enables the per-collective straggler delay.
    pub fn with_straggler_delay(mut self, delay: Duration) -> Self {
        self.straggler_delay = Some(delay);
        self
    }

    /// Whether any fault is enabled.
    pub fn is_active(&self) -> bool {
        self.send_delay.is_some() || self.drop_every.is_some() || self.straggler_delay.is_some()
    }

    /// Reads the fault plan for `rank` from the `ACP_NET_FAULT_*`
    /// environment variables. Unset or unparsable variables leave their
    /// knob disabled; if `ACP_NET_FAULT_RANK` is set and differs from
    /// `rank`, the plan is empty.
    pub fn from_env(rank: usize) -> Self {
        let target = std::env::var("ACP_NET_FAULT_RANK")
            .ok()
            .and_then(|v| v.parse::<usize>().ok());
        if let Some(target) = target {
            if target != rank {
                return FaultInjector::none();
            }
        }
        let us = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > 0)
                .map(Duration::from_micros)
        };
        FaultInjector {
            send_delay: us("ACP_NET_FAULT_DELAY_US"),
            drop_every: std::env::var("ACP_NET_FAULT_DROP_EVERY")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > 0),
            straggler_delay: us("ACP_NET_FAULT_STRAGGLER_US"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        assert!(!FaultInjector::none().is_active());
    }

    #[test]
    fn builders_compose() {
        let f = FaultInjector::none()
            .with_send_delay(Duration::from_millis(1))
            .with_drop_every(3)
            .with_straggler_delay(Duration::from_millis(5));
        assert!(f.is_active());
        assert_eq!(f.drop_every, Some(3));
        assert_eq!(f.send_delay, Some(Duration::from_millis(1)));
        assert_eq!(f.straggler_delay, Some(Duration::from_millis(5)));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn drop_every_zero_panics() {
        let _ = FaultInjector::none().with_drop_every(0);
    }
}
