//! Deterministic fault injection for the TCP backend.
//!
//! Four independent knobs, all off by default:
//!
//! * **delay** — sleep before every frame send: models a slow link and
//!   shifts latencies without changing results;
//! * **drop** — before every `n`-th frame, deliberately close the link and
//!   reconnect before sending: exercises the retry / re-accept path end to
//!   end (the receiver sees EOF mid-collective and must recover);
//! * **straggler** — sleep once at the *start* of every collective:
//!   models a slow rank, the failure mode that dominates synchronous SGD
//!   at scale;
//! * **exit** — terminate the whole process at the start of the `n`-th
//!   collective (0-based): models a rank crash, driving the elastic
//!   membership path (survivors observe
//!   [`CommError::MembershipChanged`](acp_collectives::CommError::MembershipChanged)
//!   and `reform()`). Multi-process launches only — in-process tests
//!   would take the test runner down with them.
//!
//! Configure in code via the builders, or via environment variables for
//! multi-process runs launched with [`crate::launch::launch_local`]:
//!
//! | variable | meaning |
//! |---|---|
//! | `ACP_NET_FAULT_RANK` | apply faults only on this rank (default: all) |
//! | `ACP_NET_FAULT_DELAY_US` | per-frame send delay, microseconds |
//! | `ACP_NET_FAULT_DROP_EVERY` | close + reconnect before every n-th frame |
//! | `ACP_NET_FAULT_STRAGGLER_US` | per-collective delay, microseconds |
//! | `ACP_NET_FAULT_EXIT_AFTER` | exit the process at the start of the n-th collective |
//!
//! Malformed values (e.g. `ACP_NET_FAULT_DROP_EVERY=5x`) are structured
//! configuration errors, not silently-disabled faults — see
//! [`FaultInjector::from_env`].

use std::time::Duration;

use crate::launch::parse_env;

/// Apply faults only on this rank (default: all ranks).
pub const ENV_FAULT_RANK: &str = "ACP_NET_FAULT_RANK";
/// Per-frame send delay, microseconds (0 = disabled).
pub const ENV_FAULT_DELAY_US: &str = "ACP_NET_FAULT_DELAY_US";
/// Close + reconnect before every n-th frame send (0 = disabled).
pub const ENV_FAULT_DROP_EVERY: &str = "ACP_NET_FAULT_DROP_EVERY";
/// Per-collective straggler delay, microseconds (0 = disabled).
pub const ENV_FAULT_STRAGGLER_US: &str = "ACP_NET_FAULT_STRAGGLER_US";
/// Exit the process at the start of the n-th collective, 1-based
/// (0 = disabled). Multi-process launches only.
pub const ENV_FAULT_EXIT_AFTER: &str = "ACP_NET_FAULT_EXIT_AFTER";

/// Fault plan applied by a [`crate::TcpCommunicator`]. See the module docs
/// for the semantics of each knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjector {
    /// Sleep this long before every frame send.
    pub send_delay: Option<Duration>,
    /// Close the link and reconnect before every `n`-th frame send
    /// (connector-role links only; see [`crate::TcpCommunicator`] docs).
    pub drop_every: Option<u64>,
    /// Sleep this long at the start of every collective call.
    pub straggler_delay: Option<Duration>,
    /// Exit the process (status 0) at the start of the `n`-th collective,
    /// counting from 1 — i.e. `Some(3)` completes two collectives and
    /// dies entering the third, while its peers are already committed to
    /// it. Only honoured by multi-process launches.
    pub exit_after: Option<u64>,
}

impl FaultInjector {
    /// A plan with every fault disabled.
    pub fn none() -> Self {
        FaultInjector::default()
    }

    /// Enables the per-frame send delay.
    #[must_use]
    pub fn with_send_delay(mut self, delay: Duration) -> Self {
        self.send_delay = Some(delay);
        self
    }

    /// Enables drop-then-reconnect before every `n`-th frame.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_drop_every(mut self, n: u64) -> Self {
        assert!(n > 0, "drop_every must be at least 1");
        self.drop_every = Some(n);
        self
    }

    /// Enables the per-collective straggler delay.
    #[must_use]
    pub fn with_straggler_delay(mut self, delay: Duration) -> Self {
        self.straggler_delay = Some(delay);
        self
    }

    /// Enables the process-exit fault at the start of the `n`-th
    /// collective (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_exit_after(mut self, n: u64) -> Self {
        assert!(n > 0, "exit_after must be at least 1");
        self.exit_after = Some(n);
        self
    }

    /// Whether any fault is enabled.
    pub fn is_active(&self) -> bool {
        self.send_delay.is_some()
            || self.drop_every.is_some()
            || self.straggler_delay.is_some()
            || self.exit_after.is_some()
    }

    /// Reads the fault plan for `rank` from the `ACP_NET_FAULT_*`
    /// environment variables. Unset variables leave their knob disabled,
    /// and an explicit `0` disables a knob too; if `ACP_NET_FAULT_RANK`
    /// is set and differs from `rank`, the plan is empty.
    ///
    /// # Errors
    ///
    /// Returns `"NAME=value is not a valid value"` when a variable is set
    /// but unparsable (e.g. `ACP_NET_FAULT_DROP_EVERY=5x`). A fault plan
    /// you asked for but mistyped must fail the run loudly — silently
    /// disabling the fault would make the injection test pass vacuously.
    /// Every variable is validated even when the plan targets a different
    /// rank, so a typo surfaces on all ranks.
    pub fn from_env(rank: usize) -> Result<Self, String> {
        let target: Option<usize> = parse_env(ENV_FAULT_RANK)?;
        let delay: Option<u64> = parse_env(ENV_FAULT_DELAY_US)?;
        let drop: Option<u64> = parse_env(ENV_FAULT_DROP_EVERY)?;
        let straggler: Option<u64> = parse_env(ENV_FAULT_STRAGGLER_US)?;
        let exit_after: Option<u64> = parse_env(ENV_FAULT_EXIT_AFTER)?;
        if let Some(target) = target {
            if target != rank {
                return Ok(FaultInjector::none());
            }
        }
        Ok(FaultInjector {
            send_delay: delay.filter(|&v| v > 0).map(Duration::from_micros),
            drop_every: drop.filter(|&v| v > 0),
            straggler_delay: straggler.filter(|&v| v > 0).map(Duration::from_micros),
            exit_after: exit_after.filter(|&v| v > 0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        assert!(!FaultInjector::none().is_active());
    }

    #[test]
    fn builders_compose() {
        let f = FaultInjector::none()
            .with_send_delay(Duration::from_millis(1))
            .with_drop_every(3)
            .with_straggler_delay(Duration::from_millis(5));
        assert!(f.is_active());
        assert_eq!(f.drop_every, Some(3));
        assert_eq!(f.send_delay, Some(Duration::from_millis(1)));
        assert_eq!(f.straggler_delay, Some(Duration::from_millis(5)));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn drop_every_zero_panics() {
        let _ = FaultInjector::none().with_drop_every(0);
    }

    use crate::launch::testenv::with_env;

    const ALL_UNSET: [(&str, Option<&str>); 5] = [
        (ENV_FAULT_RANK, None),
        (ENV_FAULT_DELAY_US, None),
        (ENV_FAULT_DROP_EVERY, None),
        (ENV_FAULT_STRAGGLER_US, None),
        (ENV_FAULT_EXIT_AFTER, None),
    ];

    #[test]
    fn empty_env_is_inert() {
        with_env(&ALL_UNSET, || {
            assert_eq!(FaultInjector::from_env(0), Ok(FaultInjector::none()));
        });
    }

    #[test]
    fn valid_env_builds_the_plan() {
        let mut vars = ALL_UNSET;
        vars[1].1 = Some("250");
        vars[2].1 = Some("5");
        vars[3].1 = Some("1000");
        vars[4].1 = Some("2");
        with_env(&vars, || {
            let f = FaultInjector::from_env(3).unwrap();
            assert_eq!(f.send_delay, Some(Duration::from_micros(250)));
            assert_eq!(f.drop_every, Some(5));
            assert_eq!(f.straggler_delay, Some(Duration::from_micros(1000)));
            assert_eq!(f.exit_after, Some(2));
        });
    }

    #[test]
    fn malformed_value_is_a_loud_error_not_a_disabled_fault() {
        // Regression (ISSUE 4): `ACP_NET_FAULT_DROP_EVERY=5x` used to
        // silently disable the fault, making injection tests pass
        // vacuously. It must be a configuration error naming the variable.
        let mut vars = ALL_UNSET;
        vars[2].1 = Some("5x");
        with_env(&vars, || {
            let err = FaultInjector::from_env(0).unwrap_err();
            assert!(
                err.contains("ACP_NET_FAULT_DROP_EVERY=5x"),
                "error should name the bad setting: {err}"
            );
        });
    }

    #[test]
    fn malformed_values_fail_on_non_target_ranks_too() {
        let mut vars = ALL_UNSET;
        vars[0].1 = Some("1");
        vars[1].1 = Some("fast");
        with_env(&vars, || {
            assert!(FaultInjector::from_env(0).is_err());
            assert!(FaultInjector::from_env(1).is_err());
        });
    }

    #[test]
    fn zero_explicitly_disables_a_knob() {
        let mut vars = ALL_UNSET;
        vars[2].1 = Some("0");
        with_env(&vars, || {
            let f = FaultInjector::from_env(0).unwrap();
            assert_eq!(f.drop_every, None);
            assert!(!f.is_active());
        });
    }

    #[test]
    fn rank_targeting_leaves_other_ranks_inert() {
        let mut vars = ALL_UNSET;
        vars[0].1 = Some("2");
        vars[2].1 = Some("7");
        with_env(&vars, || {
            assert!(!FaultInjector::from_env(0).unwrap().is_active());
            assert_eq!(FaultInjector::from_env(2).unwrap().drop_every, Some(7));
        });
    }
}
