//! Length-prefixed wire framing for [`WireMsg`] over a byte stream.
//!
//! Every frame is `[tag: u8][lengths: u32 LE…][payload bytes]`:
//!
//! ```text
//! F32    = 0x01  [count u32] [count × f32 LE]
//! U32    = 0x02  [count u32] [count × u32 LE]
//! Sparse = 0x03  [n_idx u32] [n_val u32] [n_idx × u32 LE] [n_val × f32 LE]
//! Token  = 0x04  (no payload)
//! Hello  = 0x05  [rank u32]   — link handshake, never seen by collectives
//! Tagged = 0x06  [seq u64] [pre_digest u64] [kind u8] [words u64]
//!                [param u64] [inner frame] — schedule cross-check wrapper
//! Abort  = 0x07  [epoch u64] [departed u32] — membership-change broadcast
//! Reform = 0x08  [epoch u64]  — reform barrier marker (see `TcpCommunicator`)
//! ```
//!
//! Frames are serialized into one buffer and written with a single
//! `write_all`, so a frame is either fully queued to the kernel or the
//! link errors — there is no mid-frame interleaving on the send side.
//! Element counts are capped at [`MAX_ELEMS`] so a corrupt or truncated
//! header cannot trigger a multi-gigabyte allocation.

use std::io::{self, Read, Write};

use acp_collectives::schedule::{OpKind, SchedulePoint};
use acp_collectives::{ScheduleTag, WireMsg};

const TAG_F32: u8 = 0x01;
const TAG_U32: u8 = 0x02;
const TAG_SPARSE: u8 = 0x03;
const TAG_TOKEN: u8 = 0x04;
const TAG_HELLO: u8 = 0x05;
const TAG_TAGGED: u8 = 0x06;
const TAG_ABORT: u8 = 0x07;
const TAG_REFORM: u8 = 0x08;

/// Upper bound on per-frame element counts (1 Gi elements = 4 GiB payload);
/// anything larger is treated as a corrupt frame.
pub const MAX_ELEMS: u32 = 1 << 30;

/// A frame as read off the wire: either a collective message or the
/// link-establishment handshake.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A collective payload.
    Msg(WireMsg),
    /// Link handshake carrying the sender's rank.
    Hello(u32),
    /// Membership-change broadcast: the sender observed `departed` dead in
    /// `epoch` and is aborting the in-flight collective. Receivers
    /// propagate the abort and surface
    /// [`CommError::MembershipChanged`](acp_collectives::CommError::MembershipChanged).
    Abort {
        /// Membership epoch in which the departure was observed.
        epoch: u64,
        /// Physical rank that departed.
        departed: u32,
    },
    /// Reform barrier marker: the sender has entered `reform()` for
    /// `epoch` and will send no further pre-reform frames on this link.
    /// Because TCP links are FIFO, everything read before this marker is
    /// stale and safely discarded.
    Reform {
        /// The post-reform membership epoch.
        epoch: u64,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vals: &[f32]) {
    buf.reserve(vals.len() * 4);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u32s(buf: &mut Vec<u8>, vals: &[u32]) {
    buf.reserve(vals.len() * 4);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_msg(buf: &mut Vec<u8>, msg: &WireMsg) {
    match msg {
        WireMsg::F32(v) => {
            buf.push(TAG_F32);
            put_u32(buf, v.len() as u32);
            put_f32s(buf, v);
        }
        WireMsg::U32(v) => {
            buf.push(TAG_U32);
            put_u32(buf, v.len() as u32);
            put_u32s(buf, v);
        }
        WireMsg::Sparse(idx, val) => {
            buf.push(TAG_SPARSE);
            put_u32(buf, idx.len() as u32);
            put_u32(buf, val.len() as u32);
            put_u32s(buf, idx);
            put_f32s(buf, val);
        }
        WireMsg::Token => buf.push(TAG_TOKEN),
        WireMsg::Tagged(tag, inner) => {
            buf.push(TAG_TAGGED);
            put_u64(buf, tag.point.seq);
            put_u64(buf, tag.pre_digest);
            buf.push(tag.point.kind.code());
            put_u64(buf, tag.point.words);
            put_u64(buf, tag.point.param);
            encode_msg(buf, inner);
        }
    }
}

/// Serializes `frame` into a fresh buffer (header + payload).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    match frame {
        Frame::Msg(msg) => encode_msg(&mut buf, msg),
        Frame::Hello(rank) => {
            buf.push(TAG_HELLO);
            put_u32(&mut buf, *rank);
        }
        Frame::Abort { epoch, departed } => {
            buf.push(TAG_ABORT);
            put_u64(&mut buf, *epoch);
            put_u32(&mut buf, *departed);
        }
        Frame::Reform { epoch } => {
            buf.push(TAG_REFORM);
            put_u64(&mut buf, *epoch);
        }
    }
    buf
}

/// Writes one frame to `w` with a single `write_all`.
///
/// # Errors
///
/// Propagates the underlying I/O error (including timeouts as
/// `WouldBlock`/`TimedOut`).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_len<R: Read>(r: &mut R) -> io::Result<usize> {
    let n = read_u32(r)?;
    if n > MAX_ELEMS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds the {MAX_ELEMS}-element cap"),
        ));
    }
    Ok(n as usize)
}

fn read_f32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<f32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn read_u32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Reads one frame from `r` (blocking, subject to the stream's read
/// timeout).
///
/// # Errors
///
/// Propagates I/O errors; an unknown tag or an oversized length surfaces
/// as `InvalidData`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_F32 => {
            let n = read_len(r)?;
            Ok(Frame::Msg(WireMsg::F32(read_f32s(r, n)?)))
        }
        TAG_U32 => {
            let n = read_len(r)?;
            Ok(Frame::Msg(WireMsg::U32(read_u32s(r, n)?)))
        }
        TAG_SPARSE => {
            let n_idx = read_len(r)?;
            let n_val = read_len(r)?;
            let idx = read_u32s(r, n_idx)?;
            let val = read_f32s(r, n_val)?;
            Ok(Frame::Msg(WireMsg::Sparse(idx, val)))
        }
        TAG_TOKEN => Ok(Frame::Msg(WireMsg::Token)),
        TAG_HELLO => Ok(Frame::Hello(read_u32(r)?)),
        TAG_ABORT => {
            let epoch = read_u64(r)?;
            let departed = read_u32(r)?;
            Ok(Frame::Abort { epoch, departed })
        }
        TAG_REFORM => Ok(Frame::Reform {
            epoch: read_u64(r)?,
        }),
        TAG_TAGGED => {
            let seq = read_u64(r)?;
            let pre_digest = read_u64(r)?;
            let mut kind = [0u8; 1];
            r.read_exact(&mut kind)?;
            let kind = OpKind::from_code(kind[0]).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown schedule op kind {:#04x}", kind[0]),
                )
            })?;
            let words = read_u64(r)?;
            let param = read_u64(r)?;
            // Tags wrap exactly one payload message — never a handshake or
            // control frame, never another tag (the transport wraps once
            // per send).
            let inner = match read_frame(r)? {
                Frame::Msg(WireMsg::Tagged(..))
                | Frame::Hello(_)
                | Frame::Abort { .. }
                | Frame::Reform { .. } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "schedule tag wraps a non-payload frame",
                    ));
                }
                Frame::Msg(msg) => msg,
            };
            Ok(Frame::Msg(WireMsg::Tagged(
                ScheduleTag {
                    point: SchedulePoint {
                        seq,
                        kind,
                        words,
                        param,
                    },
                    pre_digest,
                },
                Box::new(inner),
            )))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame tag {other:#04x}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode(&frame);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Msg(WireMsg::F32(vec![1.5, -2.25, f32::MIN])));
        roundtrip(Frame::Msg(WireMsg::F32(Vec::new())));
        roundtrip(Frame::Msg(WireMsg::U32(vec![0, 7, u32::MAX])));
        roundtrip(Frame::Msg(WireMsg::Sparse(vec![3, 9], vec![0.5, -1.0])));
        roundtrip(Frame::Msg(WireMsg::Sparse(Vec::new(), Vec::new())));
        roundtrip(Frame::Msg(WireMsg::Token));
        roundtrip(Frame::Hello(42));
        roundtrip(Frame::Abort {
            epoch: 3,
            departed: 7,
        });
        roundtrip(Frame::Reform { epoch: u64::MAX });
    }

    fn sample_tag() -> ScheduleTag {
        ScheduleTag {
            point: SchedulePoint {
                seq: 7,
                kind: OpKind::AllReduce,
                words: 4096,
                param: 1,
            },
            pre_digest: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn tagged_frames_roundtrip() {
        roundtrip(Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::F32(vec![1.0, -2.0])),
        )));
        roundtrip(Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::Token),
        )));
        roundtrip(Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::Sparse(vec![1, 9], vec![0.25, -0.5])),
        )));
    }

    #[test]
    fn nested_tag_is_rejected() {
        let frame = Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::Tagged(sample_tag(), Box::new(WireMsg::Token))),
        ));
        let bytes = encode(&frame);
        let mut cursor = io::Cursor::new(bytes);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn tag_with_unknown_op_kind_is_rejected() {
        let mut bytes = encode(&Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::Token),
        )));
        // The kind byte sits after the tag byte and two u64 fields.
        bytes[17] = 0xEE;
        let mut cursor = io::Cursor::new(bytes);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn f32_payload_is_bit_exact() {
        // NaN payloads and signed zeros must survive the wire untouched.
        let vals = vec![f32::NAN, -0.0, 0.0, f32::INFINITY];
        let bytes = encode(&Frame::Msg(WireMsg::F32(vals.clone())));
        let mut cursor = io::Cursor::new(bytes);
        match read_frame(&mut cursor).unwrap() {
            Frame::Msg(WireMsg::F32(got)) => {
                assert_eq!(got.len(), vals.len());
                for (a, b) in got.iter().zip(&vals) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut bytes = encode(&Frame::Msg(WireMsg::F32(vec![1.0, 2.0])));
        bytes.truncate(bytes.len() - 3);
        let mut cursor = io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut cursor = io::Cursor::new(vec![0xEEu8]);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut bytes = vec![TAG_F32];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(bytes);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
