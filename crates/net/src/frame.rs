//! Length-prefixed wire framing for [`WireMsg`] over a byte stream.
//!
//! Every frame is `[tag: u8][lengths: u32 LE…][payload bytes]`:
//!
//! ```text
//! F32    = 0x01  [count u32] [count × f32 LE]
//! U32    = 0x02  [count u32] [count × u32 LE]
//! Sparse = 0x03  [n_idx u32] [n_val u32] [n_idx × u32 LE] [n_val × f32 LE]
//! Token  = 0x04  (no payload)
//! Hello  = 0x05  [rank u32]   — link handshake, never seen by collectives
//! Tagged = 0x06  [seq u64] [pre_digest u64] [kind u8] [words u64]
//!                [param u64] [inner frame] — schedule cross-check wrapper
//! Abort  = 0x07  [epoch u64] [departed u32] — membership-change broadcast
//! Reform = 0x08  [epoch u64]  — reform barrier marker (see `TcpCommunicator`)
//! ```
//!
//! On the send side the header (tag byte plus element counts) is
//! assembled into a small local buffer and the payload bytes are written
//! **vectored, straight from the caller's storage** — no intermediate
//! serialization buffer and no payload copy (see [`write_msg`]). The
//! writer loops until the whole frame is queued to the kernel, so a frame
//! is still either fully queued or the link errors — there is no
//! mid-frame interleaving on the send side. Element counts are capped at
//! [`MAX_ELEMS`] so a corrupt or truncated header cannot trigger a
//! multi-gigabyte allocation.

use std::io::{self, IoSlice, Read, Write};

use acp_collectives::schedule::{OpKind, SchedulePoint};
use acp_collectives::{ScheduleTag, WireMsg};

const TAG_F32: u8 = 0x01;
const TAG_U32: u8 = 0x02;
const TAG_SPARSE: u8 = 0x03;
const TAG_TOKEN: u8 = 0x04;
const TAG_HELLO: u8 = 0x05;
const TAG_TAGGED: u8 = 0x06;
const TAG_ABORT: u8 = 0x07;
const TAG_REFORM: u8 = 0x08;

/// Upper bound on per-frame element counts (1 Gi elements = 4 GiB payload);
/// anything larger is treated as a corrupt frame.
pub const MAX_ELEMS: u32 = 1 << 30;

/// A frame as read off the wire: either a collective message or the
/// link-establishment handshake.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A collective payload.
    Msg(WireMsg),
    /// Link handshake carrying the sender's rank.
    Hello(u32),
    /// Membership-change broadcast: the sender observed `departed` dead in
    /// `epoch` and is aborting the in-flight collective. Receivers
    /// propagate the abort and surface
    /// [`CommError::MembershipChanged`](acp_collectives::CommError::MembershipChanged).
    Abort {
        /// Membership epoch in which the departure was observed.
        epoch: u64,
        /// Physical rank that departed.
        departed: u32,
    },
    /// Reform barrier marker: the sender has entered `reform()` for
    /// `epoch` and will send no further pre-reform frames on this link.
    /// Because TCP links are FIFO, everything read before this marker is
    /// stale and safely discarded.
    Reform {
        /// The post-reform membership epoch.
        epoch: u64,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vals: &[f32]) {
    buf.reserve(vals.len() * 4);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u32s(buf: &mut Vec<u8>, vals: &[u32]) {
    buf.reserve(vals.len() * 4);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_msg(buf: &mut Vec<u8>, msg: &WireMsg) {
    match msg {
        WireMsg::F32(v) => {
            buf.push(TAG_F32);
            put_u32(buf, v.len() as u32);
            put_f32s(buf, v);
        }
        WireMsg::U32(v) => {
            buf.push(TAG_U32);
            put_u32(buf, v.len() as u32);
            put_u32s(buf, v);
        }
        WireMsg::Sparse(idx, val) => {
            buf.push(TAG_SPARSE);
            put_u32(buf, idx.len() as u32);
            put_u32(buf, val.len() as u32);
            put_u32s(buf, idx);
            put_f32s(buf, val);
        }
        WireMsg::Token => buf.push(TAG_TOKEN),
        WireMsg::Tagged(tag, inner) => {
            buf.push(TAG_TAGGED);
            put_u64(buf, tag.point.seq);
            put_u64(buf, tag.pre_digest);
            buf.push(tag.point.kind.code());
            put_u64(buf, tag.point.words);
            put_u64(buf, tag.point.param);
            encode_msg(buf, inner);
        }
    }
}

/// Serializes `frame` into a fresh buffer (header + payload).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    match frame {
        Frame::Msg(msg) => encode_msg(&mut buf, msg),
        Frame::Hello(rank) => {
            buf.push(TAG_HELLO);
            put_u32(&mut buf, *rank);
        }
        Frame::Abort { epoch, departed } => {
            buf.push(TAG_ABORT);
            put_u64(&mut buf, *epoch);
            put_u32(&mut buf, *departed);
        }
        Frame::Reform { epoch } => {
            buf.push(TAG_REFORM);
            put_u64(&mut buf, *epoch);
        }
    }
    buf
}

/// Borrowed view of a collective payload for the zero-copy send path: the
/// frame header goes into a small local buffer while the payload bytes are
/// written vectored, directly from the caller's slices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MsgRef<'a> {
    /// Dense `f32` payload.
    F32(&'a [f32]),
    /// Dense `u32` payload.
    U32(&'a [u32]),
    /// Sparse (indices, values) pair.
    Sparse(&'a [u32], &'a [f32]),
    /// Zero-byte synchronization token.
    Token,
}

impl MsgRef<'_> {
    /// Payload bytes, mirroring [`WireMsg::payload_bytes`]: 4 bytes per
    /// element, tokens and framing free.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            MsgRef::F32(v) => 4 * v.len() as u64,
            MsgRef::U32(v) => 4 * v.len() as u64,
            MsgRef::Sparse(i, v) => 4 * (i.len() + v.len()) as u64,
            MsgRef::Token => 0,
        }
    }
}

/// Borrows a payload message as a [`MsgRef`]; `None` for
/// [`WireMsg::Tagged`], whose schedule tag travels separately (see
/// [`write_msg`]).
pub fn view_of(msg: &WireMsg) -> Option<MsgRef<'_>> {
    match msg {
        WireMsg::F32(v) => Some(MsgRef::F32(v)),
        WireMsg::U32(v) => Some(MsgRef::U32(v)),
        WireMsg::Sparse(i, v) => Some(MsgRef::Sparse(i, v)),
        WireMsg::Token => Some(MsgRef::Token),
        WireMsg::Tagged(..) => None,
    }
}

/// Reinterprets an `f32` slice as its wire bytes. Only correct on
/// little-endian targets, where the in-memory representation already *is*
/// the LE wire format.
#[cfg(target_endian = "little")]
fn f32s_le_bytes(v: &[f32]) -> &[u8] {
    // SAFETY: f32 is 4 bytes with no padding, every byte pattern is a
    // valid u8, and the byte length cannot overflow because the slice
    // already occupies that much memory.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * 4) }
}

/// Reinterprets a `u32` slice as its wire bytes (little-endian targets
/// only; see [`f32s_le_bytes`]).
#[cfg(target_endian = "little")]
fn u32s_le_bytes(v: &[u32]) -> &[u8] {
    // SAFETY: as in `f32s_le_bytes` — no padding, valid bytes, no
    // overflow.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * 4) }
}

/// Appends the frame header for `msg` — optional schedule-tag wrapper,
/// tag byte, element counts — leaving only payload bytes to follow.
fn push_header(header: &mut Vec<u8>, tag: Option<&ScheduleTag>, msg: MsgRef<'_>) {
    if let Some(tag) = tag {
        header.push(TAG_TAGGED);
        put_u64(header, tag.point.seq);
        put_u64(header, tag.pre_digest);
        header.push(tag.point.kind.code());
        put_u64(header, tag.point.words);
        put_u64(header, tag.point.param);
    }
    match msg {
        MsgRef::F32(v) => {
            header.push(TAG_F32);
            put_u32(header, v.len() as u32);
        }
        MsgRef::U32(v) => {
            header.push(TAG_U32);
            put_u32(header, v.len() as u32);
        }
        MsgRef::Sparse(idx, val) => {
            header.push(TAG_SPARSE);
            put_u32(header, idx.len() as u32);
            put_u32(header, val.len() as u32);
        }
        MsgRef::Token => header.push(TAG_TOKEN),
    }
}

/// Queues every byte of `bufs`, looping over short vectored writes;
/// `Ok(0)` with bytes still pending surfaces as `WriteZero`.
fn write_all_vectored<W: Write>(w: &mut W, mut bufs: &mut [IoSlice<'_>]) -> io::Result<()> {
    let mut remaining: usize = bufs.iter().map(|b| b.len()).sum();
    while remaining > 0 {
        match w.write_vectored(bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ));
            }
            Ok(n) => {
                remaining = remaining.saturating_sub(n);
                IoSlice::advance_slices(&mut bufs, n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes one payload message to `w`, optionally wrapped in a schedule
/// tag, without copying the payload: the header is assembled locally and
/// the payload slices are handed to the kernel via vectored I/O. The
/// whole frame is queued before returning, preserving `write_frame`'s
/// no-mid-frame-interleaving property.
///
/// # Errors
///
/// Propagates the underlying I/O error (including timeouts as
/// `WouldBlock`/`TimedOut`).
pub fn write_msg<W: Write>(
    w: &mut W,
    tag: Option<&ScheduleTag>,
    msg: MsgRef<'_>,
) -> io::Result<()> {
    let mut header = Vec::with_capacity(48);
    push_header(&mut header, tag, msg);
    #[cfg(target_endian = "little")]
    {
        let (a, b): (&[u8], &[u8]) = match msg {
            MsgRef::F32(v) => (f32s_le_bytes(v), &[]),
            MsgRef::U32(v) => (u32s_le_bytes(v), &[]),
            MsgRef::Sparse(idx, val) => (u32s_le_bytes(idx), f32s_le_bytes(val)),
            MsgRef::Token => (&[], &[]),
        };
        if a.is_empty() && b.is_empty() {
            return w.write_all(&header);
        }
        let mut slices = [IoSlice::new(&header), IoSlice::new(a), IoSlice::new(b)];
        write_all_vectored(w, &mut slices)
    }
    #[cfg(not(target_endian = "little"))]
    {
        // Big-endian fallback: serialize element-wise (the byte-view
        // shortcut above would emit native-endian payloads).
        match msg {
            MsgRef::F32(v) => put_f32s(&mut header, v),
            MsgRef::U32(v) => put_u32s(&mut header, v),
            MsgRef::Sparse(idx, val) => {
                put_u32s(&mut header, idx);
                put_f32s(&mut header, val);
            }
            MsgRef::Token => {}
        }
        w.write_all(&header)
    }
}

/// Writes one frame to `w`. Payload frames take the zero-copy vectored
/// path of [`write_msg`]; header-only control frames are written in one
/// `write_all`.
///
/// # Errors
///
/// Propagates the underlying I/O error (including timeouts as
/// `WouldBlock`/`TimedOut`).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    match frame {
        Frame::Msg(msg) => {
            let (tag, inner) = match msg {
                WireMsg::Tagged(tag, inner) => (Some(tag), &**inner),
                other => (None, other),
            };
            match view_of(inner) {
                Some(view) => write_msg(w, tag, view),
                // A nested tag is never produced on the send path
                // (transports wrap once); serialize it plainly rather
                // than lose bytes.
                None => w.write_all(&encode(frame)),
            }
        }
        other => w.write_all(&encode(other)),
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_len<R: Read>(r: &mut R) -> io::Result<usize> {
    let n = read_u32(r)?;
    if n > MAX_ELEMS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds the {MAX_ELEMS}-element cap"),
        ));
    }
    Ok(n as usize)
}

fn read_f32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<f32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn read_u32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Reads one frame from `r` (blocking, subject to the stream's read
/// timeout).
///
/// # Errors
///
/// Propagates I/O errors; an unknown tag or an oversized length surfaces
/// as `InvalidData`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_F32 => {
            let n = read_len(r)?;
            Ok(Frame::Msg(WireMsg::F32(read_f32s(r, n)?)))
        }
        TAG_U32 => {
            let n = read_len(r)?;
            Ok(Frame::Msg(WireMsg::U32(read_u32s(r, n)?)))
        }
        TAG_SPARSE => {
            let n_idx = read_len(r)?;
            let n_val = read_len(r)?;
            let idx = read_u32s(r, n_idx)?;
            let val = read_f32s(r, n_val)?;
            Ok(Frame::Msg(WireMsg::Sparse(idx, val)))
        }
        TAG_TOKEN => Ok(Frame::Msg(WireMsg::Token)),
        TAG_HELLO => Ok(Frame::Hello(read_u32(r)?)),
        TAG_ABORT => {
            let epoch = read_u64(r)?;
            let departed = read_u32(r)?;
            Ok(Frame::Abort { epoch, departed })
        }
        TAG_REFORM => Ok(Frame::Reform {
            epoch: read_u64(r)?,
        }),
        TAG_TAGGED => {
            let seq = read_u64(r)?;
            let pre_digest = read_u64(r)?;
            let mut kind = [0u8; 1];
            r.read_exact(&mut kind)?;
            let kind = OpKind::from_code(kind[0]).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown schedule op kind {:#04x}", kind[0]),
                )
            })?;
            let words = read_u64(r)?;
            let param = read_u64(r)?;
            // Tags wrap exactly one payload message — never a handshake or
            // control frame, never another tag (the transport wraps once
            // per send).
            let inner = match read_frame(r)? {
                Frame::Msg(WireMsg::Tagged(..))
                | Frame::Hello(_)
                | Frame::Abort { .. }
                | Frame::Reform { .. } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "schedule tag wraps a non-payload frame",
                    ));
                }
                Frame::Msg(msg) => msg,
            };
            Ok(Frame::Msg(WireMsg::Tagged(
                ScheduleTag {
                    point: SchedulePoint {
                        seq,
                        kind,
                        words,
                        param,
                    },
                    pre_digest,
                },
                Box::new(inner),
            )))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame tag {other:#04x}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode(&frame);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Msg(WireMsg::F32(vec![1.5, -2.25, f32::MIN])));
        roundtrip(Frame::Msg(WireMsg::F32(Vec::new())));
        roundtrip(Frame::Msg(WireMsg::U32(vec![0, 7, u32::MAX])));
        roundtrip(Frame::Msg(WireMsg::Sparse(vec![3, 9], vec![0.5, -1.0])));
        roundtrip(Frame::Msg(WireMsg::Sparse(Vec::new(), Vec::new())));
        roundtrip(Frame::Msg(WireMsg::Token));
        roundtrip(Frame::Hello(42));
        roundtrip(Frame::Abort {
            epoch: 3,
            departed: 7,
        });
        roundtrip(Frame::Reform { epoch: u64::MAX });
    }

    fn sample_tag() -> ScheduleTag {
        ScheduleTag {
            point: SchedulePoint {
                seq: 7,
                kind: OpKind::AllReduce,
                words: 4096,
                param: 1,
            },
            pre_digest: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn tagged_frames_roundtrip() {
        roundtrip(Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::F32(vec![1.0, -2.0])),
        )));
        roundtrip(Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::Token),
        )));
        roundtrip(Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::Sparse(vec![1, 9], vec![0.25, -0.5])),
        )));
    }

    #[test]
    fn nested_tag_is_rejected() {
        let frame = Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::Tagged(sample_tag(), Box::new(WireMsg::Token))),
        ));
        let bytes = encode(&frame);
        let mut cursor = io::Cursor::new(bytes);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn tag_with_unknown_op_kind_is_rejected() {
        let mut bytes = encode(&Frame::Msg(WireMsg::Tagged(
            sample_tag(),
            Box::new(WireMsg::Token),
        )));
        // The kind byte sits after the tag byte and two u64 fields.
        bytes[17] = 0xEE;
        let mut cursor = io::Cursor::new(bytes);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A writer that accepts at most `chunk` bytes per call and only ever
    /// consumes from the first non-empty buffer — the worst-case short
    /// vectored write.
    struct DribbleWriter {
        out: Vec<u8>,
        chunk: usize,
    }

    impl Write for DribbleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.chunk);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Msg(WireMsg::F32(vec![1.5, -2.25, f32::NAN, -0.0, f32::MIN])),
            Frame::Msg(WireMsg::F32(Vec::new())),
            Frame::Msg(WireMsg::U32(vec![0, 7, u32::MAX])),
            Frame::Msg(WireMsg::Sparse(vec![3, 9], vec![0.5, -1.0])),
            Frame::Msg(WireMsg::Sparse(Vec::new(), Vec::new())),
            Frame::Msg(WireMsg::Token),
            Frame::Hello(42),
            Frame::Abort {
                epoch: 3,
                departed: 7,
            },
            Frame::Reform { epoch: u64::MAX },
            Frame::Msg(WireMsg::Tagged(
                sample_tag(),
                Box::new(WireMsg::F32(vec![1.0, -2.0])),
            )),
            Frame::Msg(WireMsg::Tagged(
                sample_tag(),
                Box::new(WireMsg::Sparse(vec![1, 9], vec![0.25, -0.5])),
            )),
            Frame::Msg(WireMsg::Tagged(sample_tag(), Box::new(WireMsg::Token))),
            Frame::Msg(WireMsg::Tagged(
                sample_tag(),
                Box::new(WireMsg::Tagged(sample_tag(), Box::new(WireMsg::Token))),
            )),
        ]
    }

    #[test]
    fn vectored_write_matches_encode() {
        // The zero-copy vectored path must emit exactly the bytes of the
        // reference serializer, frame for frame.
        for frame in sample_frames() {
            let mut out = Vec::new();
            write_frame(&mut out, &frame).unwrap();
            assert_eq!(out, encode(&frame), "frame {frame:?}");
        }
    }

    #[test]
    fn vectored_write_survives_short_writes() {
        // A writer that dribbles 3 bytes at a time exercises the
        // partial-write loop across header/payload slice boundaries.
        for frame in sample_frames() {
            let mut w = DribbleWriter {
                out: Vec::new(),
                chunk: 3,
            };
            write_frame(&mut w, &frame).unwrap();
            assert_eq!(w.out, encode(&frame), "frame {frame:?}");
        }
    }

    #[test]
    fn write_msg_matches_tagged_encoding() {
        // `write_msg` with an explicit tag is byte-identical to encoding
        // the equivalent `Tagged` frame.
        let tag = sample_tag();
        let idx = vec![2u32, 5];
        let val = vec![0.75f32, f32::NAN];
        let mut out = Vec::new();
        write_msg(&mut out, Some(&tag), MsgRef::Sparse(&idx, &val)).unwrap();
        let expected = encode(&Frame::Msg(WireMsg::Tagged(
            tag,
            Box::new(WireMsg::Sparse(idx, val)),
        )));
        assert_eq!(out, expected);
    }

    #[test]
    fn write_zero_is_an_error() {
        struct FullWriter;
        impl Write for FullWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_msg(&mut FullWriter, None, MsgRef::F32(&[1.0])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn f32_payload_is_bit_exact() {
        // NaN payloads and signed zeros must survive the wire untouched.
        let vals = vec![f32::NAN, -0.0, 0.0, f32::INFINITY];
        let bytes = encode(&Frame::Msg(WireMsg::F32(vals.clone())));
        let mut cursor = io::Cursor::new(bytes);
        match read_frame(&mut cursor).unwrap() {
            Frame::Msg(WireMsg::F32(got)) => {
                assert_eq!(got.len(), vals.len());
                for (a, b) in got.iter().zip(&vals) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut bytes = encode(&Frame::Msg(WireMsg::F32(vec![1.0, 2.0])));
        bytes.truncate(bytes.len() - 3);
        let mut cursor = io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut cursor = io::Cursor::new(vec![0xEEu8]);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut bytes = vec![TAG_F32];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(bytes);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
