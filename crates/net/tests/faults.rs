//! Fault-injection tests: every injected failure must end in either a
//! successful retry (correct results, no data loss) or a *structured*
//! `CommError` within a bounded wait — never a hang and never silent
//! corruption. Each test carries its own wall-clock bound well below the
//! harness timeout.

use std::time::{Duration, Instant};

use acp_collectives::{CommError, Communicator, ReduceOp, Transport, WireMsg};
use acp_net::{run_local_with, FaultInjector, RetryPolicy, TcpCommunicator, TcpConfig};

fn expected_sum(world: usize, len: usize) -> Vec<f32> {
    // Each rank contributes `rank + 1` everywhere.
    let total: f32 = (1..=world).map(|r| r as f32).sum();
    vec![total; len]
}

/// Injected link drops on one rank are absorbed by reconnect + resend:
/// several consecutive all-reduces still produce exact results.
#[test]
fn injected_drops_are_recovered_by_reconnect() {
    let world = 4;
    let len = 257; // odd length => uneven ring chunks
    let started = Instant::now();
    let results = run_local_with(
        world,
        |rank, cfg| {
            if rank == 1 {
                // Close + reconnect the outgoing link before every 5th frame.
                cfg.with_fault(FaultInjector::none().with_drop_every(5))
            } else {
                cfg
            }
        },
        |mut comm| {
            let mut out = Vec::new();
            for _ in 0..4 {
                let mut buf = vec![comm.rank_id().as_usize() as f32 + 1.0; len];
                comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                out.push(buf);
            }
            out
        },
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "drops must not stall"
    );
    let expected = expected_sum(world, len);
    for per_rank in results {
        for buf in per_rank {
            assert_eq!(buf, expected);
        }
    }
}

/// Drops on *every* rank at once (each rank's outgoing ring link is
/// connector-role, so all four links churn) still converge.
#[test]
fn drops_on_every_rank_still_converge() {
    let world = 4;
    let results = run_local_with(
        world,
        |_rank, cfg| cfg.with_fault(FaultInjector::none().with_drop_every(7)),
        |mut comm| {
            let mut buf = vec![comm.rank_id().as_usize() as f32 + 1.0; 64];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            comm.barrier().unwrap();
            buf
        },
    );
    let expected = expected_sum(world, 64);
    for buf in results {
        assert_eq!(buf, expected);
    }
}

/// A per-frame send delay slows the collective but changes nothing else.
#[test]
fn send_delay_shifts_latency_only() {
    let world = 2;
    let results = run_local_with(
        world,
        |_rank, cfg| {
            cfg.with_fault(FaultInjector::none().with_send_delay(Duration::from_millis(2)))
        },
        |mut comm| {
            let mut buf = vec![comm.rank_id().as_usize() as f32 + 1.0; 33];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        },
    );
    for buf in results {
        assert_eq!(buf, expected_sum(world, 33));
    }
}

/// A straggler rank delays everyone (synchronous collectives can go no
/// faster than the slowest rank) but results stay exact.
#[test]
fn straggler_slows_the_group_without_corrupting_it() {
    let world = 3;
    let delay = Duration::from_millis(50);
    let started = Instant::now();
    let results = run_local_with(
        world,
        |rank, cfg| {
            if rank == 2 {
                cfg.with_fault(FaultInjector::none().with_straggler_delay(delay))
            } else {
                cfg
            }
        },
        |mut comm| {
            let mut buf = vec![comm.rank_id().as_usize() as f32 + 1.0; 16];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        },
    );
    assert!(
        started.elapsed() >= delay,
        "the straggler gates the collective"
    );
    for buf in results {
        assert_eq!(buf, expected_sum(world, 16));
    }
}

/// A rank that never shows up for the collective surfaces as a structured
/// timeout on its peer within the configured deadline — not a hang.
#[test]
fn absent_peer_times_out_with_structured_error() {
    let deadline = Duration::from_millis(200);
    let started = Instant::now();
    let results = run_local_with(
        2,
        move |_rank, cfg| cfg.with_op_deadline(deadline),
        |mut comm| {
            if comm.rank_id().as_usize() == 1 {
                // Holds its links open but never participates.
                std::thread::sleep(Duration::from_millis(600));
                return Ok(());
            }
            let mut buf = vec![1.0f32; 8];
            comm.all_reduce(&mut buf, ReduceOp::Sum)
        },
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout must be bounded by the deadline, not the harness"
    );
    match &results[0] {
        Err(CommError::Timeout { op, waited_ms }) => {
            assert_eq!(*op, "recv");
            assert!(*waited_ms as u128 >= deadline.as_millis());
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert_eq!(results[1], Ok(()));
}

/// A peer that exits outright (sockets closed, listener gone) surfaces
/// as a structured error within the deadline — preferably
/// `MembershipChanged` (the departure probe sees the refused listener,
/// enabling `reform()`), with disconnect/timeout accepted for the rare
/// race where the freed port is rebound before the probe.
#[test]
fn dead_peer_is_a_structured_error_not_a_hang() {
    let started = Instant::now();
    let results = run_local_with(
        2,
        |_rank, cfg| cfg.with_op_deadline(Duration::from_millis(300)),
        |mut comm| {
            if comm.rank_id().as_usize() == 1 {
                return Ok(()); // Drops the communicator: EOF on rank 0's links.
            }
            std::thread::sleep(Duration::from_millis(50)); // let the peer die first
            let mut buf = vec![1.0f32; 8];
            comm.all_reduce(&mut buf, ReduceOp::Sum)
        },
    );
    assert!(started.elapsed() < Duration::from_secs(10));
    match &results[0] {
        Err(CommError::MembershipChanged { departed, .. }) => assert_eq!(departed, &[1]),
        Err(CommError::Timeout { .. } | CommError::PeerDisconnected | CommError::Io(_)) => {}
        other => panic!("expected a structured comm error, got {other:?}"),
    }
}

/// Ranks that start hundreds of milliseconds apart still form the group:
/// connection establishment retries with backoff until the late listener
/// appears.
#[test]
fn connect_retries_absorb_startup_skew() {
    // Find a free consecutive port pair by binding ephemerally first.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let base = probe.local_addr().unwrap().port();
    drop(probe);
    let cfg = move |rank: usize| {
        TcpConfig::local(rank, 2, base).with_retry(RetryPolicy {
            max_attempts: 40,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            attempt_timeout: Duration::from_secs(2),
            dial_budget: Duration::from_secs(5),
        })
    };
    let handle = std::thread::spawn(move || {
        // Rank 1 shows up late: its listener does not exist yet when
        // rank 0 first dials.
        std::thread::sleep(Duration::from_millis(250));
        let mut comm = TcpCommunicator::connect(cfg(1)).expect("late rank joins");
        let mut buf = vec![2.0f32; 4];
        comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
        buf
    });
    let mut comm = TcpCommunicator::connect(cfg(0)).expect("early rank retries until join");
    let mut buf = vec![1.0f32; 4];
    comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
    assert_eq!(buf, vec![3.0; 4]);
    assert_eq!(handle.join().unwrap(), vec![3.0; 4]);
}

/// Regression (per-peer dial budget): with only two attempts — which a
/// connection-refused error burns in microseconds — a listener that binds
/// ~600ms late is still reached, because `dial_budget` keeps the dial
/// alive on wall-clock time. Before the budget existed, retries were
/// count-based only and this scenario exhausted them near-instantly;
/// under many concurrent groups the accumulated startup skew made late
/// ranks fail spuriously.
#[test]
fn dial_budget_outlives_exhausted_attempt_count() {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let base = probe.local_addr().unwrap().port();
    drop(probe);
    let cfg = move |rank: usize| {
        TcpConfig::local(rank, 2, base).with_retry(RetryPolicy {
            max_attempts: 2, // exhausted within ~5ms against a refused port
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            attempt_timeout: Duration::from_millis(500),
            dial_budget: Duration::from_secs(5),
        })
    };
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(600));
        let mut comm = TcpCommunicator::connect(cfg(1)).expect("very late rank joins");
        let mut buf = vec![2.0f32; 4];
        comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
        buf
    });
    let mut comm = TcpCommunicator::connect(cfg(0)).expect("budget outlasts the attempt count");
    let mut buf = vec![1.0f32; 4];
    comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
    assert_eq!(buf, vec![3.0; 4]);
    assert_eq!(handle.join().unwrap(), vec![3.0; 4]);
}

/// On a ring topology, point-to-point traffic to a non-neighbour is a
/// structured error telling the caller to use the mesh.
#[test]
fn ring_topology_rejects_non_neighbour_traffic() {
    let results = run_local_with(
        4,
        |_rank, cfg| cfg,
        |mut comm| {
            if comm.rank_id().as_usize() == 0 {
                Transport::send_to(&mut comm, 2, WireMsg::Token)
            } else {
                Ok(())
            }
        },
    );
    match &results[0] {
        Err(CommError::Io(msg)) => assert!(msg.contains("unreachable"), "got: {msg}"),
        other => panic!("expected Io(unreachable), got {other:?}"),
    }
}

/// Exhausted connect retries end in a structured error, not an endless
/// loop: dialing a group whose peers never appear fails within the retry
/// budget.
#[test]
fn exhausted_retries_surface_structured_error() {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let base = probe.local_addr().unwrap().port();
    drop(probe);
    let cfg = TcpConfig::local(0, 2, base).with_retry(RetryPolicy {
        max_attempts: 3,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        attempt_timeout: Duration::from_millis(200),
        dial_budget: Duration::ZERO, // attempts-only so exhaustion is fast
    });
    let started = Instant::now();
    let err = TcpCommunicator::connect(cfg).expect_err("no peer ever appears");
    assert!(started.elapsed() < Duration::from_secs(5));
    match err {
        CommError::Io(_) | CommError::Timeout { .. } => {}
        other => panic!("expected Io or Timeout, got {other:?}"),
    }
}

/// The fault injector leaves telemetry intact: bytes sent with faults on
/// equal bytes sent with faults off (drops resend whole frames, which is
/// invisible at the payload accounting level — the resent frame replaces
/// one the peer never consumed).
#[test]
fn drop_faults_do_not_skew_byte_accounting() {
    let clean = run_local_with(
        2,
        |_rank, cfg| cfg,
        |mut comm| {
            let mut buf = vec![1.0f32; 100];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            comm.bytes_sent()
        },
    );
    let faulty = run_local_with(
        2,
        |_rank, cfg| cfg.with_fault(FaultInjector::none().with_drop_every(3)),
        |mut comm| {
            let mut buf = vec![1.0f32; 100];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            comm.bytes_sent()
        },
    );
    assert_eq!(clean, faulty);
}
