//! Schedule-verification tests over real sockets.
//!
//! The thread backend proves the cross-check protocol in
//! `acp_collectives`; these tests prove the same guarantees survive the
//! framed TCP transport: a rank that skips a collective is named by
//! `CommError::ScheduleMismatch` within the per-op deadline instead of
//! hanging the group, and aligned schedules pass through the tagging
//! untouched.

use std::time::{Duration, Instant};

use acp_collectives::schedule::OpKind;
use acp_collectives::{CommError, Communicator, ReduceOp, VerifyMode};
use acp_net::tcp::run_local_with;

fn cross_check(
    world_size: usize,
    deadline: Duration,
) -> impl Fn(usize, acp_net::TcpConfig) -> acp_net::TcpConfig + Sync {
    let _ = world_size;
    move |_rank, cfg| {
        cfg.with_verify(VerifyMode::CrossCheck)
            .with_op_deadline(deadline)
    }
}

#[test]
fn aligned_schedules_pass_cross_check_over_tcp() {
    let results = run_local_with(
        3,
        cross_check(3, Duration::from_secs(20)),
        |mut comm| -> Result<_, CommError> {
            let mut buf = vec![comm.rank_id().as_usize() as f32; 32];
            comm.all_reduce(&mut buf, ReduceOp::Sum)?;
            comm.barrier()?;
            let got = comm.all_gather_u32(&[comm.rank_id().as_usize() as u32])?;
            Ok((buf[0], got, comm.schedule().expect("snapshot")))
        },
    );
    let mut digests = Vec::new();
    for r in results {
        let (sum, gathered, snap) = r.expect("aligned schedules must pass");
        assert_eq!(sum, 3.0);
        assert_eq!(gathered, vec![0, 1, 2]);
        assert_eq!(snap.seq, 3);
        assert_eq!(snap.entries.len(), 3, "cross-check keeps the full log");
        digests.push(snap.digest);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "aligned ranks must agree on the schedule digest: {digests:?}"
    );
}

#[test]
fn skipped_collective_surfaces_as_schedule_mismatch_over_tcp() {
    // The acceptance scenario on the socket backend: rank 1 skips a
    // bucket's all-reduce and goes straight to the barrier. The first
    // divergent collective must be named within the per-op deadline —
    // no rank may hang until the group-establishment timeout or return
    // a silently corrupt reduction.
    let deadline = Duration::from_secs(5);
    let start = Instant::now();
    let results = run_local_with(3, cross_check(3, deadline), |mut comm| {
        if comm.rank_id().as_usize() != 1 {
            let mut buf = vec![comm.rank_id().as_usize() as f32; 64];
            comm.all_reduce(&mut buf, ReduceOp::Sum)?;
        }
        comm.barrier()
    });
    assert!(
        start.elapsed() < deadline + Duration::from_secs(10),
        "divergence took {:?} to surface",
        start.elapsed()
    );
    let (seq, local, peer) = results
        .iter()
        .find_map(|r| match r {
            Err(CommError::ScheduleMismatch { seq, local, peer }) => Some((*seq, *local, *peer)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no rank observed the divergence: {results:?}"));
    assert_eq!(seq, 0, "the very first collective diverges");
    let kinds: Vec<_> = [local.map(|p| p.kind), Some(peer.kind)]
        .into_iter()
        .flatten()
        .collect();
    assert!(
        kinds.contains(&OpKind::Barrier) && kinds.contains(&OpKind::AllReduce),
        "mismatch does not name the divergent pair: seq={seq} local={local:?} peer={peer:?}"
    );
    for r in &results {
        assert!(r.is_err(), "a rank completed despite the divergence: {r:?}");
    }
}
