//! Topology and elastic-membership tests for the TCP backend.
//!
//! Two-level (ring-of-rings) all-reduce must be bit-exact with the flat
//! ring on integer-valued gradients and with the thread backend on
//! arbitrary floats; a rank that dies mid-collective must surface as
//! `CommError::MembershipChanged` on every survivor, and `reform()` must
//! rebuild a working flat group whose results match a fresh group of the
//! same survivors — never a hang, bounded by the op deadline.

use std::time::{Duration, Instant};

use acp_collectives::{CommError, Communicator, ReduceOp, ThreadGroup, Topology, VerifyMode};
use acp_net::{run_local, run_local_with, RetryPolicy, Wiring};

/// Integer-valued pseudo-gradient: f32 addition over small integers is
/// exact in any association, so flat and hierarchical reduction orders
/// must agree to the bit.
fn integer_input(rank: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (((i as i64 * 7 + rank as i64 * 13) % 17) - 8) as f32)
        .collect()
}

/// Arbitrary-float pseudo-gradient (same shape as the equivalence suite).
fn float_input(rank: usize, len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| (((i as u64 * 31 + rank as u64 * 17 + seed * 101) % 1009) as f32 * 0.37).sin())
        .collect()
}

fn exact_sum(ranks: &[usize], len: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; len];
    for &r in ranks {
        for (o, x) in out.iter_mut().zip(integer_input(r, len)) {
            *o += x;
        }
    }
    out
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// A retry policy that gives up fast: membership tests dial dead
/// listeners on purpose, and the default backoff budget would dominate
/// the test's wall clock.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        attempt_timeout: Duration::from_millis(250),
        dial_budget: Duration::ZERO, // attempts-only: dead peers must fail fast
    }
}

/// Two-level all-reduce over TCP is bit-exact with the flat TCP ring on
/// integer-valued inputs, across group shapes including uneven chunking.
#[test]
fn two_level_all_reduce_over_tcp_is_bit_exact_with_flat() {
    for (world, groups, len) in [(4, 2, 33), (8, 2, 257), (8, 4, 64)] {
        let flat = run_local(world, |mut comm| {
            let mut buf = integer_input(comm.rank_id().as_usize(), len);
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        let hier = run_local_with(
            world,
            |_rank, cfg| cfg.with_groups(groups).unwrap(),
            |mut comm| {
                assert_eq!(comm.topology().groups(), groups);
                let mut buf = integer_input(comm.rank_id().as_usize(), len);
                comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                buf
            },
        );
        let expected = exact_sum(&(0..world).collect::<Vec<_>>(), len);
        for rank in 0..world {
            assert_bits_eq(&hier[rank], &flat[rank], "two-level tcp vs flat tcp");
            assert_bits_eq(&hier[rank], &expected, "two-level tcp vs exact sum");
        }
    }
}

/// Two-level all-reduce over TCP is bit-exact with the two-level thread
/// backend on *arbitrary* floats: both run the identical hierarchical
/// schedule from `acp_collectives::hierarchy`, so equality holds by
/// construction.
#[test]
fn two_level_tcp_matches_two_level_thread_on_floats() {
    let (world, groups, len, seed) = (8, 2, 129, 42);
    let thread = ThreadGroup::try_run_with_topology(
        Topology::grouped(world, groups).unwrap(),
        VerifyMode::Digest,
        |mut comm| {
            let mut buf = float_input(comm.rank_id().as_usize(), len, seed);
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        },
    )
    .unwrap();
    let tcp = run_local_with(
        world,
        |_rank, cfg| cfg.with_groups(groups).unwrap(),
        |mut comm| {
            let mut buf = float_input(comm.rank_id().as_usize(), len, seed);
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        },
    );
    for rank in 0..world {
        assert_bits_eq(&tcp[rank], &thread[rank], "two-level tcp vs thread");
    }
}

/// 3-rank group, rank 1 dies before the collective: both survivors
/// observe `MembershipChanged { epoch: 0, departed: [1] }`, `reform()`
/// converges on epoch 1 over ranks `[0, 2]`, and the post-reform
/// all-reduce is bit-exact with a fresh group of the same survivors.
#[test]
fn killed_rank_surfaces_membership_changed_and_reform_converges() {
    let len = 9;
    let started = Instant::now();
    let results = run_local_with(
        3,
        |_rank, cfg| {
            cfg.with_wiring(Wiring::FullMesh)
                .with_op_deadline(Duration::from_secs(2))
                .with_retry(fast_retry())
        },
        |mut comm| {
            let me = comm.rank_id().as_usize();
            if me == 1 {
                return None; // Dies: dropping the communicator closes its listener.
            }
            std::thread::sleep(Duration::from_millis(100)); // let the victim die first
            let mut buf = integer_input(me, len);
            match comm.all_reduce(&mut buf, ReduceOp::Sum) {
                Err(CommError::MembershipChanged { epoch: 0, departed }) => {
                    assert_eq!(departed, vec![1]);
                }
                other => panic!("expected MembershipChanged, got {other:?}"),
            }
            let membership = comm.reform().expect("survivors reform");
            assert_eq!(membership.epoch(), 1);
            assert_eq!(membership.ranks(), &[0, 2]);
            assert!(comm.topology().is_flat());
            let mut buf = integer_input(me, len);
            comm.all_reduce(&mut buf, ReduceOp::Sum)
                .expect("post-reform collective");
            Some(buf)
        },
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "membership change and reform must be bounded, not a hang"
    );
    // The reformed group must compute exactly what a fresh group of the
    // survivors computes (integer inputs keyed by original physical rank).
    let fresh = exact_sum(&[0, 2], len);
    assert_eq!(results[1], None);
    for rank in [0, 2] {
        assert_bits_eq(
            results[rank].as_ref().unwrap(),
            &fresh,
            "reformed group vs fresh survivors",
        );
    }
}

/// 8-rank two-level (2×4) group, rank 5 dies mid-run: all seven
/// survivors observe the membership change, reform to a flat 7-rank
/// ring at epoch 1, and converge bit-exact with the exact sum over the
/// survivors.
#[test]
fn two_level_kill_and_reform_on_eight_ranks() {
    let (world, groups, len) = (8, 2, 65);
    let started = Instant::now();
    let results = run_local_with(
        world,
        |_rank, cfg| {
            cfg.with_groups(groups)
                .unwrap()
                .with_op_deadline(Duration::from_secs(2))
                .with_retry(fast_retry())
        },
        |mut comm| {
            let me = comm.rank_id().as_usize();
            if me == 5 {
                return None;
            }
            std::thread::sleep(Duration::from_millis(100));
            let mut buf = integer_input(me, len);
            match comm.all_reduce(&mut buf, ReduceOp::Sum) {
                Err(CommError::MembershipChanged { epoch: 0, departed }) => {
                    assert_eq!(departed, vec![5]);
                }
                other => panic!("expected MembershipChanged, got {other:?}"),
            }
            let membership = comm.reform().expect("survivors reform");
            assert_eq!(membership.epoch(), 1);
            assert_eq!(membership.ranks(), &[0, 1, 2, 3, 4, 6, 7]);
            assert_eq!(comm.membership().world_size(), 7);
            assert!(comm.topology().is_flat());
            let mut buf = integer_input(me, len);
            comm.all_reduce(&mut buf, ReduceOp::Sum)
                .expect("post-reform collective");
            Some(buf)
        },
    );
    assert!(started.elapsed() < Duration::from_secs(60));
    let fresh = exact_sum(&[0, 1, 2, 3, 4, 6, 7], len);
    for (rank, result) in results.iter().enumerate() {
        if rank == 5 {
            assert_eq!(*result, None);
        } else {
            assert_bits_eq(
                result.as_ref().unwrap(),
                &fresh,
                "reformed two-level group vs fresh survivors",
            );
        }
    }
}

/// Reform with nobody departed is the identity: same epoch, same ranks,
/// and the group keeps working.
#[test]
fn reform_without_departures_is_idempotent_over_tcp() {
    let results = run_local_with(
        3,
        |_rank, cfg| cfg.with_wiring(Wiring::FullMesh),
        |mut comm| {
            let membership = comm.reform().expect("no-op reform");
            assert_eq!(membership.epoch(), 0);
            assert_eq!(membership.world_size(), 3);
            let mut buf = vec![1.0f32; 8];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        },
    );
    for buf in results {
        assert_eq!(buf, vec![3.0; 8]);
    }
}
