//! Cross-backend equivalence: the TCP communicator must be **bit-exact**
//! with the in-process thread communicator on every collective, across
//! world sizes 2–8 and odd buffer lengths.
//!
//! Both backends run the same generic algorithms from
//! `acp_collectives::ring`, so equality should hold by construction; these
//! tests pin that guarantee against regressions in the wire format (a
//! lossy f32 round-trip would show up immediately) and in the chunking
//! logic. Sums are additionally checked against a naive sequential
//! reference within floating-point tolerance.

use acp_collectives::{wait_all, CollectiveOp, Communicator, ReduceOp, ThreadGroup};
use acp_net::{run_local, run_local_with, Wiring};
use proptest::prelude::*;

/// Deterministic, rank-dependent pseudo-gradient (no RNG state to thread
/// through the two backends).
fn input(rank: usize, len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| (((i as u64 * 31 + rank as u64 * 17 + seed * 101) % 1009) as f32 * 0.37).sin())
        .collect()
}

fn op_from(tag: u8) -> ReduceOp {
    match tag % 3 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Mean,
        _ => ReduceOp::Max,
    }
}

/// Naive sequential reduction, rank order 0..p.
fn reference_reduce(world: usize, len: usize, seed: u64, op: ReduceOp) -> Vec<f32> {
    let mut out = input(0, len, seed);
    for rank in 1..world {
        for (o, x) in out.iter_mut().zip(input(rank, len, seed)) {
            match op {
                ReduceOp::Sum | ReduceOp::Mean => *o += x,
                ReduceOp::Max => *o = o.max(x),
            }
        }
    }
    if op == ReduceOp::Mean {
        let inv = 1.0 / world as f32;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }
    out
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All-reduce over TCP is bit-exact with the thread backend for every
    /// op, and within float tolerance of the sequential reference.
    #[test]
    fn all_reduce_matches_thread_backend(
        world in 2usize..9,
        len in 1usize..130,
        seed in 0u64..1000,
        op_tag in 0u8..3,
    ) {
        let op = op_from(op_tag);
        let thread = ThreadGroup::run(world, |mut comm| {
            let mut buf = input(comm.rank_id().as_usize(), len, seed);
            comm.all_reduce(&mut buf, op).unwrap();
            buf
        });
        let tcp = run_local(world, |mut comm| {
            let mut buf = input(comm.rank_id().as_usize(), len, seed);
            comm.all_reduce(&mut buf, op).unwrap();
            buf
        });
        let reference = reference_reduce(world, len, seed, op);
        for rank in 0..world {
            assert_bits_eq(&tcp[rank], &thread[rank], "all_reduce tcp vs thread");
            for (x, r) in tcp[rank].iter().zip(&reference) {
                prop_assert!((x - r).abs() <= 1e-4 * r.abs().max(1.0),
                    "all_reduce vs reference: {x} vs {r}");
            }
        }
    }

    /// Ring all-gather (f32 and u32) over TCP is bit-exact with threads.
    #[test]
    fn all_gather_matches_thread_backend(
        world in 2usize..9,
        len in 1usize..65,
        seed in 0u64..1000,
    ) {
        let thread = ThreadGroup::run(world, |mut comm| {
            let send = input(comm.rank_id().as_usize(), len, seed);
            let idx: Vec<u32> = (0..len as u32).map(|i| i * 7 + comm.rank_id().as_usize() as u32).collect();
            (comm.all_gather_f32(&send).unwrap(), comm.all_gather_u32(&idx).unwrap())
        });
        let tcp = run_local(world, |mut comm| {
            let send = input(comm.rank_id().as_usize(), len, seed);
            let idx: Vec<u32> = (0..len as u32).map(|i| i * 7 + comm.rank_id().as_usize() as u32).collect();
            (comm.all_gather_f32(&send).unwrap(), comm.all_gather_u32(&idx).unwrap())
        });
        for rank in 0..world {
            assert_bits_eq(&tcp[rank].0, &thread[rank].0, "all_gather_f32 tcp vs thread");
            prop_assert_eq!(&tcp[rank].1, &thread[rank].1);
        }
    }

    /// Broadcast from every root delivers the root's exact bits everywhere.
    #[test]
    fn broadcast_matches_thread_backend(
        world in 2usize..9,
        len in 1usize..130,
        seed in 0u64..1000,
    ) {
        for root in 0..world {
            let thread = ThreadGroup::run(world, |mut comm| {
                let mut buf = input(comm.rank_id().as_usize(), len, seed);
                comm.broadcast(&mut buf, root).unwrap();
                buf
            });
            let tcp = run_local(world, |mut comm| {
                let mut buf = input(comm.rank_id().as_usize(), len, seed);
                comm.broadcast(&mut buf, root).unwrap();
                buf
            });
            let expected = input(root, len, seed);
            for rank in 0..world {
                assert_bits_eq(&tcp[rank], &thread[rank], "broadcast tcp vs thread");
                assert_bits_eq(&tcp[rank], &expected, "broadcast vs root input");
            }
        }
    }

    /// gTop-k over a full-mesh TCP group runs the identical butterfly as
    /// the thread backend — same indices, same value bits.
    #[test]
    fn global_topk_full_mesh_matches_thread_backend(
        world in 2usize..9,
        n in 1usize..33,
        k in 1usize..17,
        seed in 0u64..1000,
    ) {
        let sparse = |rank: usize| {
            let idx: Vec<u32> = (0..n as u32).map(|i| i * 5 + rank as u32 % 5).collect();
            let val = input(rank, n, seed);
            (idx, val)
        };
        let thread = ThreadGroup::run(world, |mut comm| {
            let (idx, val) = sparse(comm.rank_id().as_usize());
            comm.global_topk(&idx, &val, k).unwrap()
        });
        let tcp = run_local_with(
            world,
            |_rank, cfg| cfg.with_wiring(Wiring::FullMesh),
            |mut comm| {
                let (idx, val) = sparse(comm.rank_id().as_usize());
                comm.global_topk(&idx, &val, k).unwrap()
            },
        );
        for rank in 0..world {
            prop_assert_eq!(&tcp[rank].0, &thread[rank].0);
            assert_bits_eq(&tcp[rank].1, &thread[rank].1, "global_topk tcp vs thread");
        }
    }

    /// The non-blocking path (`all_reduce_start` + `wait`, with several
    /// operations in flight) is bit-exact across backends *and* with the
    /// blocking call — the comm worker runs the same ring algorithms in
    /// the same submission order.
    #[test]
    fn all_reduce_start_matches_thread_backend_and_blocking(
        world in 2usize..9,
        len in 1usize..130,
        seed in 0u64..1000,
        op_tag in 0u8..3,
    ) {
        let op = op_from(op_tag);
        let nonblocking_run = |mut comm: Box<dyn Communicator>| {
            // Two operations in flight at once, redeemed in FIFO order.
            let first = comm.all_reduce_start(input(comm.rank_id().as_usize(), len, seed), op);
            let second = comm.dispatch(CollectiveOp::AllReduce {
                buf: input(comm.rank_id().as_usize(), len, seed.wrapping_add(1)),
                op,
            });
            let results = wait_all([first, second]).unwrap();
            results
                .into_iter()
                .map(|r| r.into_f32().unwrap())
                .collect::<Vec<_>>()
        };
        let blocking = ThreadGroup::run(world, |mut comm| {
            let mut a = input(comm.rank_id().as_usize(), len, seed);
            comm.all_reduce(&mut a, op).unwrap();
            let mut b = input(comm.rank_id().as_usize(), len, seed.wrapping_add(1));
            comm.all_reduce(&mut b, op).unwrap();
            vec![a, b]
        });
        let thread = ThreadGroup::run(world, |comm| nonblocking_run(Box::new(comm)));
        let tcp = run_local(world, |comm| nonblocking_run(Box::new(comm)));
        for rank in 0..world {
            for round in 0..2 {
                assert_bits_eq(
                    &tcp[rank][round],
                    &thread[rank][round],
                    "all_reduce_start tcp vs thread",
                );
                assert_bits_eq(
                    &thread[rank][round],
                    &blocking[rank][round],
                    "all_reduce_start vs blocking",
                );
            }
        }
    }
}

/// Barrier completes on every topology and world size (including the
/// two-rank ring, where both links join the same pair of peers).
#[test]
fn barrier_completes_everywhere() {
    for world in 1..6 {
        let done = run_local(world, |mut comm| {
            for _ in 0..3 {
                comm.barrier().unwrap();
            }
            true
        });
        assert_eq!(done, vec![true; world]);
        let done = run_local_with(
            world,
            |_rank, cfg| cfg.with_wiring(Wiring::FullMesh),
            |mut comm| {
                comm.barrier().unwrap();
                true
            },
        );
        assert_eq!(done, vec![true; world]);
    }
}

/// gTop-k on a ring topology uses the exact gather-and-truncate fallback;
/// results must sum contributions exactly like the Communicator trait's
/// default algorithm.
#[test]
fn global_topk_ring_fallback_is_exact() {
    let results = run_local(4, |mut comm| {
        // Every rank contributes 1.0 at its own coordinate and 0.5 at
        // coordinate 100 — the shared coordinate's sum (2.0) must win.
        let idx = vec![comm.rank_id().as_usize() as u32, 100];
        let val = vec![1.0, 0.5];
        comm.global_topk(&idx, &val, 2).unwrap()
    });
    for (idx, val) in results {
        assert_eq!(idx.len(), 2);
        assert!(
            idx.contains(&100),
            "shared coordinate must survive, got {idx:?}"
        );
        let shared = idx.iter().position(|&i| i == 100).unwrap();
        assert_eq!(val[shared], 2.0);
    }
}

/// A world of one needs no sockets and every collective is the identity.
#[test]
fn single_rank_group_is_identity() {
    let results = run_local(1, |mut comm| {
        let mut buf = vec![1.25f32, -3.5];
        comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
        let gathered = comm.all_gather_f32(&[2.0, 4.0]).unwrap();
        comm.barrier().unwrap();
        (buf, gathered)
    });
    assert_eq!(results[0].0, vec![1.25, -3.5]);
    assert_eq!(results[0].1, vec![2.0, 4.0]);
}
