//! Per-step training reports and their table rendering.

/// Telemetry for one optimizer step of one rank, assembled by the trainer
/// from recorder deltas.
///
/// Byte fields are per-rank: `wire_bytes` is what this rank physically sent
/// through its communicator during the step (for ring all-reduce this is
/// `2(p−1)/p` of the buffer size, per Table II of the paper), while
/// `payload_bytes` / `dense_bytes` describe the compressed representation
/// independent of the collective used to move it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepReport {
    /// Epoch this step belongs to (0-based).
    pub epoch: usize,
    /// Step index within the epoch (0-based).
    pub step: usize,
    /// Bytes this rank sent over the wire during the step.
    pub wire_bytes: u64,
    /// Compressed payload bytes produced by the aggregator this step.
    pub payload_bytes: u64,
    /// Dense gradient bytes the payload stands in for.
    pub dense_bytes: u64,
    /// Time spent in compression (encode/decode) this step, microseconds.
    pub compress_us: f64,
    /// Time spent inside collective calls this step, microseconds.
    pub comm_us: f64,
    /// L2 norm of the error-feedback residual after the step, if the
    /// aggregator maintains one.
    pub residual_norm: Option<f64>,
    /// Mini-batch training loss, if the caller tracks one.
    pub loss: Option<f64>,
}

impl StepReport {
    /// Dense-to-payload compression ratio (higher = smaller wire format);
    /// 1.0 when nothing was compressed.
    pub fn compression_ratio(&self) -> f64 {
        if self.payload_bytes == 0 {
            1.0
        } else {
            self.dense_bytes as f64 / self.payload_bytes as f64
        }
    }
}

/// Renders step reports as an aligned plain-text table.
///
/// ```
/// use acp_telemetry::StepReport;
///
/// let steps = vec![StepReport { epoch: 0, step: 0, wire_bytes: 1536,
///     payload_bytes: 2048, dense_bytes: 4096, compress_us: 120.0,
///     comm_us: 80.0, residual_norm: Some(0.5), loss: Some(2.3) }];
/// let table = acp_telemetry::render_step_table(&steps);
/// assert!(table.contains("ratio"));
/// ```
pub fn render_step_table(steps: &[StepReport]) -> String {
    let mut rows: Vec<Vec<String>> = vec![vec![
        "epoch".into(),
        "step".into(),
        "wire KiB".into(),
        "payload KiB".into(),
        "ratio".into(),
        "compress ms".into(),
        "comm ms".into(),
        "residual".into(),
        "loss".into(),
    ]];
    for s in steps {
        rows.push(vec![
            s.epoch.to_string(),
            s.step.to_string(),
            format!("{:.1}", s.wire_bytes as f64 / 1024.0),
            format!("{:.1}", s.payload_bytes as f64 / 1024.0),
            format!("{:.1}x", s.compression_ratio()),
            format!("{:.3}", s.compress_us / 1e3),
            format!("{:.3}", s.comm_us / 1e3),
            s.residual_norm
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "-".into()),
            s.loss
                .map(|l| format!("{l:.4}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    render_aligned(&rows)
}

/// Right-aligns every column to its widest cell; first row is the header,
/// separated by a dashed rule.
pub(crate) fn render_aligned(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            for _ in 0..widths[i].saturating_sub(cell.len()) {
                line.push(' ');
            }
            line.push_str(cell);
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_payload() {
        let s = StepReport::default();
        assert_eq!(s.compression_ratio(), 1.0);
        let s = StepReport {
            dense_bytes: 4096,
            payload_bytes: 1024,
            ..StepReport::default()
        };
        assert_eq!(s.compression_ratio(), 4.0);
    }

    #[test]
    fn table_aligns_columns() {
        let steps = vec![
            StepReport {
                epoch: 0,
                step: 0,
                wire_bytes: 1536,
                payload_bytes: 2048,
                dense_bytes: 409600,
                compress_us: 120.0,
                comm_us: 80.0,
                residual_norm: Some(0.5),
                loss: Some(2.3),
            },
            StepReport {
                epoch: 10,
                step: 123,
                wire_bytes: 1536000,
                payload_bytes: 2048,
                dense_bytes: 409600,
                compress_us: 120.0,
                comm_us: 80.0,
                residual_norm: None,
                loss: None,
            },
        ];
        let table = render_step_table(&steps);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].contains("ratio"));
        assert!(lines[3].contains('-')); // missing residual/loss render as -
                                         // Columns align: header and rows end at the same width.
        assert_eq!(lines[1].len(), lines[0].len());
    }
}
