//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
//!
//! Emits the JSON Array-of-events format: complete events (`"ph": "X"`)
//! with microsecond timestamps, plus metadata events naming processes and
//! threads. The JSON is written by hand — no serializer dependency — and is
//! accepted by `chrome://tracing`, Perfetto and `speedscope`.

use crate::recorder::{InMemoryRecorder, SpanRecord};

/// Builds a Chrome-trace JSON document from spans.
///
/// ```
/// use acp_telemetry::ChromeTraceBuilder;
///
/// let mut trace = ChromeTraceBuilder::new();
/// trace.thread_name(0, 0, "worker 0");
/// trace.complete("all_reduce", "comm", 0, 0, 10.0, 250.0);
/// let json = trace.build();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float without scientific notation surprises for tracing UIs.
fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a complete ("X") event: a span with explicit start and duration,
    /// both in microseconds.
    pub fn complete(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
            escape(name),
            escape(cat),
            num(ts_us),
            num(dur_us),
            pid,
            tid,
        ));
    }

    /// Adds an instant ("i") event at `ts_us`, e.g. a step boundary marker.
    pub fn instant(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
            escape(name),
            escape(cat),
            num(ts_us),
            pid,
            tid,
        ));
    }

    /// Names a process in the trace viewer.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            escape(name),
        ));
    }

    /// Names a thread (track) in the trace viewer.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            tid,
            escape(name),
        ));
    }

    /// Adds every span from a recorder, using each span's track as the tid.
    pub fn add_spans(&mut self, pid: u64, spans: &[SpanRecord]) {
        for s in spans {
            self.complete(
                &s.name,
                &s.cat,
                pid,
                s.track,
                s.start_us as f64,
                s.duration_us() as f64,
            );
        }
    }

    /// Convenience: a full trace from one recorder's spans.
    pub fn from_recorder(rec: &InMemoryRecorder) -> Self {
        let mut trace = Self::new();
        trace.add_spans(0, &rec.spans());
        trace
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to the Chrome-trace JSON object format.
    pub fn build(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Writes the JSON document to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, Span};

    /// Minimal structural validation: balanced braces/brackets and quotes
    /// outside of strings — enough to catch malformed hand-built JSON.
    fn check_json(s: &str) {
        let mut depth_obj = 0i32;
        let mut depth_arr = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0, "unbalanced JSON");
        }
        assert_eq!(depth_obj, 0);
        assert_eq!(depth_arr, 0);
        assert!(!in_str);
    }

    #[test]
    fn builds_valid_json() {
        let mut t = ChromeTraceBuilder::new();
        t.process_name(0, "trainer");
        t.thread_name(0, 1, "worker \"1\"");
        t.complete("all_reduce", "comm", 0, 1, 0.0, 125.5);
        t.instant("step", "framework", 0, 1, 125.5);
        let json = t.build();
        check_json(&json);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":125.500"));
        assert!(json.contains("worker \\\"1\\\""));
    }

    #[test]
    fn from_recorder_maps_tracks_to_tids() {
        let rec = InMemoryRecorder::new();
        rec.span(Span {
            name: "compress",
            cat: "compress",
            track: 3,
            start_us: 10,
            end_us: 40,
        });
        let trace = ChromeTraceBuilder::from_recorder(&rec);
        assert_eq!(trace.len(), 1);
        let json = trace.build();
        check_json(&json);
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"dur\":30"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let t = ChromeTraceBuilder::new();
        assert!(t.is_empty());
        check_json(&t.build());
    }
}
