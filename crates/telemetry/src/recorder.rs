//! The [`Recorder`] interface and its two implementations: the free
//! [`NoopRecorder`] and the aggregating [`InMemoryRecorder`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A completed timed span, as passed to [`Recorder::span`].
///
/// Times are microseconds relative to the recorder's epoch (its creation
/// time for [`InMemoryRecorder`]); `track` distinguishes concurrent
/// timelines (one per worker rank, or compute vs. network in the simulator)
/// and becomes the thread id in Chrome-trace export.
#[derive(Clone, Copy, Debug)]
pub struct Span<'a> {
    /// Human-readable label, e.g. `"all_reduce"` or `"compress"`.
    pub name: &'a str,
    /// Category, e.g. `"comm"` or `"compress"`; used for trace filtering.
    pub cat: &'a str,
    /// Timeline the span belongs to (worker rank or simulated resource).
    pub track: u64,
    /// Start time in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// End time in microseconds since the recorder's epoch.
    pub end_us: u64,
}

/// An owned [`Span`], as stored by [`InMemoryRecorder`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Human-readable label.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Timeline the span belongs to.
    pub track: u64,
    /// Start time in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// End time in microseconds since the recorder's epoch.
    pub end_us: u64,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Sink for metrics emitted by communicators, aggregators and trainers.
///
/// All methods take `&self` so a single recorder can be shared across worker
/// threads as an `Arc<dyn Recorder>`; implementations handle their own
/// synchronization. Every method has an empty default, so a no-op recorder
/// costs nothing and new methods never break implementors.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps data. Callers may skip measurement work
    /// (e.g. norm computations) when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the monotonic counter named `key`.
    fn add(&self, key: &str, delta: u64) {
        let _ = (key, delta);
    }

    /// Appends `value` to the series named `key`.
    fn observe(&self, key: &str, value: f64) {
        let _ = (key, value);
    }

    /// Records a completed timed span.
    fn span(&self, span: Span<'_>) {
        let _ = span;
    }

    /// Microseconds since this recorder's epoch (0 when disabled). Use this
    /// for span timestamps so all tracks share one clock.
    fn now_us(&self) -> u64 {
        0
    }
}

/// Shared handle to a recorder; cheap to clone and thread through a stack.
pub type RecorderHandle = Arc<dyn Recorder>;

/// The recorder that records nothing; the default everywhere.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A fresh handle to the no-op recorder.
pub fn noop() -> RecorderHandle {
    Arc::new(NoopRecorder)
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    values: BTreeMap<String, Vec<f64>>,
    spans: Vec<SpanRecord>,
}

/// Recorder that aggregates everything in memory behind a mutex.
///
/// Counters and value series are keyed by the constants in [`crate::keys`]
/// (plus any ad-hoc keys callers invent). Read sides ([`counter`],
/// [`values`], [`snapshot`]) clone data out, so holding results does not
/// block writers.
///
/// [`counter`]: InMemoryRecorder::counter
/// [`values`]: InMemoryRecorder::values
/// [`snapshot`]: InMemoryRecorder::snapshot
pub struct InMemoryRecorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Creates an empty recorder whose epoch is "now".
    pub fn new() -> Self {
        InMemoryRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned mutex only means another thread panicked mid-record;
        // the data is still sound for reporting.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current value of a counter (0 if never written).
    pub fn counter(&self, key: &str) -> u64 {
        self.lock().counters.get(key).copied().unwrap_or(0)
    }

    /// All observations recorded under `key`, in order.
    pub fn values(&self, key: &str) -> Vec<f64> {
        self.lock().values.get(key).cloned().unwrap_or_default()
    }

    /// Sum of the observations recorded under `key`.
    pub fn value_sum(&self, key: &str) -> f64 {
        self.lock()
            .values
            .get(key)
            .map(|v| v.iter().sum())
            .unwrap_or(0.0)
    }

    /// All spans recorded so far, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// A point-in-time copy of every counter, series and span.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            values: inner.values.clone(),
            spans: inner.spans.clone(),
        }
    }

    /// Clears all recorded data but keeps the epoch, so span timestamps
    /// from before and after a reset remain comparable.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.values.clear();
        inner.spans.clear();
    }
}

impl Recorder for InMemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, key: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(key) {
            Some(c) => *c += delta,
            None => {
                inner.counters.insert(key.to_string(), delta);
            }
        }
    }

    fn observe(&self, key: &str, value: f64) {
        let mut inner = self.lock();
        match inner.values.get_mut(key) {
            Some(v) => v.push(value),
            None => {
                inner.values.insert(key.to_string(), vec![value]);
            }
        }
    }

    fn span(&self, span: Span<'_>) {
        self.lock().spans.push(SpanRecord {
            name: span.name.to_string(),
            cat: span.cat.to_string(),
            track: span.track,
            start_us: span.start_us,
            end_us: span.end_us,
        });
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A [`RecorderHandle`] that is `Default` (no-op) and `Debug`, convenient
/// as a field of derive-heavy structs (aggregators, trainers).
///
/// Dereferences to `dyn Recorder`, so `cell.add(...)` works directly.
#[derive(Clone)]
pub struct RecorderCell(RecorderHandle);

impl RecorderCell {
    /// Wraps a handle.
    pub fn new(handle: RecorderHandle) -> Self {
        RecorderCell(handle)
    }

    /// A clone of the wrapped handle.
    pub fn handle(&self) -> RecorderHandle {
        Arc::clone(&self.0)
    }

    /// Replaces the wrapped handle.
    pub fn set(&mut self, handle: RecorderHandle) {
        self.0 = handle;
    }
}

impl Default for RecorderCell {
    fn default() -> Self {
        RecorderCell(noop())
    }
}

impl fmt::Debug for RecorderCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecorderCell")
            .field("enabled", &self.0.enabled())
            .finish()
    }
}

impl std::ops::Deref for RecorderCell {
    type Target = dyn Recorder;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl From<RecorderHandle> for RecorderCell {
    fn from(handle: RecorderHandle) -> Self {
        RecorderCell(handle)
    }
}

/// Point-in-time copy of an [`InMemoryRecorder`]'s contents.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Series name → observations in recording order.
    pub values: BTreeMap<String, Vec<f64>>,
    /// All recorded spans.
    pub spans: Vec<SpanRecord>,
}

/// Times a region and records it as a [`Span`] when dropped.
///
/// ```
/// use acp_telemetry::{InMemoryRecorder, Recorder, SpanGuard};
///
/// let rec = InMemoryRecorder::new();
/// {
///     let _g = SpanGuard::start(&rec, "all_reduce", "comm", 0);
///     // ... timed work ...
/// }
/// assert_eq!(rec.spans().len(), 1);
/// ```
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    name: &'a str,
    cat: &'a str,
    track: u64,
    start_us: u64,
}

impl<'a> SpanGuard<'a> {
    /// Starts timing; the span is recorded when the guard drops.
    pub fn start(rec: &'a dyn Recorder, name: &'a str, cat: &'a str, track: u64) -> Self {
        SpanGuard {
            rec,
            name,
            cat,
            track,
            start_us: rec.now_us(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.span(Span {
            name: self.name,
            cat: self.cat,
            track: self.track,
            start_us: self.start_us,
            end_us: self.rec.now_us(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let rec = InMemoryRecorder::new();
        rec.add("x", 3);
        rec.add("x", 4);
        assert_eq!(rec.counter("x"), 7);
        assert_eq!(rec.counter("missing"), 0);
    }

    #[test]
    fn values_preserve_order() {
        let rec = InMemoryRecorder::new();
        rec.observe("t", 1.0);
        rec.observe("t", 2.5);
        assert_eq!(rec.values("t"), vec![1.0, 2.5]);
        assert!((rec.value_sum("t") - 3.5).abs() < 1e-12);
    }

    #[test]
    fn recording_survives_a_poisoned_lock() {
        use std::sync::Arc;
        let rec = Arc::new(InMemoryRecorder::new());
        rec.add("before", 1);

        // Panic on another thread while holding the recorder's mutex, so
        // the lock is genuinely poisoned (silence the expected panic
        // message to keep test output clean).
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let poisoner = Arc::clone(&rec);
        let joined = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the recorder mutex");
        })
        .join();
        std::panic::set_hook(prev_hook);
        assert!(joined.is_err(), "the poisoning thread must have panicked");
        assert!(rec.inner.lock().is_err(), "the mutex must be poisoned");

        // Every recorder path must keep working: a rank that survives a
        // panicking sibling thread still has to report its telemetry.
        rec.add("after", 2);
        rec.observe("series", 1.5);
        {
            let _g = SpanGuard::start(rec.as_ref(), "span", "cat", 0);
        }
        assert_eq!(rec.counter("before"), 1);
        assert_eq!(rec.counter("after"), 2);
        assert_eq!(rec.values("series"), vec![1.5]);
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("after"), Some(&2));
        assert_eq!(snap.spans.len(), 1);
    }

    #[test]
    fn noop_is_inert() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.add("x", 1);
        rec.observe("y", 1.0);
        assert_eq!(rec.now_us(), 0);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let rec = InMemoryRecorder::new();
        {
            let _g = SpanGuard::start(&rec, "work", "compute", 2);
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert_eq!(spans[0].track, 2);
        assert!(spans[0].end_us >= spans[0].start_us);
    }

    #[test]
    fn shared_across_threads() {
        let rec = Arc::new(InMemoryRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter("hits"), 400);
    }

    #[test]
    fn reset_clears_data() {
        let rec = InMemoryRecorder::new();
        rec.add("x", 1);
        rec.observe("y", 1.0);
        rec.reset();
        assert_eq!(rec.counter("x"), 0);
        assert!(rec.values("y").is_empty());
        assert!(rec.snapshot().spans.is_empty());
    }
}
