//! Standard metric keys shared across the stack.
//!
//! Using these constants (rather than ad-hoc strings) is what lets the
//! trainer compute per-step deltas recorded by layers it does not know
//! about, and lets tests reconcile recorded bytes against the analytic cost
//! model in `acp-collectives::cost`.

/// Counter: bytes sent by a rank over the wire (all collectives).
pub const COMM_BYTES_SENT: &str = "comm.bytes_sent";
/// Counter: bytes received by a rank over the wire (all collectives).
pub const COMM_BYTES_RECV: &str = "comm.bytes_recv";
/// Counter: number of collective calls issued.
pub const COMM_CALLS: &str = "comm.calls";
/// Series: wall-clock latency of each `all_reduce` call, microseconds.
pub const COMM_ALL_REDUCE_US: &str = "comm.all_reduce_us";
/// Series: wall-clock latency of each `all_gather` call, microseconds.
pub const COMM_ALL_GATHER_US: &str = "comm.all_gather_us";
/// Series: wall-clock latency of each `broadcast` call, microseconds.
pub const COMM_BROADCAST_US: &str = "comm.broadcast_us";
/// Series: wall-clock latency of each `global_topk` call, microseconds.
pub const COMM_GLOBAL_TOPK_US: &str = "comm.global_topk_us";

/// Series: payload bytes of each `all_reduce` call, index-parallel with
/// [`COMM_ALL_REDUCE_US`] — zipping the two series yields the
/// (size, latency) samples the α–β calibration fit consumes.
pub const COMM_ALL_REDUCE_BYTES: &str = "comm.all_reduce_bytes";
/// Series: per-rank contributed bytes of each `all_gather` call,
/// index-parallel with [`COMM_ALL_GATHER_US`].
pub const COMM_ALL_GATHER_BYTES: &str = "comm.all_gather_bytes";
/// Series: payload bytes of each `broadcast` call, index-parallel with
/// [`COMM_BROADCAST_US`].
pub const COMM_BROADCAST_BYTES: &str = "comm.broadcast_bytes";
/// Series: per-rank candidate bytes of each `global_topk` call,
/// index-parallel with [`COMM_GLOBAL_TOPK_US`].
pub const COMM_GLOBAL_TOPK_BYTES: &str = "comm.global_topk_bytes";

/// Series: time spent compressing (encode + decode) per step, microseconds.
pub const COMPRESS_TIME_US: &str = "compress.time_us";
/// Counter: compressed payload bytes produced (what would cross the wire).
pub const COMPRESS_PAYLOAD_BYTES: &str = "compress.payload_bytes";
/// Counter: dense gradient bytes the payloads stand in for.
pub const COMPRESS_DENSE_BYTES: &str = "compress.dense_bytes";
/// Series: dense-bytes / payload-bytes ratio per step (higher = smaller wire).
pub const COMPRESS_RATIO: &str = "compress.ratio";

/// Series: L2 norm of the error-feedback residual after each step.
pub const EF_RESIDUAL_NORM: &str = "ef.residual_norm";

/// Series: aggregate (compress + communicate) time per optimizer step,
/// microseconds.
pub const STEP_AGGREGATE_US: &str = "step.aggregate_us";

/// Counter: fusion buckets dispatched by the aggregation pipeline.
pub const PIPELINE_BUCKETS: &str = "pipeline.buckets";
/// Series: *exposed* wait time per fusion bucket, microseconds — the part
/// of each bucket's communication the caller actually blocked on (zero
/// when the collective finished while later buckets were still packing or
/// backward was still running).
pub const PIPELINE_EXPOSED_WAIT_US: &str = "pipeline.exposed_wait_us";

/// Series: end-to-end latency of one aggregation-service step (first
/// contribution deposited → results written back), microseconds.
pub const SERVE_STEP_US: &str = "serve.step_us";
/// Counter: payload bytes aggregated by the serve shards.
pub const SERVE_STEP_BYTES: &str = "serve.step_bytes";
/// Series: shard queue depth observed when each completed step is
/// enqueued for aggregation.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Counter: aggregation steps completed by the serve shards.
pub const SERVE_STEPS: &str = "serve.steps";
/// Counter: submissions refused with a structured `Busy` by the serve
/// admission controller (an in-flight byte budget was exhausted).
pub const SERVE_REJECT_BUSY: &str = "serve.reject_busy";
/// Counter: cross-client schedule divergences detected by the serve
/// session layer (job poisoned, offender told the expected op).
pub const SERVE_SCHEDULE_MISMATCHES: &str = "serve.schedule_mismatches";

/// Span category for communication work.
pub const CAT_COMM: &str = "comm";
/// Span category for compression work.
pub const CAT_COMPRESS: &str = "compress";
/// Span category for compute (forward/backward) work.
pub const CAT_COMPUTE: &str = "compute";
/// Span category for the fused-bucket pipeline (dispatch/wait bookkeeping,
/// kept distinct from [`CAT_COMM`] so collective spans can be analyzed
/// without double counting).
pub const CAT_PIPELINE: &str = "pipeline";

/// Span name for one bucket's compress-and-dispatch stage.
pub const SPAN_BUCKET_DISPATCH: &str = "comm.bucket.dispatch";
/// Span name for one bucket's wait-decompress-writeback stage.
pub const SPAN_BUCKET_WAIT: &str = "comm.bucket.wait";
/// Span name for one backward pass ([`CAT_COMPUTE`]). With overlap enabled
/// the comm worker's [`CAT_COMM`] collective spans intersect these; without
/// it they never do.
pub const SPAN_BACKWARD: &str = "compute.backward";
