//! Least-squares calibration of the α–β communication cost model from
//! recorded collective telemetry.
//!
//! The simulator prices collectives with the standard α–β model
//! (`acp-collectives::cost`, Table II of the paper):
//!
//! ```text
//! T_allreduce(n) = launch + 2(p−1)·α + 2(p−1)/p · n · β
//! T_allgather(k) = launch + (p−1)·α +  (p−1)    · k · β
//! ```
//!
//! The communicators record a latency *and* a payload-size observation per
//! collective call (index-parallel series, see [`crate::keys`]); this
//! module turns those series into [`CollectiveSample`]s and fits
//! `(α, β, launch)` to them by linear least squares over the model's design
//! rows. The fitted parameters plug straight back into the simulator's
//! hardware profile, closing the loop between what a backend measures and
//! what the buffer-size tuner optimizes.
//!
//! Mixing both collective kinds in one profiling run is what makes the
//! three parameters separately identifiable: with a single kind the α and
//! `launch` columns are collinear and the fit falls back to a two-parameter
//! model with `launch = 0` (the sum is still recovered, attributed to α).

use crate::keys;
use crate::recorder::MetricsSnapshot;

/// Which collective produced a sample — selects the α–β design row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Ring all-reduce of an `n`-byte buffer.
    AllReduce,
    /// Ring all-gather where every rank contributes `n` bytes.
    AllGather,
}

impl CollectiveKind {
    /// The model's coefficient row `[coef_α, coef_β, coef_launch]` for a
    /// payload of `bytes` over `world` ranks.
    fn design_row(self, world: usize, bytes: f64) -> [f64; 3] {
        let p = world as f64;
        match self {
            CollectiveKind::AllReduce => [2.0 * (p - 1.0), 2.0 * (p - 1.0) / p * bytes, 1.0],
            CollectiveKind::AllGather => [p - 1.0, (p - 1.0) * bytes, 1.0],
        }
    }
}

/// One observed collective call: payload size and wall-clock duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveSample {
    /// The collective that ran.
    pub kind: CollectiveKind,
    /// Payload bytes (all-reduce: buffer size; all-gather: per-rank
    /// contribution).
    pub bytes: u64,
    /// Measured wall-clock duration in seconds.
    pub seconds: f64,
}

/// α–β parameters fitted from measured samples, in seconds (same semantics
/// as `acp_collectives::AlphaBetaCost`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedAlphaBeta {
    /// Per-hop message latency α (seconds).
    pub alpha: f64,
    /// Transfer cost β (seconds per byte).
    pub beta: f64,
    /// Fixed per-collective launch overhead (seconds).
    pub launch: f64,
    /// Number of samples the fit consumed.
    pub samples: usize,
}

/// Why a calibration fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// Fewer samples than free parameters.
    TooFewSamples {
        /// Samples provided.
        have: usize,
        /// Minimum required.
        need: usize,
    },
    /// A one-rank "cluster" performs no communication; there is nothing to
    /// fit.
    SingleWorker,
    /// The samples do not constrain the parameters (e.g. every payload has
    /// the same size, making α and β inseparable).
    Degenerate,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::TooFewSamples { have, need } => {
                write!(f, "calibration needs at least {need} samples, got {have}")
            }
            CalibrationError::SingleWorker => {
                write!(f, "cannot calibrate communication costs with one worker")
            }
            CalibrationError::Degenerate => {
                write!(f, "samples do not constrain the cost parameters")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Extracts (size, latency) samples from a snapshot by zipping the
/// index-parallel latency and byte series the communicators record
/// ([`keys::COMM_ALL_REDUCE_US`] with [`keys::COMM_ALL_REDUCE_BYTES`], and
/// the all-gather pair). Snapshots from instrumented runs that predate the
/// byte series simply yield no samples.
pub fn samples_from_snapshot(snapshot: &MetricsSnapshot) -> Vec<CollectiveSample> {
    let mut samples = Vec::new();
    let pairs = [
        (
            CollectiveKind::AllReduce,
            keys::COMM_ALL_REDUCE_US,
            keys::COMM_ALL_REDUCE_BYTES,
        ),
        (
            CollectiveKind::AllGather,
            keys::COMM_ALL_GATHER_US,
            keys::COMM_ALL_GATHER_BYTES,
        ),
    ];
    for (kind, us_key, bytes_key) in pairs {
        let (Some(us), Some(bytes)) = (snapshot.values.get(us_key), snapshot.values.get(bytes_key))
        else {
            continue;
        };
        for (&t_us, &b) in us.iter().zip(bytes) {
            samples.push(CollectiveSample {
                kind,
                bytes: b as u64,
                seconds: t_us * 1e-6,
            });
        }
    }
    samples
}

/// Solves the `n×n` system `m · x = rhs` in place by Gaussian elimination
/// with partial pivoting; `None` when (near-)singular.
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook elimination
fn solve(mut m: Vec<Vec<f64>>, mut rhs: Vec<f64>) -> Option<Vec<f64>> {
    let n = rhs.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))?;
        if m[pivot][col].abs() < 1e-30 {
            return None;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        for row in col + 1..n {
            let f = m[row][col] / m[col][col];
            for k in col..n {
                m[row][k] -= f * m[col][k];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut v = rhs[col];
        for k in col + 1..n {
            v -= m[col][k] * x[k];
        }
        x[col] = v / m[col][col];
    }
    Some(x)
}

/// Least squares over the selected design columns (`cols` indexes into the
/// 3-column α/β/launch row); returns the full `[α, β, launch]` vector with
/// unselected entries zero.
#[allow(clippy::needless_range_loop)] // k×k normal-equation indexing reads as math
fn fit_columns(world: usize, samples: &[CollectiveSample], cols: &[usize]) -> Option<[f64; 3]> {
    let k = cols.len();
    // Normal equations Aᵀ A x = Aᵀ y.
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for s in samples {
        let row = s.kind.design_row(world, s.bytes as f64);
        for (i, &ci) in cols.iter().enumerate() {
            for (j, &cj) in cols.iter().enumerate() {
                ata[i][j] += row[ci] * row[cj];
            }
            aty[i] += row[ci] * s.seconds;
        }
    }
    // β's column is scaled by payload bytes (~1e6 larger than the others),
    // which makes the normal equations ill-conditioned in absolute terms;
    // normalize each column to unit diagonal before solving.
    let scale: Vec<f64> = (0..k).map(|i| ata[i][i].sqrt().max(1e-30)).collect();
    for i in 0..k {
        for j in 0..k {
            ata[i][j] /= scale[i] * scale[j];
        }
        aty[i] /= scale[i];
    }
    // Reject numerically-degenerate systems (e.g. constant payload sizes):
    // after normalization any honest system has off-diagonal < 1.
    for i in 0..k {
        for j in 0..k {
            if i != j && ata[i][j].abs() > 1.0 - 1e-9 {
                return None;
            }
        }
    }
    let x = solve(ata, aty)?;
    let mut out = [0.0f64; 3];
    for (i, &ci) in cols.iter().enumerate() {
        out[ci] = x[i] / scale[i];
    }
    Some(out)
}

/// Fits `(α, β, launch)` to `samples` by least squares over the ring α–β
/// design rows for a `world`-rank cluster. Negative estimates (possible
/// under noise) are clamped to zero.
///
/// Falls back to a two-parameter fit with `launch = 0` when the
/// three-parameter system is unidentifiable — which is always the case when
/// all samples come from a single collective kind.
///
/// # Errors
///
/// [`CalibrationError::SingleWorker`] for `world < 2`,
/// [`CalibrationError::TooFewSamples`] below 3 samples, and
/// [`CalibrationError::Degenerate`] when the payload sizes do not vary
/// enough to separate α from β.
pub fn fit_alpha_beta(
    world: usize,
    samples: &[CollectiveSample],
) -> Result<FittedAlphaBeta, CalibrationError> {
    if world < 2 {
        return Err(CalibrationError::SingleWorker);
    }
    if samples.len() < 3 {
        return Err(CalibrationError::TooFewSamples {
            have: samples.len(),
            need: 3,
        });
    }
    let both_kinds = samples.iter().any(|s| s.kind == CollectiveKind::AllReduce)
        && samples.iter().any(|s| s.kind == CollectiveKind::AllGather);
    let fitted = if both_kinds {
        fit_columns(world, samples, &[0, 1, 2]).or_else(|| fit_columns(world, samples, &[0, 1]))
    } else {
        fit_columns(world, samples, &[0, 1])
    };
    let [alpha, beta, launch] = fitted.ok_or(CalibrationError::Degenerate)?;
    Ok(FittedAlphaBeta {
        alpha: alpha.max(0.0),
        beta: beta.max(0.0),
        launch: launch.max(0.0),
        samples: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{InMemoryRecorder, Recorder};
    use std::sync::Arc;

    /// Ground-truth model time for a sample under known parameters.
    fn model_seconds(
        kind: CollectiveKind,
        world: usize,
        bytes: u64,
        alpha: f64,
        beta: f64,
        launch: f64,
    ) -> f64 {
        let [ca, cb, cl] = kind.design_row(world, bytes as f64);
        ca * alpha + cb * beta + cl * launch
    }

    fn synthetic_samples(
        world: usize,
        alpha: f64,
        beta: f64,
        launch: f64,
        noise: f64,
    ) -> Vec<CollectiveSample> {
        let mut samples = Vec::new();
        let sizes = [4 * 1024u64, 64 * 1024, 512 * 1024, 4 * 1024 * 1024];
        for (i, &bytes) in sizes.iter().enumerate() {
            for rep in 0..3 {
                for kind in [CollectiveKind::AllReduce, CollectiveKind::AllGather] {
                    let t = model_seconds(kind, world, bytes, alpha, beta, launch);
                    // Deterministic multiplicative jitter in ±noise.
                    let jitter = 1.0 + noise * ((i * 7 + rep * 3) as f64).sin();
                    samples.push(CollectiveSample {
                        kind,
                        bytes,
                        seconds: t * jitter,
                    });
                }
            }
        }
        samples
    }

    #[test]
    fn exact_samples_recover_parameters_exactly() {
        let (alpha, beta, launch) = (8e-6, 0.8e-9, 50e-6);
        let samples = synthetic_samples(4, alpha, beta, launch, 0.0);
        let fit = fit_alpha_beta(4, &samples).unwrap();
        assert!(
            (fit.alpha - alpha).abs() / alpha < 1e-6,
            "α = {}",
            fit.alpha
        );
        assert!((fit.beta - beta).abs() / beta < 1e-6, "β = {}", fit.beta);
        assert!(
            (fit.launch - launch).abs() / launch < 1e-6,
            "launch = {}",
            fit.launch
        );
        assert_eq!(fit.samples, samples.len());
    }

    #[test]
    fn noisy_samples_recover_parameters_within_10_percent() {
        // The acceptance property: synthetic spans from known α–β recover
        // those parameters within 10% under realistic measurement jitter,
        // across worker counts and network speeds.
        for world in [2usize, 4, 8] {
            for (alpha, beta, launch) in [
                (8e-6, 0.8e-9, 50e-6),  // 10 GbE tier
                (5e-6, 0.2e-9, 5e-6),   // loopback tier
                (10e-6, 8.0e-9, 50e-6), // 1 GbE tier
            ] {
                let samples = synthetic_samples(world, alpha, beta, launch, 0.02);
                let fit = fit_alpha_beta(world, &samples).unwrap();
                for (got, want, name) in [
                    (fit.alpha, alpha, "alpha"),
                    (fit.beta, beta, "beta"),
                    (fit.launch, launch, "launch"),
                ] {
                    assert!(
                        (got - want).abs() / want < 0.10,
                        "p={world}: {name} fitted {got} vs true {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_kind_falls_back_to_two_parameters() {
        let (alpha, beta) = (10e-6, 1e-9);
        let sizes = [8 * 1024u64, 128 * 1024, 2 * 1024 * 1024];
        let samples: Vec<CollectiveSample> = sizes
            .iter()
            .map(|&bytes| CollectiveSample {
                kind: CollectiveKind::AllReduce,
                bytes,
                seconds: model_seconds(CollectiveKind::AllReduce, 4, bytes, alpha, beta, 0.0),
            })
            .collect();
        let fit = fit_alpha_beta(4, &samples).unwrap();
        assert_eq!(fit.launch, 0.0);
        assert!((fit.alpha - alpha).abs() / alpha < 1e-6);
        assert!((fit.beta - beta).abs() / beta < 1e-6);
    }

    #[test]
    fn constant_payload_size_is_degenerate() {
        let samples: Vec<CollectiveSample> = (0..8)
            .map(|_| CollectiveSample {
                kind: CollectiveKind::AllReduce,
                bytes: 1024,
                seconds: 1e-3,
            })
            .collect();
        assert_eq!(
            fit_alpha_beta(4, &samples),
            Err(CalibrationError::Degenerate)
        );
    }

    #[test]
    fn error_cases_are_reported() {
        assert_eq!(fit_alpha_beta(1, &[]), Err(CalibrationError::SingleWorker));
        assert_eq!(
            fit_alpha_beta(4, &[]),
            Err(CalibrationError::TooFewSamples { have: 0, need: 3 })
        );
    }

    #[test]
    fn samples_extract_from_parallel_series() {
        let rec = Arc::new(InMemoryRecorder::new());
        rec.observe(crate::keys::COMM_ALL_REDUCE_US, 120.0);
        rec.observe(crate::keys::COMM_ALL_REDUCE_BYTES, 4096.0);
        rec.observe(crate::keys::COMM_ALL_GATHER_US, 80.0);
        rec.observe(crate::keys::COMM_ALL_GATHER_BYTES, 1024.0);
        let samples = samples_from_snapshot(&rec.snapshot());
        assert_eq!(
            samples,
            vec![
                CollectiveSample {
                    kind: CollectiveKind::AllReduce,
                    bytes: 4096,
                    seconds: 120.0 * 1e-6,
                },
                CollectiveSample {
                    kind: CollectiveKind::AllGather,
                    bytes: 1024,
                    seconds: 80.0 * 1e-6,
                },
            ]
        );
        // A snapshot without byte series yields no samples.
        let bare = Arc::new(InMemoryRecorder::new());
        bare.observe(crate::keys::COMM_ALL_REDUCE_US, 120.0);
        assert!(samples_from_snapshot(&bare.snapshot()).is_empty());
    }
}
