//! Telemetry substrate for the ACP-SGD reproduction.
//!
//! The paper's evaluation hinges on *measured* quantities — wire bytes per
//! collective, compression time vs. communication time, compression ratios,
//! error-feedback residual magnitudes — and this crate is where those
//! measurements live. Every layer of the stack records into one small
//! [`Recorder`] interface:
//!
//! * `acp-collectives`' `ThreadCommunicator` counts bytes sent/received and
//!   times each collective call;
//! * every `acp-core` aggregator records compression time, payload bytes,
//!   compression ratio and error-feedback residual norms per step;
//! * `acp-training`'s trainer turns recorder deltas into per-step
//!   [`StepReport`]s and per-epoch summaries.
//!
//! The default [`NoopRecorder`] makes all of this free when telemetry is
//! off: every method is an empty default that inlines to nothing. The
//! in-memory implementation ([`InMemoryRecorder`]) aggregates counters,
//! value series and timed spans behind a mutex, and can be exported two
//! ways:
//!
//! * [`chrome::ChromeTraceBuilder`] — `chrome://tracing` / Perfetto JSON,
//!   for both simulator event traces and real training runs;
//! * [`summary`] — aligned plain-text tables for terminals and logs.
//!
//! Recorded byte counts are designed to reconcile exactly with the analytic
//! α–β cost model in `acp-collectives::cost`: a ring all-reduce of an
//! `N`-byte buffer over `p` workers records `2(p−1)/p · N` bytes sent per
//! rank, and an all-gather records `(p−1) · N` — the volumes of Table II of
//! the paper. Integration tests in `acp-bench` assert this reconciliation.
//!
//! # Examples
//!
//! ```
//! use acp_telemetry::{keys, InMemoryRecorder, Recorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(InMemoryRecorder::new());
//! rec.add(keys::COMM_BYTES_SENT, 1024);
//! rec.observe(keys::COMPRESS_TIME_US, 42.0);
//! assert_eq!(rec.counter(keys::COMM_BYTES_SENT), 1024);
//! assert_eq!(rec.values(keys::COMPRESS_TIME_US), vec![42.0]);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod calibrate;
pub mod chrome;
pub mod keys;
pub mod recorder;
pub mod report;
pub mod summary;

pub use analysis::{busy_us, overlap_us};
pub use calibrate::{
    fit_alpha_beta, samples_from_snapshot, CalibrationError, CollectiveKind, CollectiveSample,
    FittedAlphaBeta,
};
pub use chrome::ChromeTraceBuilder;
pub use recorder::{
    noop, InMemoryRecorder, MetricsSnapshot, NoopRecorder, Recorder, RecorderCell, RecorderHandle,
    Span, SpanGuard, SpanRecord,
};
pub use report::{render_step_table, StepReport};
