//! Aligned plain-text summaries of a [`MetricsSnapshot`].

use crate::recorder::MetricsSnapshot;
use crate::report::render_aligned;

fn stats(values: &[f64]) -> (usize, f64, f64, f64) {
    let n = values.len();
    if n == 0 {
        return (0, 0.0, 0.0, 0.0);
    }
    let sum: f64 = values.iter().sum();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (n, sum / n as f64, min, max)
}

/// Renders every counter and value series in a snapshot as two aligned
/// tables (counters first, then series with count/mean/min/max).
///
/// ```
/// use acp_telemetry::{keys, InMemoryRecorder, Recorder};
///
/// let rec = InMemoryRecorder::new();
/// rec.add(keys::COMM_BYTES_SENT, 4096);
/// rec.observe(keys::COMM_ALL_REDUCE_US, 120.0);
/// let text = acp_telemetry::summary::render(&rec.snapshot());
/// assert!(text.contains("comm.bytes_sent"));
/// ```
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let mut rows = vec![vec!["counter".to_string(), "value".to_string()]];
        for (key, value) in &snapshot.counters {
            rows.push(vec![key.clone(), value.to_string()]);
        }
        out.push_str(&render_aligned(&rows));
    }
    if !snapshot.values.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let mut rows = vec![vec![
            "series".to_string(),
            "count".to_string(),
            "mean".to_string(),
            "min".to_string(),
            "max".to_string(),
        ]];
        for (key, values) in &snapshot.values {
            let (n, mean, min, max) = stats(values);
            rows.push(vec![
                key.clone(),
                n.to_string(),
                format!("{mean:.3}"),
                format!("{min:.3}"),
                format!("{max:.3}"),
            ]);
        }
        out.push_str(&render_aligned(&rows));
    }
    if !snapshot.spans.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("spans recorded: {}\n", snapshot.spans.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{InMemoryRecorder, Recorder};

    #[test]
    fn renders_counters_and_series() {
        let rec = InMemoryRecorder::new();
        rec.add("comm.bytes_sent", 100);
        rec.add("comm.calls", 2);
        rec.observe("comm.all_reduce_us", 10.0);
        rec.observe("comm.all_reduce_us", 30.0);
        let text = render(&rec.snapshot());
        assert!(text.contains("comm.bytes_sent"));
        assert!(text.contains("100"));
        assert!(text.contains("20.000")); // mean of 10 and 30
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert!(render(&MetricsSnapshot::default()).is_empty());
    }
}
