//! Post-hoc span analysis: how much communication hid behind compute.
//!
//! The trainer records one [`crate::keys::SPAN_BACKWARD`] span per step and
//! the non-blocking comm worker records one [`crate::keys::CAT_COMM`] span
//! per collective; intersecting the two timelines per track (worker rank)
//! measures the wait-free-backpropagation overlap the paper's Figs. 8–9
//! reason about. All functions take the flat span list of a
//! [`crate::MetricsSnapshot`].

use std::collections::BTreeMap;

use crate::recorder::SpanRecord;

/// Sorts intervals and merges any that touch or overlap.
fn merged(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (start, end) in intervals {
        match out.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => out.push((start, end)),
        }
    }
    out
}

/// Total length of the intersection of two merged, sorted interval sets.
fn intersection_us(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Microseconds during which any span of category `cat` runs concurrently
/// with any span named `name`, computed per track and summed — a rank's
/// communication only hides behind that same rank's compute, so tracks
/// never intersect each other.
pub fn overlap_us(spans: &[SpanRecord], cat: &str, name: &str) -> u64 {
    type Timelines = BTreeMap<u64, (Vec<(u64, u64)>, Vec<(u64, u64)>)>;
    let mut by_track: Timelines = BTreeMap::new();
    for s in spans {
        let entry = by_track.entry(s.track).or_default();
        if s.cat == cat {
            entry.0.push((s.start_us, s.end_us));
        }
        if s.name == name {
            entry.1.push((s.start_us, s.end_us));
        }
    }
    by_track
        .into_values()
        .map(|(a, b)| intersection_us(&merged(a), &merged(b)))
        .sum()
}

/// Total busy microseconds of spans with category `cat`: the per-track
/// union (concurrent spans on one track count once), summed across tracks.
pub fn busy_us(spans: &[SpanRecord], cat: &str) -> u64 {
    let mut by_track: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.cat == cat) {
        by_track
            .entry(s.track)
            .or_default()
            .push((s.start_us, s.end_us));
    }
    by_track
        .into_values()
        .flat_map(|iv| merged(iv).into_iter().map(|(s, e)| e - s))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, cat: &str, track: u64, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            track,
            start_us,
            end_us,
        }
    }

    #[test]
    fn overlap_measures_intersection_only() {
        let spans = vec![
            span("backward", "compute", 0, 0, 100),
            span("all_reduce", "comm", 0, 50, 150), // 50 µs inside backward
            span("all_reduce", "comm", 0, 200, 300), // fully outside
        ];
        assert_eq!(overlap_us(&spans, "comm", "backward"), 50);
    }

    #[test]
    fn overlap_is_per_track() {
        let spans = vec![
            span("backward", "compute", 0, 0, 100),
            span("all_reduce", "comm", 1, 0, 100), // other rank's comm
        ];
        assert_eq!(overlap_us(&spans, "comm", "backward"), 0);
    }

    #[test]
    fn overlapping_spans_count_once() {
        let spans = vec![
            span("backward", "compute", 0, 0, 100),
            span("all_reduce", "comm", 0, 10, 60),
            span("all_gather", "comm", 0, 40, 90), // overlaps the first op
        ];
        // Union of comm is [10, 90): 80 µs, all inside backward.
        assert_eq!(overlap_us(&spans, "comm", "backward"), 80);
        assert_eq!(busy_us(&spans, "comm"), 80);
    }

    #[test]
    fn busy_sums_across_tracks() {
        let spans = vec![span("a", "comm", 0, 0, 10), span("b", "comm", 1, 0, 30)];
        assert_eq!(busy_us(&spans, "comm"), 40);
        assert_eq!(busy_us(&spans, "compute"), 0);
    }

    #[test]
    fn disjoint_sets_have_zero_overlap() {
        let spans = vec![
            span("backward", "compute", 0, 0, 100),
            span("all_reduce", "comm", 0, 100, 200), // starts exactly at end
        ];
        assert_eq!(overlap_us(&spans, "comm", "backward"), 0);
    }
}
