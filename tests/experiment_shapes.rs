//! Integration: every regenerated table/figure must reproduce the *shape*
//! of the paper's result — who wins, by roughly what factor, where
//! crossovers fall. These are the acceptance tests of the reproduction;
//! EXPERIMENTS.md records the exact numbers.

use acp_bench::{statics, timing};

#[test]
fn table1_ratios_in_paper_bands() {
    let rows = acp_models::stats::table1();
    // Paper: 67x, 53x, 16x, 21x at the listed ranks.
    let expect = [(67.0, 0.5), (53.0, 0.5), (16.0, 0.4), (21.0, 0.4)];
    for (row, (paper, tol)) in rows.iter().zip(expect) {
        let rel = (row.power_ratio - paper).abs() / paper;
        assert!(
            rel < tol,
            "{}: power ratio {:.1} vs paper {paper} (rel {rel:.2})",
            row.model,
            row.power_ratio
        );
    }
}

#[test]
fn fig2_compression_methods_fail_on_resnets() {
    // The paper's motivating observation: Sign and Top-k are 1.7x/1.66x
    // slower than S-SGD on ResNet-50 despite 32x/1000x compression.
    let g = timing::fig2();
    let rn50 = 0;
    let ssgd = g.total(rn50, 0);
    let sign = g.total(rn50, 1);
    let topk = g.total(rn50, 2);
    assert!(
        sign / ssgd > 1.2 && sign / ssgd < 2.5,
        "sign ratio {}",
        sign / ssgd
    );
    assert!(
        topk / ssgd > 1.2 && topk / ssgd < 2.5,
        "topk ratio {}",
        topk / ssgd
    );
    // Power-SGD is the best compression method on every model where all run.
    for r in 0..g.rows.len() {
        let power = g.total(r, 3);
        for c in 1..3 {
            if let Some(other) = g.cell(r, c) {
                assert!(power <= other.total * 1.05, "row {r} col {c}");
            }
        }
    }
}

#[test]
fn fig3_breakdown_structure() {
    let g = timing::fig3();
    // S-SGD on BERT-Base: communication dominates (paper: 805ms total,
    // ~180ms compute).
    let bb = 1;
    let ssgd = g.cell(bb, 0).unwrap();
    assert!(
        ssgd.non_overlapped_comm > ssgd.ffbp,
        "comm should dominate on BERT-Base"
    );
    // S-SGD on ResNet-50 hides most communication.
    let rn = g.cell(0, 0).unwrap();
    assert!(rn.non_overlapped_comm < 0.3 * rn.total);
    // Top-k pays more compression than Sign-SGD.
    let sign = g.cell(bb, 1).unwrap();
    let topk = g.cell(bb, 2).unwrap();
    assert!(topk.compression > 2.0 * sign.compression);
    // ...to get much cheaper communication.
    assert!(topk.non_overlapped_comm < 0.5 * sign.non_overlapped_comm);
}

#[test]
fn table3_matches_paper_within_30_percent() {
    let paper_ms = [
        [266.0, 302.0, 286.0, 248.0],
        [500.0, 423.0, 404.0, 316.0],
        [805.0, 236.0, 292.0, 193.0],
        [2307.0, 392.0, 516.0, 245.0],
    ];
    let g = timing::table3();
    for (r, row) in paper_ms.iter().enumerate() {
        for (c, &paper) in row.iter().enumerate() {
            let ours = g.total(r, c) * 1e3;
            let rel = (ours - paper).abs() / paper;
            assert!(
                rel < 0.30,
                "{} / {}: {ours:.0}ms vs paper {paper}ms (rel {rel:.2})",
                g.rows[r],
                g.cols[c]
            );
        }
    }
}

#[test]
fn headline_speedups_in_band() {
    let (avg_s, max_s, avg_p, _) = timing::headline_speedups();
    // Paper: 4.06x avg, 9.42x max over S-SGD; 1.34x avg over Power-SGD.
    assert!((2.8..5.5).contains(&avg_s), "avg over S-SGD {avg_s}");
    assert!((6.0..12.0).contains(&max_s), "max over S-SGD {max_s}");
    assert!((1.05..1.8).contains(&avg_p), "avg over Power-SGD {avg_p}");
}

#[test]
fn fig9_wfbp_and_tf_effects() {
    let g = timing::fig9();
    // Rows: [RN152 x (S-SGD, Power-SGD, ACP-SGD), BL x (...)]; cols:
    // [Naive, WFBP, WFBP+TF].
    for (r, name) in g.rows.iter().enumerate() {
        let naive = g.total(r, 0);
        let wfbp = g.total(r, 1);
        let tf = g.total(r, 2);
        assert!(tf < wfbp, "{name}: TF must improve on WFBP");
        assert!(tf < naive, "{name}: full optimization must beat naive");
        if name.contains("Power-SGD") {
            assert!(
                wfbp > naive,
                "{name}: WFBP should hurt Power-SGD (paper: 13% slower)"
            );
        } else {
            assert!(wfbp < naive, "{name}: WFBP should help {name}");
        }
    }
    // TF speedup over WFBP is largest for Power-SGD (paper: 2.16x).
    let p_tf_speedup = g.total(1, 1) / g.total(1, 2);
    let s_tf_speedup = g.total(0, 1) / g.total(0, 2);
    assert!(
        p_tf_speedup > s_tf_speedup,
        "{p_tf_speedup} vs {s_tf_speedup}"
    );
}

#[test]
fn fig10_acp_robust_to_buffer_size() {
    let g = timing::fig10();
    // ACP-SGD rank 32 (row 1): default 25MB within 20% of the best.
    let acp32 = 1;
    let best = (0..g.cols.len())
        .map(|c| g.total(acp32, c))
        .fold(f64::INFINITY, f64::min);
    let at25 = g.total(
        acp32,
        timing::FIG10_BUFFER_MB
            .iter()
            .position(|&b| b == 25)
            .unwrap(),
    );
    assert!(at25 < 1.2 * best, "25MB {at25} vs best {best}");
    // ACP beats Power-SGD* at every buffer size and rank.
    for c in 0..g.cols.len() {
        assert!(g.total(1, c) < g.total(0, c), "rank 32, col {c}");
        assert!(g.total(3, c) < g.total(2, c), "rank 256, col {c}");
    }
}

#[test]
fn fig11_hyperparameter_trends() {
    let a = timing::fig11a();
    // ACP (last row) fastest at both batch sizes; larger batch = larger
    // iteration time for every method.
    let acp_row = a.rows.iter().position(|r| r == "ACP-SGD").unwrap();
    for c in 0..a.cols.len() {
        for r in 0..a.rows.len() {
            assert!(a.total(acp_row, c) <= a.total(r, c) * 1.001);
        }
    }
    for r in 0..a.rows.len() {
        assert!(
            a.total(r, 1) > a.total(r, 0),
            "batch 32 should take longer than 16"
        );
    }
    // The ACP/S-SGD gap shrinks as batch grows (paper: 2.4x at b16, 1.6x
    // at b32).
    let ssgd_row = a.rows.iter().position(|r| r == "S-SGD").unwrap();
    let gap16 = a.total(ssgd_row, 0) / a.total(acp_row, 0);
    let gap32 = a.total(ssgd_row, 1) / a.total(acp_row, 1);
    assert!(gap16 > gap32, "gap {gap16} at b16 vs {gap32} at b32");

    let b = timing::fig11b();
    // Rank sweep: times increase with rank; ACP's advantage grows.
    for r in 0..b.rows.len() {
        for c in 1..b.cols.len() {
            assert!(b.total(r, c) > b.total(r, c - 1), "rank should raise cost");
        }
    }
    let adv_r32 = b.total(0, 0) / b.total(1, 0);
    let adv_r256 = b.total(0, 3) / b.total(1, 3);
    assert!(
        adv_r256 > adv_r32,
        "ACP advantage {adv_r32} -> {adv_r256} should grow with rank"
    );
}

#[test]
fn fig12_scaling_is_flat_for_ring_methods() {
    let g = timing::fig12();
    for (r, name) in g.rows.iter().enumerate() {
        let growth = g.total(r, 3) / g.total(r, 0);
        // Paper: 10% / 24% / 8% average increase from 8 to 64 GPUs.
        assert!(growth < 1.4, "{name} grew {growth} from 8 to 64 GPUs");
    }
}

#[test]
fn fig13_bandwidth_crossover() {
    let g = timing::fig13();
    // ResNet-50 rows 0..3: on 1GbE compression wins big; speedups shrink
    // with bandwidth (paper: 7.1x on 1GbE for ACP over S-SGD).
    let rn_speedup_1gbe = g.total(0, 0) / g.total(2, 0);
    assert!(
        rn_speedup_1gbe > 3.0,
        "ResNet-50 1GbE speedup {rn_speedup_1gbe}"
    );
    // BERT-Base on 1GbE: paper reports 23.9x for ACP.
    let bb_speedup_1gbe = g.total(3, 0) / g.total(5, 0);
    assert!(
        bb_speedup_1gbe > 10.0,
        "BERT-Base 1GbE speedup {bb_speedup_1gbe}"
    );
    // ACP still ahead on 100Gb IB (paper: ~40% on BERT-Base).
    let bb_speedup_ib = g.total(3, 2) / g.total(5, 2);
    assert!(bb_speedup_ib > 1.1, "BERT-Base IB speedup {bb_speedup_ib}");
}

#[test]
fn fig5_compression_increases_small_tensor_share() {
    let t = statics::fig5();
    assert_eq!(t.len(), 7);
    // Direct check on the underlying data (paper: ~30% shift).
    use acp_models::cdf::SizeCdf;
    use acp_models::Model;
    let rn = Model::ResNet50.spec();
    let shift = SizeCdf::compressed(&rn, 4).fraction_below(10_000)
        - SizeCdf::uncompressed(&rn).fraction_below(10_000);
    assert!(shift > 0.15 && shift < 0.6, "ResNet-50 CDF shift {shift}");
}

#[test]
fn fig4_power_blocks_but_acp_overlaps() {
    use acp_models::Model;
    use acp_simulator::schedule::TaskKind;
    use acp_simulator::trace::trace;
    use acp_simulator::{ExperimentConfig, Strategy};
    let last_bwd = |entries: &[acp_simulator::trace::TraceEntry]| {
        entries
            .iter()
            .filter(|e| e.kind == TaskKind::Backward)
            .fold(0.0f64, |m, e| m.max(e.finish))
    };
    let comm_before = |entries: &[acp_simulator::trace::TraceEntry], t: f64| {
        entries
            .iter()
            .any(|e| e.kind == TaskKind::Communication && e.start < t)
    };
    let power = trace(&ExperimentConfig::paper_testbed(
        Model::ResNet152,
        Strategy::PowerSgd { rank: 4 },
    ))
    .unwrap();
    assert!(!comm_before(&power, last_bwd(&power) - 1e-9));
    let acp = trace(&ExperimentConfig::paper_testbed(
        Model::ResNet152,
        Strategy::AcpSgd { rank: 4 },
    ))
    .unwrap();
    assert!(comm_before(&acp, last_bwd(&acp)));
}
