//! Cross-crate topology properties: the two-level ring-of-rings must be
//! bit-exact with the flat ring, and elastic reform must re-derive an
//! identical schedule digest on every survivor.
//!
//! Both properties are load-bearing for the topology-aware API: the first
//! says grouping is purely a performance decision (never a numerics one),
//! the second says a reformed group agrees on *what it will do next*
//! before it does it — the digest is the collision-resistant summary of
//! the post-reform schedule that `reform()` cross-checks among survivors.

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::prelude::*;

use acp_collectives::{CommError, Communicator, ReduceOp, ThreadGroup, Topology, VerifyMode};

/// Integer-valued f32s in [-8, 8]: integer addition well inside the
/// mantissa is exact, so every reduction association yields the same bits
/// and bit-equality across schedules is a meaningful assertion.
fn integer_input(rank: usize, len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(7)
                .wrapping_add((rank as u64).wrapping_mul(13))
                .wrapping_add(seed.wrapping_mul(31));
            ((x % 17) as i64 - 8) as f32
        })
        .collect()
}

/// Every proper two-level layout with 4 <= world <= 16: `groups` divides
/// the world and both dimensions hold at least two ranks.
fn two_level_layouts() -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for world in 4..=16usize {
        for groups in 2..world {
            if world.is_multiple_of(groups) && world / groups >= 2 {
                out.push((world, groups));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance criterion: two-level all-reduce is bit-exact with the
    /// flat ring for worlds 4-16, including odd payload lengths that
    /// force uneven chunking at both ring levels.
    #[test]
    fn two_level_all_reduce_is_bit_exact_with_flat(
        layout_idx in 0usize..64,
        len in prop_oneof![1usize..64, Just(33usize), Just(257usize)],
        seed in 0u64..1000,
    ) {
        let layouts = two_level_layouts();
        let (world, groups) = layouts[layout_idx % layouts.len()];
        let flat = ThreadGroup::run(world, |mut comm| {
            let mut buf = integer_input(comm.rank_id().as_usize(), len, seed);
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        let topo = Topology::grouped(world, groups).unwrap();
        let hier =
            ThreadGroup::try_run_with_topology(topo, VerifyMode::default(), |mut comm| {
                let mut buf = integer_input(comm.rank_id().as_usize(), len, seed);
                comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                buf
            })
            .unwrap();
        for (rank, (f, h)) in flat.iter().zip(&hier).enumerate() {
            let fb: Vec<u32> = f.iter().map(|v| v.to_bits()).collect();
            let hb: Vec<u32> = h.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(
                &fb, &hb,
                "rank {} differs between flat and {}x{} two-level",
                rank, groups, world / groups
            );
        }
    }

    /// Reform never changes the schedule digest across the surviving
    /// ranks: whatever the world, the grouping, or which rank dies, every
    /// survivor re-derives the same digest after `reform()` plus one
    /// post-reform collective.
    #[test]
    fn reform_rederives_one_digest_on_every_survivor(
        layout_idx in 0usize..64,
        victim_seed in 0usize..64,
        len in 3usize..48,
        seed in 0u64..1000,
    ) {
        let layouts = two_level_layouts();
        let (world, groups) = layouts[layout_idx % layouts.len()];
        let victim = victim_seed % world;
        let topo = Topology::grouped(world, groups).unwrap();
        let digests: Mutex<BTreeMap<usize, u64>> = Mutex::new(BTreeMap::new());
        let result =
            ThreadGroup::try_run_with_topology(topo, VerifyMode::default(), |mut comm| {
                let phys = comm.rank_id().as_usize();
                if phys == victim {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("injected worker death");
                }
                let mut buf = integer_input(phys, len, seed);
                match comm.all_reduce(&mut buf, ReduceOp::Sum) {
                    Err(CommError::MembershipChanged { departed, .. }) => {
                        assert_eq!(departed, vec![victim]);
                    }
                    other => panic!("rank {phys} expected MembershipChanged, got {other:?}"),
                }
                let membership = comm.reform().expect("reform after departure");
                assert_eq!(membership.epoch(), 1);
                assert_eq!(membership.world_size(), world - 1);
                let mut buf = integer_input(phys, len, seed);
                comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
                let digest = comm.schedule().expect("schedule snapshot").digest;
                digests.lock().unwrap().insert(phys, digest);
            });
        prop_assert_eq!(result, Err(CommError::WorkerPanicked));
        let digests = digests.into_inner().unwrap();
        prop_assert_eq!(digests.len(), world - 1, "every survivor must finish");
        let mut iter = digests.values();
        let first = *iter.next().unwrap();
        for &d in iter {
            prop_assert_eq!(d, first, "survivors disagree on the post-reform digest");
        }
    }
}
