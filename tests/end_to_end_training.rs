//! End-to-end integration: real data-parallel training through every
//! aggregation algorithm, spanning acp-tensor → acp-collectives →
//! acp-compression → acp-core → acp-training.

use acp_core::{
    AcpSgdAggregator, AcpSgdConfig, DgcAggregator, DgcConfig, GTopkSgdAggregator,
    PowerSgdAggregator, PowerSgdConfig, SSgdAggregator, SignSgdAggregator, TopkSgdAggregator,
};
use acp_training::dataset::Dataset;
use acp_training::model::{mlp, resnet_tiny, small_cnn};
use acp_training::trainer::{train_distributed, TrainConfig};
use acp_training::LrSchedule;

fn rings_config(epochs: usize) -> (Dataset, TrainConfig) {
    let data = Dataset::rings(3, 16, 200, 77);
    let cfg = TrainConfig {
        epochs,
        batch_size: 32,
        schedule: LrSchedule::new(0.1, 2, vec![(epochs * 2 / 3, 0.1)]),
        momentum: 0.9,
        weight_decay: 0.0,
        seed: 7,
        ..TrainConfig::default()
    };
    (data, cfg)
}

#[test]
fn ssgd_solves_rings() {
    let (data, cfg) = rings_config(20);
    let h = train_distributed(
        4,
        &data,
        || mlp(&[16, 64, 32, 3], 3),
        SSgdAggregator::new,
        &cfg,
    );
    assert!(
        h.last().unwrap().test_accuracy > 0.9,
        "S-SGD accuracy {}",
        h.last().unwrap().test_accuracy
    );
}

#[test]
fn acp_sgd_matches_ssgd_accuracy() {
    // Fig. 6's claim on the substituted task. Uses a short uncompressed
    // warm start (PyTorch's `start_powerSGD_iter`, which the paper's
    // training runs also rely on): this task has only ~2 optimizer steps
    // per epoch, so without it the alternating rank-4 subspace never locks
    // on before the error-feedback residual swamps the live gradient.
    let (data, cfg) = rings_config(20);
    let model = || mlp(&[16, 64, 32, 3], 3);
    let ssgd = train_distributed(4, &data, model, SSgdAggregator::new, &cfg);
    let acp = train_distributed(
        4,
        &data,
        model,
        || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 4,
                warm_start_steps: 8,
                ..Default::default()
            })
        },
        &cfg,
    );
    let s = ssgd.last().unwrap().test_accuracy;
    let a = acp.last().unwrap().test_accuracy;
    assert!(a > s - 0.05, "ACP {a} vs S-SGD {s}");
}

#[test]
fn power_sgd_matches_ssgd_accuracy() {
    let (data, cfg) = rings_config(20);
    let model = || mlp(&[16, 64, 32, 3], 3);
    let ssgd = train_distributed(4, &data, model, SSgdAggregator::new, &cfg);
    let power = train_distributed(
        4,
        &data,
        model,
        || {
            PowerSgdAggregator::new(PowerSgdConfig {
                rank: 4,
                ..Default::default()
            })
        },
        &cfg,
    );
    let s = ssgd.last().unwrap().test_accuracy;
    let p = power.last().unwrap().test_accuracy;
    assert!(p > s - 0.05, "Power-SGD {p} vs S-SGD {s}");
}

#[test]
fn acp_without_error_feedback_is_worse() {
    // Fig. 7's claim: disabling EF hurts convergence. The effect shows at
    // a compression rank that is aggressive relative to the model (rank 2
    // on the 10-class convnet task).
    let data = Dataset::synthetic_images(10, 3, 8, 60, 1.5, 5678);
    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 32,
        schedule: LrSchedule::new(0.03, 3, vec![(8, 0.1)]),
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 7,
        ..TrainConfig::default()
    };
    let model = || small_cnn(3, 8, 10, 99);
    let with_ef = train_distributed(
        4,
        &data,
        model,
        || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 2,
                ..Default::default()
            })
        },
        &cfg,
    );
    let without_ef = train_distributed(
        4,
        &data,
        model,
        || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 2,
                error_feedback: false,
                ..Default::default()
            })
        },
        &cfg,
    );
    let a = with_ef.last().unwrap().test_accuracy;
    let b = without_ef.last().unwrap().test_accuracy;
    assert!(a > b + 0.1, "EF {a} should clearly beat no-EF {b}");
}

#[test]
fn acp_without_reuse_is_much_worse() {
    // The second Fig. 7 ablation: fresh random queries every step destroy
    // convergence. Both arms share a short uncompressed warm start (see
    // acp_sgd_matches_ssgd_accuracy) so the comparison isolates query
    // reuse rather than cold-start effects: with it, reuse trains to high
    // accuracy while fresh queries stall near chance.
    let (data, cfg) = rings_config(20);
    let model = || mlp(&[16, 64, 32, 3], 3);
    let with_reuse = train_distributed(
        4,
        &data,
        model,
        || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 2,
                warm_start_steps: 6,
                ..Default::default()
            })
        },
        &cfg,
    );
    let without_reuse = train_distributed(
        4,
        &data,
        model,
        || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 2,
                reuse: false,
                warm_start_steps: 6,
                ..Default::default()
            })
        },
        &cfg,
    );
    let a = with_reuse.last().unwrap().test_accuracy;
    let b = without_reuse.last().unwrap().test_accuracy;
    assert!(a > b + 0.2, "reuse {a} should clearly beat no-reuse {b}");
}

#[test]
fn topk_with_error_feedback_learns() {
    let (data, cfg) = rings_config(20);
    let h = train_distributed(
        4,
        &data,
        || mlp(&[16, 64, 32, 3], 3),
        || TopkSgdAggregator::with_error_feedback(0.05),
        &cfg,
    );
    assert!(
        h.last().unwrap().test_accuracy > 0.8,
        "Top-k accuracy {}",
        h.last().unwrap().test_accuracy
    );
}

#[test]
fn signsgd_with_error_feedback_learns() {
    // Sign-SGD needs a smaller LR (the update magnitude is the mean |g|).
    let data = Dataset::gaussian_clusters(4, 8, 80, 0.3, 31);
    let cfg = TrainConfig {
        epochs: 15,
        batch_size: 32,
        schedule: LrSchedule::new(0.02, 0, Vec::new()),
        momentum: 0.9,
        weight_decay: 0.0,
        seed: 7,
        ..TrainConfig::default()
    };
    let h = train_distributed(
        4,
        &data,
        || mlp(&[8, 32, 4], 3),
        SignSgdAggregator::with_error_feedback,
        &cfg,
    );
    assert!(
        h.last().unwrap().test_accuracy > 0.85,
        "Sign-SGD accuracy {}",
        h.last().unwrap().test_accuracy
    );
}

#[test]
fn cnn_trains_with_acp_sgd() {
    // The convnet path exercises 4-D weight reshape inside the low-rank
    // aggregator.
    let data = Dataset::synthetic_images(6, 3, 8, 40, 1.0, 55);
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 24,
        schedule: LrSchedule::new(0.05, 0, Vec::new()),
        momentum: 0.9,
        weight_decay: 0.0,
        seed: 9,
        ..TrainConfig::default()
    };
    let h = train_distributed(
        2,
        &data,
        || small_cnn(3, 8, 6, 21),
        || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 4,
                ..Default::default()
            })
        },
        &cfg,
    );
    let acc = h.last().unwrap().test_accuracy;
    assert!(acc > 0.8, "CNN + ACP-SGD accuracy {acc}");
}

#[test]
fn gtopk_learns_like_topk() {
    // Extension: the O(k log p) global-top-k collective converges like
    // plain Top-k with EF at matched density.
    let (data, cfg) = rings_config(20);
    let model = || mlp(&[16, 64, 32, 3], 3);
    let topk = train_distributed(
        4,
        &data,
        model,
        || TopkSgdAggregator::with_error_feedback(0.05),
        &cfg,
    );
    let gtopk = train_distributed(4, &data, model, || GTopkSgdAggregator::new(0.05), &cfg);
    let t = topk.last().unwrap().test_accuracy;
    let g = gtopk.last().unwrap().test_accuracy;
    assert!(g > 0.8, "gTop-k accuracy {g}");
    assert!(g > t - 0.1, "gTop-k {g} vs Top-k {t}");
}

#[test]
fn dgc_learns_with_aggressive_sparsity() {
    // Extension: DGC's momentum correction + accumulation trains at 2%
    // density where plain Top-k without EF struggles. Pair with momentum 0
    // in the local optimizer (DGC carries its own momentum).
    let data = Dataset::gaussian_clusters(4, 8, 80, 0.3, 31);
    let cfg = TrainConfig {
        epochs: 15,
        batch_size: 32,
        schedule: LrSchedule::new(0.05, 2, Vec::new()),
        momentum: 0.0,
        weight_decay: 0.0,
        seed: 7,
        ..TrainConfig::default()
    };
    let h = train_distributed(
        4,
        &data,
        || mlp(&[8, 32, 4], 3),
        || {
            DgcAggregator::new(DgcConfig {
                density: 0.02,
                momentum: 0.9,
                clip_norm: Some(5.0),
                ..Default::default()
            })
        },
        &cfg,
    );
    let acc = h.last().unwrap().test_accuracy;
    assert!(acc > 0.85, "DGC accuracy {acc}");
}

#[test]
fn resnet_tiny_trains_with_acp_and_warm_start() {
    // Residual blocks + batch norm + ACP-SGD with a short warm start: the
    // structurally-faithful ResNet stand-in trains end to end.
    let data = Dataset::synthetic_images(4, 3, 8, 40, 1.0, 91);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 20,
        schedule: LrSchedule::new(0.05, 2, vec![(6, 0.1)]),
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 3,
        ..TrainConfig::default()
    };
    let h = train_distributed(
        2,
        &data,
        || resnet_tiny(3, 8, 4, 17),
        || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 2,
                warm_start_steps: 4,
                ..Default::default()
            })
        },
        &cfg,
    );
    let acc = h.last().unwrap().test_accuracy;
    assert!(acc > 0.7, "resnet_tiny + ACP accuracy {acc}");
}

#[test]
fn worker_count_does_not_change_global_batch_semantics() {
    // 1 worker with the full data vs 4 workers sharding it: both must
    // learn; exact equality is not expected (different batch partitions),
    // but accuracy should be comparable.
    let (data, cfg) = rings_config(15);
    let model = || mlp(&[16, 64, 32, 3], 3);
    let one = train_distributed(1, &data, model, SSgdAggregator::new, &cfg);
    let four = train_distributed(4, &data, model, SSgdAggregator::new, &cfg);
    let a = one.last().unwrap().test_accuracy;
    let b = four.last().unwrap().test_accuracy;
    assert!((a - b).abs() < 0.15, "1-worker {a} vs 4-worker {b}");
}
