//! Overlap accounting end to end: wait-free backpropagation measurably
//! hides communication behind backward compute on the real thread backend
//! (via the per-rank span timelines), the `--no-overlap` path hides none,
//! and the measurement agrees qualitatively with the discrete-event
//! simulator's Naive vs WFBP+TF optimization levels (Fig. 9).

use acp_core::{AcpSgdAggregator, AcpSgdConfig};
use acp_models::Model;
use acp_simulator::{simulate, ExperimentConfig, IterationReport, OptLevel, Strategy};
use acp_telemetry::{analysis, keys};
use acp_training::dataset::Dataset;
use acp_training::model::mlp;
use acp_training::trainer::{train_distributed_instrumented, TrainConfig, TrainReport};

/// A real 4-worker ACP-SGD training run with small fusion buckets, so the
/// output-side buckets dispatch while input-side layers still compute.
fn acp_run(overlap: bool) -> TrainReport {
    let data = Dataset::gaussian_clusters(4, 32, 60, 0.3, 41);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        overlap,
        ..TrainConfig::default()
    };
    train_distributed_instrumented(
        4,
        &data,
        || mlp(&[32, 256, 256, 128, 4], 11),
        || {
            AcpSgdAggregator::new(AcpSgdConfig {
                rank: 4,
                buffer_bytes: 16 * 1024, // several buckets per step
                ..Default::default()
            })
        },
        &cfg,
    )
}

/// Microseconds of collective spans intersecting backward spans, summed
/// over all ranks.
fn measured_overlap_us(report: &TrainReport) -> u64 {
    report
        .ranks
        .iter()
        .map(|r| analysis::overlap_us(&r.snapshot.spans, keys::CAT_COMM, keys::SPAN_BACKWARD))
        .sum()
}

/// Total collective busy time across ranks.
fn comm_busy_us(report: &TrainReport) -> u64 {
    report
        .ranks
        .iter()
        .map(|r| analysis::busy_us(&r.snapshot.spans, keys::CAT_COMM))
        .sum()
}

#[test]
fn wfbp_overlaps_communication_with_backward() {
    let report = acp_run(true);
    let busy = comm_busy_us(&report);
    let overlap = measured_overlap_us(&report);
    assert!(busy > 0, "instrumented run records collective spans");
    assert!(
        overlap > 0,
        "WFBP run shows no comm/backward overlap ({busy} µs comm busy)"
    );
}

#[test]
fn blocking_runs_have_zero_comm_backward_overlap() {
    // Without WFBP every collective dispatches after backward returns, so
    // the timelines cannot intersect — structurally zero, not just small.
    let report = acp_run(false);
    assert!(comm_busy_us(&report) > 0, "communication still happens");
    assert_eq!(measured_overlap_us(&report), 0);
}

#[test]
fn measured_overlap_reconciles_with_simulator() {
    // Measured on the real thread backend: overlap on vs off.
    let hidden_on = measured_overlap_us(&acp_run(true));
    let hidden_off = measured_overlap_us(&acp_run(false));

    // Simulated at paper scale: the same strategy, Naive vs WFBP+TF.
    let strategy = Strategy::AcpSgd { rank: 4 };
    let sim = |opt: OptLevel| {
        let mut cfg = ExperimentConfig::paper_testbed(Model::ResNet18Cifar, strategy);
        cfg.opt = opt;
        simulate(&cfg).expect("ResNet-18 fits the paper testbed")
    };
    let naive = sim(OptLevel::Naive);
    let wfbptf = sim(OptLevel::WfbpTf);
    let sim_hidden = |r: &IterationReport| (r.comm_busy - r.non_overlapped_comm).max(0.0);

    // Qualitative agreement on Fig. 9's claim. Measured: overlap hides a
    // nonzero slice of communication behind backward, blocking hides none.
    assert!(hidden_on > hidden_off, "{hidden_on} vs {hidden_off}");
    assert_eq!(hidden_off, 0);
    // Simulated: WFBP+TF also hides a nonzero comm slice, its *exposed*
    // communication is a fraction of Naive's, and iterations get faster.
    assert!(sim_hidden(&wfbptf) > 0.0);
    assert!(
        wfbptf.non_overlapped_comm < naive.non_overlapped_comm / 2.0,
        "exposed comm: WFBP+TF {} vs Naive {}",
        wfbptf.non_overlapped_comm,
        naive.non_overlapped_comm
    );
    assert!(wfbptf.total < naive.total);
}
