//! Property-based integration tests spanning crates: collectives vs naive
//! reductions, aggregation invariants under random worlds, compression
//! payload accounting, and simulator monotonicity.

use proptest::prelude::*;

use acp_collectives::{Communicator, NetworkTier, ReduceOp, ThreadGroup};
use acp_compression::{Compressor, Payload, RandomK, SignSgd, TopK};
use acp_core::{AcpSgdAggregator, AcpSgdConfig, DistributedOptimizer, GradViewMut, SSgdAggregator};
use acp_models::Model;
use acp_simulator::{simulate, ExperimentConfig, HardwareProfile, Strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ring all-reduce equals a naive sum for any world size and data.
    #[test]
    fn all_reduce_matches_naive_sum(
        world in 1usize..6,
        len in 1usize..200,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|_| (0..len).map(|_| rng.gen_range(-5.0f32..5.0)).collect())
            .collect();
        let mut expected = vec![0.0f32; len];
        for input in &inputs {
            for (e, v) in expected.iter_mut().zip(input) {
                *e += v;
            }
        }
        let results = ThreadGroup::run(world, |mut comm| {
            let mut buf = inputs[comm.rank_id().as_usize()].clone();
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        for r in results {
            for (a, b) in r.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
            }
        }
    }

    /// S-SGD aggregation is exact averaging for any fusion buffer size.
    #[test]
    fn ssgd_aggregation_is_exact_average(
        world in 1usize..5,
        len in 1usize..64,
        buffer in 0usize..256,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|_| (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let mean: Vec<f32> = (0..len)
            .map(|i| inputs.iter().map(|x| x[i]).sum::<f32>() / world as f32)
            .collect();
        let results = ThreadGroup::run(world, |mut comm| {
            let mut opt = SSgdAggregator::with_buffer_bytes(buffer);
            let mut g = inputs[comm.rank_id().as_usize()].clone();
            let dims = [len];
            let mut views = [GradViewMut { dims: &dims, grad: &mut g }];
            opt.aggregate(&mut views, &mut comm).unwrap();
            g
        });
        for r in results {
            for (a, b) in r.iter().zip(&mean) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }

    /// ACP-SGD aggregation leaves every rank with identical gradients
    /// whatever the tensor shapes.
    #[test]
    fn acp_aggregation_is_rank_consistent(
        world in 2usize..5,
        rows in 2usize..8,
        cols in 2usize..8,
        rank in 1usize..4,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|_| (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let results = ThreadGroup::run(world, |mut comm| {
            let mut opt = AcpSgdAggregator::new(AcpSgdConfig { rank, ..Default::default() });
            let mut g = inputs[comm.rank_id().as_usize()].clone();
            let dims = [rows, cols];
            let mut views = [GradViewMut { dims: &dims, grad: &mut g }];
            opt.aggregate(&mut views, &mut comm).unwrap();
            g
        });
        for r in &results[1..] {
            for (a, b) in r.iter().zip(&results[0]) {
                prop_assert!((a - b).abs() < 1e-4, "ranks disagree: {a} vs {b}");
            }
        }
    }

    /// Payload wire accounting: every compressor's payload is
    /// self-consistent and never larger than ~dense size + headers.
    #[test]
    fn payload_accounting_is_consistent(len in 1usize..512, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let grad: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let k = (len / 10).max(1);
        let mut compressors: Vec<Box<dyn Compressor>> = vec![
            Box::new(SignSgd::plain()),
            Box::new(TopK::new(k)),
            Box::new(RandomK::new(k, seed)),
        ];
        for c in &mut compressors {
            let p = c.compress(&grad);
            prop_assert_eq!(p.dense_len(), len);
            prop_assert!(p.wire_bytes() <= 4 * len + 16, "{} payload too big", c.name());
            let mut out = vec![0.0f32; len];
            c.decompress(&p, &mut out);
            prop_assert!(out.iter().all(|v| v.is_finite()));
        }
    }

    /// Sparse payloads only ever contain coordinates of the dense range.
    #[test]
    fn sparse_indices_in_range(len in 1usize..300, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let grad: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut c = TopK::new((len / 7).max(1));
        if let Payload::Sparse { indices, values, len: n } = c.compress(&grad) {
            prop_assert_eq!(n, len);
            prop_assert_eq!(indices.len(), values.len());
            for &i in &indices {
                prop_assert!((i as usize) < len);
            }
        } else {
            prop_assert!(false, "TopK must produce sparse payloads");
        }
    }

    /// Simulator sanity: more bandwidth never makes an iteration slower,
    /// more workers never make ring methods faster.
    #[test]
    fn simulator_monotone_in_bandwidth(model_idx in 0usize..4) {
        let model = Model::evaluation_models()[model_idx];
        let strategy = Strategy::AcpSgd { rank: model.paper_rank() };
        let mut prev = f64::INFINITY;
        for tier in [NetworkTier::OneGbE, NetworkTier::TenGbE, NetworkTier::HundredGbIb] {
            let mut cfg = ExperimentConfig::paper_testbed(model, strategy);
            cfg.hardware = HardwareProfile::with_cluster(32, tier);
            let t = simulate(&cfg).unwrap().total;
            prop_assert!(t <= prev * 1.0001, "{tier}: {t} > {prev}");
            prev = t;
        }
    }

    /// Simulator sanity: batch size scales compute monotonically.
    #[test]
    fn simulator_monotone_in_batch(batch in 1usize..64) {
        let cfg = |b: usize| {
            let mut c = ExperimentConfig::paper_testbed(
                Model::ResNet50,
                Strategy::SSgd,
            );
            c.batch_size = b;
            c
        };
        let t1 = simulate(&cfg(batch)).unwrap();
        let t2 = simulate(&cfg(batch + 8)).unwrap();
        prop_assert!(t2.ffbp > t1.ffbp);
        prop_assert!(t2.total >= t1.total * 0.99);
    }
}

/// Deterministic (non-proptest) cross-crate check: Sign-SGD majority vote
/// through the aggregator equals the compression-level reference.
#[test]
fn sign_aggregator_matches_majority_reference() {
    use acp_core::SignSgdAggregator;
    let grads = [
        vec![1.0f32, -2.0, 3.0],
        vec![2.0f32, -1.0, -3.0],
        vec![-1.0f32, -2.0, 3.0],
    ];
    let results = ThreadGroup::run(3, |mut comm| {
        let mut opt = SignSgdAggregator::new();
        let mut g = grads[comm.rank_id().as_usize()].clone();
        let dims = [3usize];
        let mut views = [GradViewMut {
            dims: &dims,
            grad: &mut g,
        }];
        opt.aggregate(&mut views, &mut comm).unwrap();
        g
    });
    // Majority signs: +, -, +; scale = mean of per-rank mean |g| = 2.0.
    for r in results {
        assert_eq!(r, vec![2.0, -2.0, 2.0]);
    }
}
