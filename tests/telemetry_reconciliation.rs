//! Byte-conservation tests: telemetry-recorded wire bytes must reconcile
//! exactly with the analytic α–β cost model (`acp_collectives::cost`,
//! Table II of the paper), and per-step recorded payload bytes must equal
//! the compressor's own `Payload::wire_bytes()`.

use std::sync::Arc;

use acp_collectives::{
    ClusterCost, Communicator, LocalCommunicator, NetworkTier, ReduceOp, ThreadGroup,
};
use acp_compression::{Compressor, SignSgd, TopK};
use acp_core::{
    build_optimizer, AcpSgdConfig, Aggregator, GradViewMut, SignSgdConfig, TopkSgdConfig,
};
use acp_telemetry::{keys, InMemoryRecorder};

/// Ring all-reduce: every rank's recorded bytes equal `2(p−1)/p · N` for
/// several world sizes (N chosen divisible by every p so chunks are even).
#[test]
fn recorded_ring_all_reduce_bytes_match_cost_model() {
    let n = 840usize; // divisible by 2, 3, 4, 6, 8
    for p in [2usize, 3, 4, 6, 8] {
        let cost = ClusterCost::new(p, NetworkTier::TenGbE);
        let expected = cost.all_reduce_volume(4 * n);
        let results = ThreadGroup::run(p, |mut comm| {
            let rec = Arc::new(InMemoryRecorder::new());
            comm.set_recorder(rec.clone());
            let mut buf = vec![comm.rank_id().as_usize() as f32; n];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            (rec.counter(keys::COMM_BYTES_SENT), comm.bytes_sent())
        });
        for (recorded, counted) in results {
            assert_eq!(recorded as f64, expected, "world size {p}");
            assert_eq!(recorded, counted, "recorder and bytes_sent disagree");
        }
    }
}

/// The same Table II identity must hold over real sockets: ring all-reduce
/// on the TCP backend records exactly `2(p−1)/p · N` payload bytes per
/// rank (the loopback tier models the transport, but the volume term is
/// transport-independent), and the recorder agrees with the
/// communicator's own counter.
#[test]
fn recorded_tcp_all_reduce_bytes_match_cost_model() {
    let n = 840usize; // divisible by 2, 3, 4, 6, 8
    for p in [2usize, 3, 4, 8] {
        let cost = ClusterCost::new(p, NetworkTier::Loopback);
        let expected = cost.all_reduce_volume(4 * n);
        let results = acp_net::run_local(p, |mut comm| {
            let rec = Arc::new(InMemoryRecorder::new());
            comm.set_recorder(rec.clone());
            let mut buf = vec![comm.rank_id().as_usize() as f32; n];
            comm.all_reduce(&mut buf, ReduceOp::Sum).unwrap();
            (rec.counter(keys::COMM_BYTES_SENT), comm.bytes_sent())
        });
        for (recorded, counted) in results {
            assert_eq!(recorded as f64, expected, "world size {p}");
            assert_eq!(recorded, counted, "recorder and bytes_sent disagree");
        }
    }
}

/// All-gather: every rank's recorded bytes equal `(p−1) · N`.
#[test]
fn recorded_all_gather_bytes_match_cost_model() {
    let k = 64usize;
    for p in [2usize, 3, 4, 5] {
        let cost = ClusterCost::new(p, NetworkTier::TenGbE);
        let expected = cost.all_gather_volume(4 * k);
        let results = ThreadGroup::run(p, |mut comm| {
            let rec = Arc::new(InMemoryRecorder::new());
            comm.set_recorder(rec.clone());
            comm.all_gather_f32(&vec![0.5f32; k]).unwrap();
            rec.counter(keys::COMM_BYTES_SENT)
        });
        for recorded in results {
            assert_eq!(recorded as f64, expected, "world size {p}");
        }
    }
}

/// Aggregator-recorded payload bytes equal the compressor's own
/// `Payload::wire_bytes()` for the sparse Top-k representation.
#[test]
fn topk_recorded_payload_matches_wire_bytes() {
    let n = 128usize;
    let grad: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
    let density = 0.1;
    let rec = Arc::new(InMemoryRecorder::new());
    let mut opt = build_optimizer(&Aggregator::Topk(
        TopkSgdConfig::default().with_density(density),
    ));
    opt.set_recorder(rec.clone());
    let mut g = grad.clone();
    let dims = [n];
    let mut views = [GradViewMut {
        dims: &dims,
        grad: &mut g,
    }];
    opt.aggregate(&mut views, &mut LocalCommunicator::new())
        .unwrap();
    // Independently compress the same gradient and compare wire sizes.
    let k = ((density * n as f64).ceil() as usize).clamp(1, n);
    let expected = TopK::new(k).compress(&grad).wire_bytes() as u64;
    assert_eq!(rec.counter(keys::COMPRESS_PAYLOAD_BYTES), expected);
    assert_eq!(rec.counter(keys::COMPRESS_DENSE_BYTES), 4 * n as u64);
}

/// Same reconciliation for the bit-packed Sign-SGD representation.
#[test]
fn signsgd_recorded_payload_matches_wire_bytes() {
    let n = 100usize;
    let grad: Vec<f32> = (0..n).map(|i| (i as f32 - 50.0) * 0.1).collect();
    let rec = Arc::new(InMemoryRecorder::new());
    let mut opt = build_optimizer(&Aggregator::SignSgd(SignSgdConfig::default()));
    opt.set_recorder(rec.clone());
    let mut g = grad.clone();
    let dims = [n];
    let mut views = [GradViewMut {
        dims: &dims,
        grad: &mut g,
    }];
    opt.aggregate(&mut views, &mut LocalCommunicator::new())
        .unwrap();
    let expected = SignSgd::scaled().compress(&grad).wire_bytes() as u64;
    assert_eq!(rec.counter(keys::COMPRESS_PAYLOAD_BYTES), expected);
}

/// End-to-end reconciliation for ACP-SGD over 4 workers: the aggregator
/// performs exactly one fused ring all-reduce of its recorded payload, so
/// each rank's wire bytes must equal `2(p−1)/p ·` payload bytes — the
/// single-collective structure the paper's cost analysis rests on.
#[test]
fn acp_sgd_wire_bytes_reconcile_with_payload() {
    let p = 4usize;
    let steps = 3u64;
    let cost = ClusterCost::new(p, NetworkTier::TenGbE);
    let results = ThreadGroup::run(p, |mut comm| {
        let rec = Arc::new(InMemoryRecorder::new());
        comm.set_recorder(rec.clone());
        let spec = Aggregator::AcpSgd(AcpSgdConfig::default().with_rank(4));
        let mut opt = build_optimizer(&spec);
        opt.set_recorder(rec.clone());
        // One 16x16 matrix: a rank-4 factor is 64 floats, divisible by p.
        let dims = [16usize, 16];
        for step in 0..steps {
            let mut g: Vec<f32> = (0..256)
                .map(|i| ((i as u64 + step) as f32 * 0.11).cos())
                .collect();
            let mut views = [GradViewMut {
                dims: &dims,
                grad: &mut g,
            }];
            opt.aggregate(&mut views, &mut comm).unwrap();
        }
        (
            rec.counter(keys::COMM_BYTES_SENT),
            rec.counter(keys::COMPRESS_PAYLOAD_BYTES),
            rec.counter(keys::COMM_CALLS),
        )
    });
    for (wire, payload, calls) in results {
        assert_eq!(
            calls, steps,
            "ACP-SGD must issue exactly one collective per step"
        );
        // Payload is the same every step; the cost model maps each step's
        // payload to its ring volume, so totals reconcile too.
        assert_eq!(wire as f64, cost.all_reduce_volume(payload as usize));
        assert_eq!(
            payload,
            steps * 4 * 64,
            "rank-4 factor of a 16x16 matrix, f32"
        );
    }
}
