//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's benches compiling and runnable without the real
//! statistics engine: each benchmark runs its closure `sample_size` times,
//! reports mean wall-clock time per iteration, and derives throughput when a
//! [`Throughput`] was declared. No warm-up calibration, outlier analysis, or
//! HTML reports.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Benchmark identifier: a function name plus an optional parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in `BenchmarkId::new("powersgd", rank)`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id used when the group name already names the function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declares how much work one iteration performs, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Runs the measured closure; handed to bench functions by the group.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named set of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed_ns: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed_ns: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (kept for API parity; reporting happens per-bench).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter_ns = b.elapsed_ns as f64 / b.iters.max(1) as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => {
                format!(
                    ", {:.2} GiB/s",
                    n as f64 / per_iter_ns * 1e9 / (1u64 << 30) as f64
                )
            }
            Throughput::Elements(n) => {
                format!(", {:.2} Melem/s", n as f64 / per_iter_ns * 1e9 / 1e6)
            }
        });
        println!(
            "{}/{}: {:.3} ms/iter ({} iters{})",
            self.name,
            id.label,
            per_iter_ns / 1e6,
            b.iters,
            rate.unwrap_or_default(),
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles bench functions into a single callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1000));
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
