//! Test-runner plumbing: configuration, per-case error signalling, and the
//! deterministic RNG behind every strategy.

/// Controls how many cases each property test runs.
///
/// Only the fields this workspace touches are modelled; everything else from
/// real proptest (shrink limits, persistence, forking) is absent.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim defaults lower to keep
        // offline test runs fast. Tests that care set an explicit count.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assume!` precondition failed; the runner draws a new sample.
    Reject,
    /// A `prop_assert!`-style check failed; the runner fails the test.
    Fail(String),
}

/// Deterministic SplitMix64 generator seeded from the test's name, so every
/// run of a given test sees the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
