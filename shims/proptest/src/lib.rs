//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`, range and
//! tuple strategies, [`strategy::Just`], [`collection::vec`], the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]/
//! [`prop_oneof!`] macros, and [`test_runner::ProptestConfig`] — on top of a
//! deterministic SplitMix64 sampler seeded from the test name.
//!
//! Differences from the real crate: no shrinking (a failing case reports the
//! sampled inputs but is not minimized), no persistence files, and rejection
//! via `prop_assume!` is bounded by a fixed retry budget per test.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec` only).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as the size specifier of [`vec()`](fn@vec): a fixed length or a
    /// (half-open or inclusive) range of lengths.
    pub trait SampleLen {
        /// Draws a length from this specifier.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SampleLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SampleLen for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(!self.is_empty(), "empty length range for collection::vec");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SampleLen for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(!self.is_empty(), "empty length range for collection::vec");
            let span = *self.end() - *self.start() + 1;
            *self.start() + (rng.next_u64() as usize) % span
        }
    }

    /// Strategy producing `Vec<S::Value>` with lengths drawn from `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements are drawn from `element` and whose
    /// length is drawn from `len`.
    pub fn vec<S: Strategy, L: SampleLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SampleLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times and runs the
/// body against each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut completed: u32 = 0;
                let mut attempts: u32 = 0;
                while completed < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(64).max(1024) {
                        panic!(
                            "proptest {}: too many rejected cases ({} of {} completed)",
                            stringify!($name), completed, config.cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => completed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the runner can report which sampled inputs broke it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} ({}) at {}:{}", stringify!($cond), format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} == {}: {:?} != {:?} at {}:{}",
                stringify!($lhs), stringify!($rhs), lhs, rhs, file!(), line!(),
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} == {} ({}): {:?} != {:?} at {}:{}",
                stringify!($lhs), stringify!($rhs), format!($($fmt)+), lhs, rhs, file!(), line!(),
            )));
        }
    }};
}

/// Rejects the current case (the runner draws a fresh sample) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (5usize..17).sample(&mut rng);
            assert!((5..17).contains(&x));
            let y = (1usize..=8).sample(&mut rng);
            assert!((1..=8).contains(&y));
            let f = (-2.0f32..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn map_flat_map_compose() {
        let mut rng = TestRng::from_name("map_flat_map_compose");
        let strat = (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| {
            crate::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
        });
        for _ in 0..200 {
            let (r, c, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), r * c);
        }
    }

    #[test]
    fn oneof_covers_all_branches() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_name("oneof_covers_all_branches");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The runner itself: assume filters, asserts pass, args bind.
        #[test]
        fn runner_smoke(a in 0usize..100, b in 0usize..100) {
            prop_assume!(a != b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(lo < hi, "{lo} vs {hi}");
            prop_assert_eq!(lo.max(hi), hi);
        }
    }
}
