//! Value-generation strategies: ranges, tuples, `Just`, map/flat-map
//! combinators, boxing, and unions.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike real proptest there is no value tree or shrinking: `sample` draws
/// one concrete value per call.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into `f` to build a dependent strategy,
    /// then samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice among several strategies with the same value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() as usize) % self.options.len();
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty integer range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty float range strategy");
                *self.start() + (rng.unit_f64() as $t) * (*self.end() - *self.start())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (S1, S2),
    (S1, S2, S3),
    (S1, S2, S3, S4),
    (S1, S2, S3, S4, S5),
    (S1, S2, S3, S4, S5, S6)
);
