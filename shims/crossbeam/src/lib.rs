//! Offline stand-in for `crossbeam`.
//!
//! The collectives crate only uses `crossbeam::channel`'s unbounded MPSC
//! channels; `std::sync::mpsc` provides the identical surface (cloneable
//! senders, `recv_timeout`, the same error enums), so this shim simply
//! re-exports it under crossbeam's module layout.

pub mod channel {
    //! Unbounded channels with timeouts, API-compatible with
    //! `crossbeam::channel` for the operations this workspace uses.

    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7usize).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
    }

    #[test]
    fn timeout_and_disconnect_are_distinct() {
        let (tx, rx) = unbounded::<usize>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for i in 0..4usize {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
