//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`]: an actual 8-round ChaCha block generator
//! implementing the shim `rand` traits. The key schedule derived from
//! [`SeedableRng::seed_from_u64`] differs from upstream `rand_chacha`, so
//! streams are deterministic per seed but not bit-identical to the reference
//! crate — which is all the workspace requires (identical replays across
//! ranks for a shared seed).

use rand::{RngCore, SeedableRng};

/// 8-round ChaCha stream generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, block counter, 3 nonce
    /// words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        self.state[12] = self.state[12].wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into the 256-bit key with SplitMix64.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Block counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn close_seeds_decorrelate() {
        // Seeds differing in one bit must not produce correlated unit floats.
        let mut a = ChaCha8Rng::seed_from_u64(100);
        let mut b = ChaCha8Rng::seed_from_u64(101);
        let mut dot = 0.0f64;
        for _ in 0..4096 {
            dot += (a.gen::<f64>() - 0.5) * (b.gen::<f64>() - 0.5);
        }
        assert!((dot / 4096.0).abs() < 0.01, "correlation {dot}");
    }

    #[test]
    fn mean_of_unit_floats_is_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 1 << 14;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
