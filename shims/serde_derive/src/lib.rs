//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace actually serializes (there is no `serde_json`
//! or bincode in the tree); the `#[derive(Serialize, Deserialize)]`
//! annotations exist so downstream users could plug real serde in. These
//! derives therefore expand to nothing, keeping the annotations compiling
//! without the real proc-macro stack.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
