//! Offline stand-in for `loom`: exhaustive exploration of thread
//! interleavings for small concurrency models.
//!
//! The build environment has no registry access, so this shim implements
//! the subset of loom's API the workspace uses — [`model`],
//! [`thread::spawn`]/[`thread::yield_now`], [`sync::Mutex`],
//! [`sync::mpsc`] channels and [`sync::atomic`] — on top of a
//! depth-first stateless model checker:
//!
//! - Threads are real OS threads, but a scheduler token makes execution
//!   *serial*: exactly one model thread runs at a time, and every visible
//!   operation (lock, send, receive, atomic access, yield) is a scheduling
//!   point where any runnable thread may be chosen next.
//! - The first execution takes the first enabled thread at every point and
//!   records the choice; [`model`] then backtracks depth-first — replay
//!   the longest prefix with an untried alternative, take it, and continue
//!   until every schedule has been explored.
//! - Blocked threads (contended lock, empty channel) leave the enabled
//!   set; any state change that could unblock them puts them back. If no
//!   thread is runnable the checker reports a deadlock, except that
//!   threads parked in `recv_timeout` are then woken with
//!   [`std::sync::mpsc::RecvTimeoutError::Timeout`] — modelling a timeout
//!   that fires only when nothing else can make progress, i.e. a pure
//!   backstop.
//!
//! The memory model is sequential consistency: orderings are accepted and
//! ignored, so weak-memory bugs are out of scope — what the checker
//! proves is the absence of lost wakeups, deadlocks and protocol races
//! under every serialisation of the visible operations.
//!
//! Determinism: a model body must not branch on wall-clock time or
//! ambient randomness; replay asserts that the enabled set at each
//! recorded choice matches the original run and aborts with a
//! "nondeterministic model" error otherwise.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Upper bound on explored schedules before the checker gives up — a
/// model that trips this is too large for exhaustive checking and should
/// be decomposed.
pub const MAX_SCHEDULES: usize = 200_000;

/// Upper bound on scheduling points within one schedule, a guard against
/// models that spin-wait (which never terminate under serial execution).
const MAX_STEPS: usize = 50_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for a state change (contended lock, empty channel).
    Blocked,
    /// As `Blocked`, but parked in `recv_timeout`: eligible for a timeout
    /// wakeup when the whole system is otherwise stuck.
    TimedWait,
    Finished,
}

/// One recorded scheduling decision: which of the enabled threads ran.
#[derive(Clone, Debug)]
struct Choice {
    enabled: Vec<usize>,
    index: usize,
}

#[derive(Default)]
struct SchedState {
    statuses: Vec<Status>,
    active: usize,
    path: Vec<Choice>,
    depth: usize,
    steps: usize,
    /// Per-thread flag: the last wakeup was a timeout delivery.
    timed_out: Vec<bool>,
    /// First failure (panic message); aborts every thread's wait loop.
    failed: Option<String>,
}

struct Scheduler {
    state: StdMutex<SchedState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Scheduler>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside `loom::model`")
    })
}

fn set_ctx(sched: Arc<Scheduler>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, id)));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

impl Scheduler {
    fn new() -> Arc<Scheduler> {
        Arc::new(Scheduler {
            state: StdMutex::new(SchedState::default()),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register(&self) -> usize {
        let mut st = self.lock();
        st.statuses.push(Status::Runnable);
        st.timed_out.push(false);
        st.statuses.len() - 1
    }

    fn runnable(st: &SchedState) -> Vec<usize> {
        st.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Picks the next thread to run from `enabled`, replaying the recorded
    /// path first and extending it depth-first past its end. Singleton
    /// choices are not recorded — they have no alternative to explore.
    fn choose(&self, st: &mut SchedState, enabled: Vec<usize>) -> usize {
        if enabled.len() == 1 {
            return enabled[0];
        }
        if st.depth < st.path.len() {
            let c = &st.path[st.depth];
            if c.enabled != enabled {
                let msg = format!(
                    "nondeterministic model: replay expected enabled set {:?} at choice {} but found {:?}",
                    c.enabled, st.depth, enabled
                );
                self.abort(st, msg);
            }
            let chosen = c.enabled[c.index];
            st.depth += 1;
            chosen
        } else {
            let chosen = enabled[0];
            st.path.push(Choice { enabled, index: 0 });
            st.depth += 1;
            chosen
        }
    }

    /// Records a failure, wakes every thread so it can unwind, and panics.
    fn abort(&self, st: &mut SchedState, msg: String) -> ! {
        if st.failed.is_none() {
            st.failed = Some(msg.clone());
        }
        self.cv.notify_all();
        panic!("{msg}");
    }

    /// Parks until this thread is scheduled. Panics (unwinding the model
    /// thread) when another thread has failed.
    fn wait_for_turn<'a>(
        &self,
        mut st: StdMutexGuard<'a, SchedState>,
        me: usize,
    ) -> StdMutexGuard<'a, SchedState> {
        while st.active != me {
            if let Some(msg) = &st.failed {
                let msg = msg.clone();
                drop(st);
                panic!("model aborted: {msg}");
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st
    }

    /// A scheduling point: any runnable thread (including the caller) may
    /// run next.
    fn switch(&self, me: usize) {
        let mut st = self.lock();
        if let Some(msg) = &st.failed {
            let msg = msg.clone();
            drop(st);
            panic!("model aborted: {msg}");
        }
        st.steps += 1;
        if st.steps > MAX_STEPS {
            self.abort(
                &mut st,
                format!(
                    "model exceeded {MAX_STEPS} steps in one schedule — is a thread spin-waiting?"
                ),
            );
        }
        let enabled = Self::runnable(&st);
        let chosen = self.choose(&mut st, enabled);
        st.active = chosen;
        self.cv.notify_all();
        let _st = self.wait_for_turn(st, me);
    }

    /// Blocks the caller until a state change makes it runnable again.
    /// Returns `true` when the wakeup was a timeout delivery (see
    /// [`Scheduler::hand_off`]).
    fn block(&self, me: usize, timed: bool) -> bool {
        let mut st = self.lock();
        st.statuses[me] = if timed {
            Status::TimedWait
        } else {
            Status::Blocked
        };
        self.hand_off(&mut st);
        let mut st = self.wait_for_turn(st, me);
        let timed_out = st.timed_out[me];
        st.timed_out[me] = false;
        timed_out
    }

    /// Schedules some runnable thread after the caller blocked or
    /// finished. With nothing runnable, delivers timeouts to `TimedWait`
    /// parkers; with none of those either, the model is deadlocked.
    fn hand_off(&self, st: &mut SchedState) {
        let mut enabled = Self::runnable(st);
        if enabled.is_empty() {
            let timed: Vec<usize> = st
                .statuses
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::TimedWait)
                .map(|(i, _)| i)
                .collect();
            if timed.is_empty() {
                if st.statuses.iter().all(|s| *s == Status::Finished) {
                    // Everything ran to completion; nothing to schedule.
                    st.active = usize::MAX;
                    self.cv.notify_all();
                    return;
                }
                let states: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("thread {i}: {s:?}"))
                    .collect();
                self.abort(
                    st,
                    format!(
                        "deadlock detected: every thread is blocked ({})",
                        states.join(", ")
                    ),
                );
            }
            for id in timed {
                st.statuses[id] = Status::Runnable;
                st.timed_out[id] = true;
                enabled.push(id);
            }
        }
        let chosen = self.choose(st, enabled);
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Wakes every blocked thread for a re-check after a visible state
    /// change (unlock, send, handle drop, thread exit).
    fn wake_all(st: &mut SchedState) {
        for s in st.statuses.iter_mut() {
            if *s == Status::Blocked || *s == Status::TimedWait {
                *s = Status::Runnable;
            }
        }
    }

    /// Marks the caller finished and hands the token to the next thread.
    fn finish(&self, me: usize) {
        let mut st = self.lock();
        if st.failed.is_some() {
            st.statuses[me] = Status::Finished;
            self.cv.notify_all();
            return;
        }
        st.statuses[me] = Status::Finished;
        Self::wake_all(&mut st);
        self.hand_off(&mut st);
    }

    /// Root-thread loop: keeps scheduling until every thread finished
    /// (models may legitimately let a worker outlive an unjoined handle).
    fn drain(&self, me: usize) {
        loop {
            {
                let st = self.lock();
                if let Some(msg) = &st.failed {
                    let msg = msg.clone();
                    drop(st);
                    panic!("model aborted: {msg}");
                }
                if st
                    .statuses
                    .iter()
                    .enumerate()
                    .all(|(i, s)| i == me || *s == Status::Finished)
                {
                    return;
                }
            }
            self.block(me, false);
        }
    }

    /// Waits (outside the schedule) until every thread has marked itself
    /// finished — used on the failure path where hand-offs stop.
    fn await_all_finished(&self, me: usize) {
        let mut st = self.lock();
        loop {
            if st
                .statuses
                .iter()
                .enumerate()
                .all(|(i, s)| i == me || *s == Status::Finished)
            {
                return;
            }
            self.cv.notify_all();
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Runs `f` under every interleaving of its threads' visible operations.
///
/// # Panics
///
/// Propagates the first assertion failure or panic from any schedule,
/// reports deadlocks, and panics if the model exceeds [`MAX_SCHEDULES`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let mut path: Vec<Choice> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        assert!(
            schedules <= MAX_SCHEDULES,
            "model explored {MAX_SCHEDULES} schedules without converging; decompose it"
        );
        path = run_once(&f, path);
        // Depth-first backtrack: advance the deepest choice with an
        // untried alternative; a fully-exhausted path means done.
        loop {
            match path.last_mut() {
                None => return,
                Some(c) if c.index + 1 < c.enabled.len() => {
                    c.index += 1;
                    break;
                }
                Some(_) => {
                    path.pop();
                }
            }
        }
    }
}

fn run_once<F>(f: &F, path: Vec<Choice>) -> Vec<Choice>
where
    F: Fn() + Send + Sync,
{
    let sched = Scheduler::new();
    {
        let mut st = sched.lock();
        st.path = path;
    }
    let me = sched.register();
    debug_assert_eq!(me, 0);
    set_ctx(Arc::clone(&sched), me);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    match outcome {
        Ok(()) => {
            let drained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sched.drain(me);
            }));
            clear_ctx();
            if let Err(payload) = drained {
                sched.await_all_finished(me);
                std::panic::resume_unwind(payload);
            }
        }
        Err(payload) => {
            // Record the failure so parked threads unwind, then re-raise.
            {
                let mut st = sched.lock();
                if st.failed.is_none() {
                    st.failed = Some(panic_message(&payload));
                }
                sched.cv.notify_all();
            }
            clear_ctx();
            sched.await_all_finished(me);
            std::panic::resume_unwind(payload);
        }
    }
    let mut st = sched.lock();
    if let Some(msg) = st.failed.take() {
        drop(st);
        panic!("model failed: {msg}");
    }
    std::mem::take(&mut st.path)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

pub mod thread {
    //! Model-checked threads: spawned as real OS threads, executed
    //! serially under the scheduler token.

    use super::{clear_ctx, ctx, panic_message, set_ctx, Arc, Status, StdMutex};

    /// Handle to a model thread; [`JoinHandle::join`] is a blocking
    /// scheduling point.
    pub struct JoinHandle<T> {
        id: usize,
        result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    /// Spawns a model thread. It runs only when the scheduler picks it.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, _me) = ctx();
        let id = sched.register();
        let result: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
        let sched2 = Arc::clone(&sched);
        let result2 = Arc::clone(&result);
        let os = std::thread::spawn(move || {
            set_ctx(Arc::clone(&sched2), id);
            // Gate: do not run until scheduled for the first time.
            let gate = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let st = sched2.lock();
                drop(sched2.wait_for_turn(st, id));
            }));
            let out = match gate {
                Ok(()) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)),
                Err(e) => Err(e),
            };
            if let Err(payload) = &out {
                let mut st = sched2.lock();
                if st.failed.is_none() {
                    st.failed = Some(panic_message(payload.as_ref()));
                }
                sched2.cv.notify_all();
            }
            *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            clear_ctx();
            sched2.finish(id);
        });
        JoinHandle {
            id,
            result,
            os: Some(os),
        }
    }

    /// Yields: a pure scheduling point.
    pub fn yield_now() {
        let (sched, me) = ctx();
        sched.switch(me);
    }

    impl<T> JoinHandle<T> {
        /// Blocks until the thread finishes; propagates its panic.
        pub fn join(mut self) -> std::thread::Result<T> {
            let (sched, me) = ctx();
            loop {
                sched.switch(me);
                {
                    let st = sched.lock();
                    if st.statuses[self.id] == Status::Finished {
                        break;
                    }
                }
                sched.block(me, false);
            }
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            self.result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("finished thread stored its result")
        }
    }
}

pub mod sync {
    //! Model-checked synchronisation primitives.

    pub use std::sync::Arc;

    use super::{ctx, Scheduler};
    use std::cell::UnsafeCell;
    use std::sync::LockResult;

    /// A mutex whose lock/unlock are scheduling points and whose
    /// contention blocks the model thread.
    ///
    /// Poisoning is not modelled: any panic aborts the whole model, so
    /// `lock` always returns `Ok`.
    pub struct Mutex<T> {
        held: std::sync::atomic::AtomicBool,
        value: UnsafeCell<T>,
    }

    // SAFETY: the scheduler serialises execution — at most one model
    // thread runs at a time, and the `held` flag enforces mutual
    // exclusion across scheduling points, so `&mut T` accesses through
    // the guard never alias.
    unsafe impl<T: Send> Sync for Mutex<T> {}
    unsafe impl<T: Send> Send for Mutex<T> {}

    /// RAII guard for [`Mutex`]; unlock on drop wakes blocked lockers.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates the mutex (not a scheduling point).
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                held: std::sync::atomic::AtomicBool::new(false),
                value: UnsafeCell::new(value),
            }
        }

        /// Acquires the lock, blocking the model thread while contended.
        ///
        /// # Errors
        ///
        /// Never — poisoning is not modelled.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let (sched, me) = ctx();
            loop {
                sched.switch(me);
                if !self.held.swap(true, std::sync::atomic::Ordering::SeqCst) {
                    return Ok(MutexGuard { lock: self });
                }
                sched.block(me, false);
            }
        }

        /// Consumes the mutex and returns the value.
        pub fn into_inner(self) -> LockResult<T> {
            Ok(self.value.into_inner())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: guard existence implies exclusive ownership of the
            // lock (see the `Sync` impl).
            unsafe { &*self.lock.value.get() }
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as for `Deref`.
            unsafe { &mut *self.lock.value.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let (sched, _me) = ctx();
            self.lock
                .held
                .store(false, std::sync::atomic::Ordering::SeqCst);
            let mut st = sched.lock();
            Scheduler::wake_all(&mut st);
        }
    }

    pub mod atomic {
        //! Atomics whose every access is a scheduling point (sequential
        //! consistency; orderings are accepted and ignored).

        pub use std::sync::atomic::Ordering;

        use super::super::ctx;

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Model-checked atomic; see the module docs.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// Creates the atomic (not a scheduling point).
                    pub fn new(v: $prim) -> Self {
                        Self {
                            inner: <$std>::new(v),
                        }
                    }

                    /// Atomic load; a scheduling point.
                    pub fn load(&self, _order: Ordering) -> $prim {
                        let (sched, me) = ctx();
                        sched.switch(me);
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Atomic store; a scheduling point that wakes
                    /// blocked threads for a re-check.
                    pub fn store(&self, v: $prim, _order: Ordering) {
                        let (sched, me) = ctx();
                        sched.switch(me);
                        self.inner.store(v, Ordering::SeqCst);
                        let mut st = sched.lock();
                        super::super::Scheduler::wake_all(&mut st);
                    }

                    /// Atomic swap; a scheduling point that wakes
                    /// blocked threads for a re-check.
                    pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                        let (sched, me) = ctx();
                        sched.switch(me);
                        let old = self.inner.swap(v, Ordering::SeqCst);
                        let mut st = sched.lock();
                        super::super::Scheduler::wake_all(&mut st);
                        old
                    }
                }
            };
        }

        model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

        impl AtomicUsize {
            /// Atomic add; a scheduling point that wakes blocked threads.
            pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
                let (sched, me) = ctx();
                sched.switch(me);
                let old = self.inner.fetch_add(v, Ordering::SeqCst);
                let mut st = sched.lock();
                super::super::Scheduler::wake_all(&mut st);
                old
            }
        }
    }

    pub mod mpsc {
        //! Unbounded MPSC channels with the `std::sync::mpsc` error
        //! surface, model-checked: send/receive/handle-drop are
        //! scheduling points, an empty receive blocks, and
        //! `recv_timeout`'s timeout fires only when the whole model is
        //! otherwise stuck (a pure backstop — see the crate docs).

        pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

        use super::super::{ctx, Scheduler, StdMutex, VecDeque};
        use super::Arc;
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::time::Duration;

        struct Chan<T> {
            queue: StdMutex<VecDeque<T>>,
            senders: AtomicUsize,
            rx_alive: AtomicBool,
        }

        /// Sending half; cloneable.
        pub struct Sender<T> {
            chan: Arc<Chan<T>>,
        }

        /// Receiving half.
        pub struct Receiver<T> {
            chan: Arc<Chan<T>>,
        }

        /// Creates an unbounded model-checked channel.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let chan = Arc::new(Chan {
                queue: StdMutex::new(VecDeque::new()),
                senders: AtomicUsize::new(1),
                rx_alive: AtomicBool::new(true),
            });
            (
                Sender {
                    chan: Arc::clone(&chan),
                },
                Receiver { chan },
            )
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                self.chan.senders.fetch_add(1, Ordering::SeqCst);
                Sender {
                    chan: Arc::clone(&self.chan),
                }
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Last sender gone: wake receivers so they observe
                    // the disconnect.
                    if let Some((sched, _)) = super::super::CTX.with(|c| c.borrow().clone()) {
                        let mut st = sched.lock();
                        Scheduler::wake_all(&mut st);
                    }
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                self.chan.rx_alive.store(false, Ordering::SeqCst);
                // As in std: the receiver owns the buffered messages, so
                // they drop with it (their own Drop impls — e.g. reply
                // senders queued inside a message — run here and wake
                // their waiters).
                let drained: VecDeque<T> =
                    std::mem::take(&mut *self.chan.queue.lock().unwrap_or_else(|e| e.into_inner()));
                drop(drained);
                if let Some((sched, _)) = super::super::CTX.with(|c| c.borrow().clone()) {
                    let mut st = sched.lock();
                    Scheduler::wake_all(&mut st);
                }
            }
        }

        impl<T> Sender<T> {
            /// Queues a value; a scheduling point, never blocks.
            ///
            /// # Errors
            ///
            /// Returns the value when the receiver is gone.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                let (sched, me) = ctx();
                sched.switch(me);
                if !self.chan.rx_alive.load(Ordering::SeqCst) {
                    return Err(SendError(value));
                }
                self.chan
                    .queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(value);
                let mut st = sched.lock();
                Scheduler::wake_all(&mut st);
                Ok(())
            }
        }

        impl<T> Receiver<T> {
            fn poll(&self) -> Option<Result<T, RecvError>> {
                let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(v) = q.pop_front() {
                    return Some(Ok(v));
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Some(Err(RecvError));
                }
                None
            }

            /// Blocks until a value or all senders are gone.
            ///
            /// # Errors
            ///
            /// [`RecvError`] after the last sender dropped with the queue
            /// drained.
            pub fn recv(&self) -> Result<T, RecvError> {
                let (sched, me) = ctx();
                loop {
                    sched.switch(me);
                    if let Some(out) = self.poll() {
                        return out;
                    }
                    sched.block(me, false);
                }
            }

            /// As [`Receiver::recv`], except the timeout fires — as
            /// [`RecvTimeoutError::Timeout`] — only when every model
            /// thread is blocked, i.e. waiting longer could never help.
            /// The duration is accepted and ignored.
            ///
            /// # Errors
            ///
            /// [`RecvTimeoutError::Disconnected`] mirrors
            /// [`Receiver::recv`]'s disconnect case.
            pub fn recv_timeout(&self, _timeout: Duration) -> Result<T, RecvTimeoutError> {
                let (sched, me) = ctx();
                loop {
                    sched.switch(me);
                    if let Some(out) = self.poll() {
                        return out.map_err(|RecvError| RecvTimeoutError::Disconnected);
                    }
                    if sched.block(me, true) {
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
            }

            /// Non-blocking receive; a scheduling point.
            ///
            /// # Errors
            ///
            /// [`TryRecvError::Empty`] with live senders and nothing
            /// queued, [`TryRecvError::Disconnected`] after the last
            /// sender dropped.
            pub fn try_recv(&self) -> Result<T, TryRecvError> {
                let (sched, me) = ctx();
                sched.switch(me);
                match self.poll() {
                    Some(Ok(v)) => Ok(v),
                    Some(Err(RecvError)) => Err(TryRecvError::Disconnected),
                    None => Err(TryRecvError::Empty),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{mpsc, Arc, Mutex};
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn explores_both_orders_of_two_increments() {
        // Two threads append their id; exhaustive exploration must see
        // both serialisations.
        let seen: Arc<StdMutex<HashSet<Vec<u8>>>> = Arc::new(StdMutex::new(HashSet::new()));
        let seen2 = Arc::clone(&seen);
        super::model(move || {
            let order = Arc::new(Mutex::new(Vec::new()));
            let o1 = Arc::clone(&order);
            let o2 = Arc::clone(&order);
            let t1 = super::thread::spawn(move || o1.lock().unwrap().push(1u8));
            let t2 = super::thread::spawn(move || o2.lock().unwrap().push(2u8));
            t1.join().unwrap();
            t2.join().unwrap();
            let order = order.lock().unwrap().clone();
            seen2.lock().unwrap().insert(order);
        });
        let seen = seen.lock().unwrap();
        assert!(
            seen.contains(&vec![1, 2]) && seen.contains(&vec![2, 1]),
            "{seen:?}"
        );
    }

    #[test]
    fn channel_recv_sees_value_or_disconnect_in_every_schedule() {
        super::model(|| {
            let (tx, rx) = mpsc::channel::<u32>();
            let t = super::thread::spawn(move || {
                tx.send(5).unwrap();
            });
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Err(mpsc::RecvError));
            t.join().unwrap();
        });
    }

    #[test]
    fn recv_timeout_fires_only_when_stuck() {
        super::model(|| {
            let (_tx, rx) = mpsc::channel::<u32>();
            // The sender never sends and never drops: the only way out
            // is the backstop timeout.
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_secs(60)),
                Err(mpsc::RecvTimeoutError::Timeout)
            );
        });
    }

    #[test]
    fn deadlock_is_detected() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let (tx, rx) = mpsc::channel::<u32>();
                // Nothing will ever send; recv (without timeout) deadlocks.
                let _hold = tx;
                let _ = rx.recv();
            });
        });
        let err = result.expect_err("deadlock must fail the model");
        let msg = super::panic_message(err.as_ref());
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn assertion_failures_propagate_from_spawned_threads() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let t = super::thread::spawn(|| panic!("boom in model thread"));
                let _ = t.join();
            });
        });
        assert!(result.is_err(), "panic must fail the model");
    }

    #[test]
    fn atomics_interleave() {
        let seen: Arc<StdMutex<HashSet<usize>>> = Arc::new(StdMutex::new(HashSet::new()));
        let seen2 = Arc::clone(&seen);
        super::model(move || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = super::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            let observed = n.load(Ordering::SeqCst);
            t.join().unwrap();
            seen2.lock().unwrap().insert(observed);
        });
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, HashSet::from([0, 1]), "must observe both orders");
    }
}
