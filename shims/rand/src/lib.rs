//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the (small) subset of the `rand` 0.8 API the repository
//! uses: [`RngCore`]/[`Rng`]/[`SeedableRng`], uniform `gen`/`gen_range`
//! sampling for the scalar types that appear in the codebase, and
//! [`seq::SliceRandom`] shuffling. Streams are deterministic per seed, which
//! is all the reproduction relies on (rank-identical replays), but the
//! generator is *not* the reference ChaCha/StdRng bitstream.

/// Low-level generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the shim's version of `rand`'s `Standard` distribution).
pub trait UniformSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Scalars supporting uniform sampling from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    assert!(lo < hi, "gen_range called with empty range");
                    (hi as i128 - lo as i128) as u128
                };
                // Modulo bias is < 2^-64 for the ranges used here.
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let unit = <$t as UniformSample>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// User-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, RA>(&mut self, range: RA) -> T
    where
        Self: Sized,
        T: SampleUniform,
        RA: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice shuffling (the shim's `rand::seq`).

    use super::{Rng, RngCore};

    /// Shuffling operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles a random `amount`-element prefix into place and returns
        /// `(prefix, rest)`.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            let _ = self.partial_shuffle(rng, self.len());
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let amount = amount.min(len);
            for i in 0..amount {
                let j = uniform_index(rng, len - i) + i;
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }

    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            (rng.next_u64() % n as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..10usize);
            assert!(n < 10);
            let m: usize = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&m));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Lcg(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_splits_at_amount() {
        let mut rng = Lcg(13);
        let mut v: Vec<usize> = (0..10).collect();
        let (head, tail) = v.partial_shuffle(&mut rng, 4);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.len(), 6);
    }
}
