//! Offline stand-in for `serde`.
//!
//! The workspace annotates public data types with
//! `#[derive(Serialize, Deserialize)]` but never serializes them (no format
//! crate is in the tree). This shim keeps those annotations compiling
//! offline: the traits are empty markers and the derives expand to nothing.
//! Swapping in the real `serde` is a one-line change in the workspace
//! manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
